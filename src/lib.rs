pub use adaptors;
pub use simdfs;
pub use themis;
pub use workload;
