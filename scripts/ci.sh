#!/usr/bin/env bash
# CI gate: formatting, lints, the full test suite, and a bench smoke run
# that exercises the grid executor and dumps the perf JSON artifact.
#
# Usage: scripts/ci.sh [--no-bench|--bench-scaling|--bench-scale100k]
#   --no-bench        skip the bench smoke step (fast pre-push check)
#   --bench-scaling   also run the heavy-cell worker-scaling bench and
#                     gate results/BENCH_4.json (slow; multi-core boxes)
#   --bench-scale100k also run the 100k-node topology bench and gate
#                     results/BENCH_6.json (slow; probe flatness, sampled
#                     placement quality, same-seed identity at 100k)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Every bench artifact states its schema version; a missing or mismatched
# number means a stale baseline is about to be gated against fresh code —
# fail loudly instead of comparing apples to last month's oranges.
check_schema() {
    grep -q "\"schema_version\": $2" "$1" \
        || { echo "==> $1 missing schema_version $2 (stale or truncated artifact)"; exit 1; }
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings

# Blocking lint stage: the workspace build enforces [workspace.lints]
# (unsafe_code = forbid, unused_must_use = deny, ...), then detlint
# enforces the determinism contract (see DESIGN.md) and writes the
# machine-readable report to results/detlint.json. --strict promotes
# warn-severity rules to failures: the tree must be fully clean.
run cargo build --workspace --offline
run cargo run --offline -p detlint -- --strict
test -s results/detlint.json
check_schema results/detlint.json 2

run cargo test --workspace --offline -q

# The crash-consistency oracle must hold with debug_assertions compiled
# out: rerun the release-profile regression tests that seed counter
# drift and ownership divergence and expect the runtime auditor to
# catch both (plus the audit-flag default/toggle contract).
run cargo test --release --offline -p simdfs -q -- release_oracle runtime_audit

if [[ "${1:-}" != "--no-bench" ]]; then
    # Capture the committed baseline throughput BEFORE the bench run
    # overwrites the artifact: the regression gate compares the fresh
    # number against it.
    baseline=$(grep -o '"cached_iters_per_sec": *[0-9.]*' results/BENCH_1.json 2>/dev/null \
        | grep -o '[0-9.]*$' || true)

    # Bench smoke: the repro binary's perf mode times the cached-vs-baseline
    # campaign hot path plus grid scaling and writes results/BENCH_1.json,
    # then the snapshot-fork engine against full replay and the redeploy
    # fallback into results/BENCH_2.json.
    run cargo run --release --offline -p bench --bin repro -- perf
    test -s results/BENCH_1.json
    check_schema results/BENCH_1.json 1
    echo "==> results/BENCH_1.json:"
    cat results/BENCH_1.json
    test -s results/BENCH_2.json
    check_schema results/BENCH_2.json 2
    echo "==> results/BENCH_2.json:"
    cat results/BENCH_2.json

    # Perf regression gate: fail if campaign throughput fell more than 30%
    # below the committed baseline (shared CI boxes are noisy; a >30% drop
    # is a real regression, not scheduling jitter).
    fresh=$(grep -o '"cached_iters_per_sec": *[0-9.]*' results/BENCH_1.json \
        | grep -o '[0-9.]*$')
    if [[ -n "$baseline" ]]; then
        awk -v f="$fresh" -v b="$baseline" 'BEGIN {
            if (f < 0.7 * b) {
                printf "==> PERF REGRESSION: %.0f iters/s vs committed baseline %.0f (-%.0f%%)\n",
                    f, b, (1 - f / b) * 100
                exit 1
            }
            printf "==> perf gate OK: %.0f iters/s vs committed baseline %.0f\n", f, b
        }'
    else
        echo "==> perf gate skipped: no committed baseline in results/BENCH_1.json"
    fi

    # Fault-matrix smoke: every fault profile through the detector on all
    # four flavors, written to results/faults.txt.
    run cargo run --release --offline -p bench --bin repro -- faults
    test -s results/faults.txt
    echo "==> results/faults.txt:"
    cat results/faults.txt

    # Scaling artifact: per-op variance-sampling cost from 10 to 10k
    # storage nodes, heavy-traffic campaigns at scale with the mean-field
    # cross-check, the same-seed 10k-node determinism check, and worker
    # scaling over large-topology cells, into results/BENCH_3.json.
    run cargo run --release --offline -p bench --bin repro -- scale
    test -s results/BENCH_3.json
    check_schema results/BENCH_3.json 3
    echo "==> results/BENCH_3.json:"
    cat results/BENCH_3.json

    # Scaling regression gate: the streaming accumulators must keep the
    # per-operation variance probe O(1) — its cost at 10k nodes may not
    # exceed twice its cost at 10 nodes. A regression here means some
    # mutation path went back to full recomputation.
    ratio=$(grep -o '"variance_probe_cost_ratio": *[0-9.]*' results/BENCH_3.json \
        | grep -o '[0-9.]*$')
    awk -v r="$ratio" 'BEGIN {
        if (r == "" || r > 2.0) {
            printf "==> VARIANCE SCALING REGRESSION: 10k/10 probe cost ratio %s > 2.0\n", r
            exit 1
        }
        printf "==> variance scaling gate OK: 10k/10 probe cost ratio %s\n", r
    }'

    # The 10k-node campaign must be deterministic and pass both the state
    # audit and the mean-field cross-check.
    grep -q '"identical": true' results/BENCH_3.json \
        || { echo "==> 10k-node campaign is not deterministic"; exit 1; }
    if grep -q 'false' <<<"$(grep -o '"audit_ok": [a-z]*' results/BENCH_3.json)"; then
        echo "==> heavy campaign failed the state audit"; exit 1
    fi
    if grep -q 'false' <<<"$(grep -o '"mean_field_ok": [a-z]*' results/BENCH_3.json)"; then
        echo "==> heavy campaign drifted from the mean-field model"; exit 1
    fi

    # Crash-exploration smoke: bounded crash-point exploration of the
    # migration pipeline on every flavor (one bounded window each) plus
    # the equal-budget random-time baseline, into results/BENCH_5.json.
    run cargo run --release --offline -p bench --bin repro -- crash
    test -s results/BENCH_5.json
    check_schema results/BENCH_5.json 5
    echo "==> results/BENCH_5.json:"
    cat results/BENCH_5.json

    # Every seeded crash-window bug class must show up as a bounded-arm
    # finding (lost_linkfile is GlusterFS-only — the other flavors have
    # no linkfile layer), every flavor must find its full expected set,
    # two same-seed passes must render byte-identical canonical reports,
    # and the equal-budget random baseline must miss at least one class
    # somewhere — otherwise bounded exploration demonstrates no advantage.
    for class in lost_linkfile orphan_replica double_counted_blocks; do
        grep -q "\"$class\": [0-9]" results/BENCH_5.json \
            || { echo "==> crash exploration found no $class violations"; exit 1; }
    done
    grep -q '^  "all_classes_found": true' results/BENCH_5.json \
        || { echo "==> a flavor's bounded arm missed an expected crash class"; exit 1; }
    grep -q '^  "identical": true' results/BENCH_5.json \
        || { echo "==> crash campaign is not same-seed byte-identical"; exit 1; }
    grep -q '^  "baseline_misses_at_least_one": true' results/BENCH_5.json \
        || { echo "==> random baseline found every class; bounded exploration shows no advantage"; exit 1; }
    echo "==> crash exploration gate OK"
fi

if [[ "${1:-}" == "--bench-scaling" ]]; then
    # Worker-scaling artifact: the heavy-cell grid through the
    # work-stealing executor at 1/2/4/8 workers with per-worker
    # {cells_run, cells_stolen, busy_ns} counters, the reuse redeploy
    # count, and fresh-deploy identity at every worker count, into
    # results/BENCH_4.json.
    run cargo run --release --offline -p bench --bin repro -- scaling
    test -s results/BENCH_4.json
    check_schema results/BENCH_4.json 4
    echo "==> results/BENCH_4.json:"
    cat results/BENCH_4.json

    # Determinism is non-negotiable at any core count: every parallel
    # run's cells must be byte-identical to the serial fresh-deploy
    # reference, even when the speedup gate itself is skipped.
    grep -q '"identical_to_serial": true' results/BENCH_4.json \
        || { echo "==> parallel grid diverged from the serial reference"; exit 1; }

    # Speedup gate: every measured worker count w with 1 < w <= the
    # host's available parallelism must hit >= 0.7x-per-worker speedup
    # (>= 1.4x @ 2 workers, >= 2.8x @ 4). The bench computes the verdict
    # itself; single-core hosts record the gate as skipped instead. Skip
    # and pass stay distinguishable: a skip must carry its reason in the
    # artifact AND be consistent with the host topology the artifact
    # itself recorded — a degraded multi-core run cannot masquerade as a
    # single-core skip.
    if grep -q '"skipped": "single-core"' results/BENCH_4.json; then
        ap=$(grep -o '"available_parallelism": *[0-9]*' results/BENCH_4.json \
            | head -n1 | grep -o '[0-9]*$')
        if [[ "${ap:-1}" -gt 1 ]]; then
            echo "==> INCONSISTENT SKIP: gate claims a single-core skip but the artifact records available_parallelism=$ap"
            exit 1
        fi
        echo "==> scaling gate SKIPPED (not passed): single-core host, reason recorded in BENCH_4.json"
    elif grep -q '"passed": true' results/BENCH_4.json \
        && grep -q '"skipped": null' results/BENCH_4.json; then
        echo "==> scaling gate OK: >= 0.7x-per-worker speedup"
    else
        echo "==> SCALING REGRESSION:"
        grep -o '"why": "[^"]*"' results/BENCH_4.json || true
        exit 1
    fi
fi

if [[ "${1:-}" == "--bench-scale100k" ]]; then
    # 100k-node topology artifact: variance-probe flatness at 10/10k/100k
    # nodes (with per-point bulk-load preload wall time), sampled-vs-full
    # placement-quality differentials, serial-vs-batched request-loop
    # amortization, and a batched 100k-node campaign run twice for a
    # same-seed byte-identity check, into results/BENCH_6.json.
    run cargo run --release --offline -p bench --bin repro -- scale100k
    test -s results/BENCH_6.json
    check_schema results/BENCH_6.json 6
    echo "==> results/BENCH_6.json:"
    cat results/BENCH_6.json

    # Probe flatness gate: the last order of magnitude must be free —
    # the per-op variance probe at 100k nodes may not cost more than
    # twice what it costs at 10k. A regression here means some mutation
    # path reintroduced an O(V) walk into the probe.
    ratio=$(grep -o '"probe_cost_ratio_10k_100k": *[0-9.]*' results/BENCH_6.json \
        | grep -o '[0-9.]*$')
    awk -v r="$ratio" 'BEGIN {
        if (r == "" || r > 2.0) {
            printf "==> PROBE SCALING REGRESSION: 100k/10k probe cost ratio %s > 2.0\n", r
            exit 1
        }
        printf "==> probe scaling gate OK: 100k/10k probe cost ratio %s\n", r
    }'

    # Sampled-placement quality gate: every differential pair must satisfy
    # the documented bound sampled_cv <= 2 * full_cv + 0.05.
    grep -q '"within_bound": true' results/BENCH_6.json \
        || { echo "==> no sampled-vs-full differential recorded"; exit 1; }
    if grep -q '"within_bound": false' results/BENCH_6.json; then
        echo "==> sampled placement exceeded the documented variance bound"; exit 1
    fi
    echo "==> sampled placement gate OK: all pairs within 2*full_cv + 0.05"

    # The batched 100k-node campaign must be same-seed byte-identical and
    # pass the full state audit.
    grep -q '"identical": true' results/BENCH_6.json \
        || { echo "==> 100k-node batched campaign is not deterministic"; exit 1; }
    if grep -q 'false' <<<"$(grep -o '"audit_ok": [a-z]*' results/BENCH_6.json)"; then
        echo "==> 100k-node batched campaign failed the state audit"; exit 1
    fi
    echo "==> scale100k gate OK"
fi

echo "CI OK"
