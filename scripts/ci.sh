#!/usr/bin/env bash
# CI gate: formatting, lints, the full test suite, and a bench smoke run
# that exercises the grid executor and dumps the perf JSON artifact.
#
# Usage: scripts/ci.sh [--no-bench]
#   --no-bench   skip the bench smoke step (fast pre-push check)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --offline
run cargo test --workspace --offline -q

if [[ "${1:-}" != "--no-bench" ]]; then
    # Bench smoke: the repro binary's perf mode times the cached-vs-baseline
    # campaign hot path plus grid scaling and writes results/BENCH_1.json.
    run cargo run --release --offline -p bench --bin repro -- perf
    test -s results/BENCH_1.json
    echo "==> results/BENCH_1.json:"
    cat results/BENCH_1.json

    # Fault-matrix smoke: every fault profile through the detector on all
    # four flavors, written to results/faults.txt.
    run cargo run --release --offline -p bench --bin repro -- faults
    test -s results/faults.txt
    echo "==> results/faults.txt:"
    cat results/faults.txt
fi

echo "CI OK"
