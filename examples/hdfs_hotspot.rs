//! The paper's motivation example (Section 3.3, Figures 3-4): HDFS-13279.
//!
//! A DataNode goes offline while the Balancer is planning a migration; the
//! stale `clusterMap` makes the migration calculation wrong, data is not
//! drained from the hotspot, and new writes to it block. This example
//! scripts the seven key steps from Figure 3 against the simulated HDFS
//! and shows the imbalance detector confirming the failure.
//!
//! Run with: `cargo run --release --example hdfs_hotspot`

use adaptors::SimAdaptor;
use simdfs::bugs::{BugSpec, Effect, FailureKind, Gate, Trigger};
use simdfs::{BugSet, DfsRequest, Flavor, MIB};
use themis::adaptor::DfsAdaptor;
use themis::spec::{Operand, Operation, Operator, TestCase};
use themis::{Detector, ImbalanceKind};

/// The HDFS-13279 fault, modelled mechanistically: a node removal during
/// an in-flight rebalance corrupts the migration plan; afterwards the
/// planner keeps skipping the hotspot ("the data of some nodes is not
/// migrated out, but still retained").
fn hdfs_13279() -> Vec<BugSpec> {
    // The stale clusterMap has two faces (Figure 4): the migrated-data
    // calculation routes new blocks toward the mis-planned node, and the
    // wrong plan never drains it ("the data of some nodes is not migrated
    // out, but still retained").
    let base = BugSpec {
        id: "HDFS-13279-demo-funnel",
        platform: Flavor::Hdfs,
        kind: FailureKind::ImbalancedStorage,
        title: "DataNodes usage imbalanced: stale clusterMap during migration planning",
        trigger: Trigger::offline_during_rebalance(),
        effect: Effect::HotspotPlacement { pct: 65 },
        gate: Gate::None,
        is_new: false,
    };
    let mut skip = base.clone();
    skip.id = "HDFS-13279-demo-retain";
    skip.effect = Effect::SkipMigrationFromHot;
    vec![base, skip]
}

fn main() {
    let sim = std::rc::Rc::new(std::cell::RefCell::new(simdfs::DfsSim::new(
        Flavor::Hdfs,
        BugSet::Custom(hdfs_13279()),
    )));
    let mut adaptor = SimAdaptor::from_handle(sim.clone());

    println!("step 1-2: mount a new volume and receive data storage requests");
    let node = adaptor.inventory().storage[0];
    let ops = vec![Operation::new(
        Operator::AddVolume,
        vec![Operand::NodeId(node), Operand::Size(0)],
    )];
    for op in &ops {
        adaptor.send(op).unwrap();
    }
    for i in 0..40 {
        adaptor
            .send(&Operation::new(
                Operator::Create,
                vec![
                    Operand::FileName(format!("/data{i}")),
                    Operand::Size(256 * MIB),
                ],
            ))
            .unwrap();
    }

    println!("step 3-4: the load balancer calculates changes and starts migrating");
    // Two fresh (empty) DataNodes guarantee the balancer has real work.
    sim.borrow_mut()
        .execute(&DfsRequest::AddStorageNode {
            volumes: 2,
            capacity: 0,
        })
        .unwrap();
    sim.borrow_mut()
        .execute(&DfsRequest::AddStorageNode {
            volumes: 2,
            capacity: 0,
        })
        .unwrap();
    adaptor.rebalance();
    adaptor.wait(2_000);
    let mid_flight = !adaptor.rebalance_done();
    println!("         rebalance in flight: {mid_flight}");

    println!("step 5: a DataNode goes offline during the migration");
    let victim = *adaptor.inventory().storage.last().unwrap();
    sim.borrow_mut()
        .execute(&DfsRequest::RemoveStorageNode {
            node: simdfs::NodeId(victim as u32),
        })
        .unwrap();

    println!("step 6: new data keeps arriving; the hotspot is never drained");
    for i in 0..220 {
        let _ = adaptor.send(&Operation::new(
            Operator::Create,
            vec![
                Operand::FileName(format!("/more{i}")),
                Operand::Size(192 * MIB),
            ],
        ));
    }
    while !adaptor.rebalance_done() {
        adaptor.wait(2_000);
    }

    println!("step 7: monitor the load distribution");
    let detector = Detector::with_threshold(0.25);
    let report = adaptor.load_report();
    for n in report.nodes.iter().filter(|n| n.capacity > 0) {
        println!(
            "         node{}: {:5.1}% full",
            n.node,
            100.0 * n.storage as f64 / n.capacity as f64
        );
    }
    let candidates = detector.check(&report);
    println!("         candidates: {candidates:?}");

    let triggered = !sim.borrow().oracle_triggered().is_empty();
    println!("\nbug triggered (ground truth): {triggered}");
    if candidates.iter().any(|c| c.kind == ImbalanceKind::Storage) {
        // Double-check: rebalance, replay, probe, re-check. The skip-hotspot
        // effect makes the system unable to return to its LBS state.
        let case = TestCase::new(vec![Operation::new(
            Operator::Open,
            vec![Operand::FileName("/data0".into())],
        )]);
        let confirmed = detector.double_check(&mut adaptor, &case);
        println!("confirmed after double-check: {confirmed:?}");
        if confirmed.iter().any(|c| c.kind == ImbalanceKind::Storage) {
            println!("\n=> HDFS-13279-style imbalance failure confirmed: the hotspot");
            println!("   persists through rebalancing, exactly as in the paper's Figure 3.");
        }
    } else if triggered {
        println!("(bug armed but utilization variance still under threshold; rerun or extend)");
    }
}
