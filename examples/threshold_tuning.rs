//! Threshold tuning (Section 6.4 / Table 7): how the variance threshold
//! `t` trades false positives against missed failures.
//!
//! Runs short Themis campaigns at several `t` values against a target with
//! known ground truth and prints the precision picture.
//!
//! Run with: `cargo run --release --example threshold_tuning`

use adaptors::SimAdaptor;
use simdfs::{BugSet, Flavor};
use themis::{
    run_campaign, CampaignConfig, CampaignObserver, ConfirmedFailure, DetectorConfig,
    ThemisStrategy,
};

struct Tally {
    handle: adaptors::SimHandle,
    true_positives: std::collections::BTreeSet<String>,
    false_positives: u64,
}

impl CampaignObserver for Tally {
    fn on_confirmed(&mut self, _f: &ConfirmedFailure) {
        let sim = self.handle.borrow();
        let triggered = sim.oracle_triggered();
        if triggered.is_empty() {
            self.false_positives += 1;
        } else {
            for id in triggered {
                self.true_positives.insert(id.to_string());
            }
        }
    }
}

fn main() {
    println!("threshold t | confirmed TP bugs | FP confirmations  (4 virtual hours, GlusterFS)");
    println!("------------+-------------------+-----------------");
    for t in [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35] {
        let mut adaptor = SimAdaptor::new(Flavor::GlusterFs, BugSet::New);
        let mut tally = Tally {
            handle: adaptor.handle(),
            true_positives: Default::default(),
            false_positives: 0,
        };
        let cfg = CampaignConfig {
            budget_ms: 4 * 3_600_000,
            detector: DetectorConfig {
                threshold_t: t,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut strategy = ThemisStrategy::new();
        let _ = run_campaign(&mut strategy, &mut adaptor, &cfg, &mut tally);
        println!(
            "{:>10.0}% | {:>17} | {:>15}",
            t * 100.0,
            tally.true_positives.len(),
            tally.false_positives
        );
    }
    println!(
        "\nThe paper's finding (Table 7): false positives fall as t rises and reach\n\
         zero by t = 25%, while true positives only start dropping above 25% —\n\
         so t = 25% is the precision/recall sweet spot."
    );
}
