//! Adapting Themis to a new DFS (Section 5, "Adaption to New Distributed
//! File Systems").
//!
//! The paper reports that porting Themis means implementing two
//! interfaces: `operation.send()` and `LoadMonitor()`. This example builds
//! a deliberately tiny toy DFS — three storage "nodes", modulo placement,
//! no balancer at all — implements [`themis::DfsAdaptor`] for it from
//! scratch, and lets Themis discover that a balancer-less system drifts
//! into a persistent imbalanced state.
//!
//! Run with: `cargo run --release --example custom_adaptor`

use std::collections::BTreeMap;
use themis::adaptor::{AdaptorError, DfsAdaptor, LoadReport, NodeInventory, NodeLoad, Role};
use themis::spec::{Operand, Operation, Operator};
use themis::{run_campaign, CampaignConfig, NullObserver, ThemisStrategy};

/// A toy three-node DFS: files are placed by `hash(name) % 3`... except
/// node 0 also receives everything whose name contains a digit '1' — a
/// seeded placement bug.
struct ToyDfs {
    clock_ms: u64,
    files: BTreeMap<String, (usize, u64)>,
    node_bytes: [u64; 3],
    requests: [f64; 3],
    ops: u64,
}

impl ToyDfs {
    fn new() -> Self {
        ToyDfs {
            clock_ms: 0,
            files: BTreeMap::new(),
            node_bytes: [0; 3],
            requests: [0.0; 3],
            ops: 0,
        }
    }

    fn place(&self, name: &str) -> usize {
        if name.contains('1') {
            0 // the bug: a whole class of names lands on node 0
        } else {
            name.bytes().map(|b| b as usize).sum::<usize>() % 3
        }
    }
}

impl DfsAdaptor for ToyDfs {
    fn name(&self) -> String {
        "ToyDFS v0.1 (no balancer)".into()
    }

    // Interface 1: operation.send() — translate Themis operations into the
    // target's own commands. ToyDFS only understands create/delete/open.
    fn send(&mut self, op: &Operation) -> Result<(), AdaptorError> {
        self.clock_ms += 800;
        self.ops += 1;
        match (op.opt, op.opds.as_slice()) {
            (Operator::Create, [Operand::FileName(p), Operand::Size(s)]) => {
                if self.files.contains_key(p) {
                    return Err(AdaptorError::Rejected("exists".into()));
                }
                let node = self.place(p);
                self.files.insert(p.clone(), (node, *s));
                self.node_bytes[node] += s;
                self.requests[node] += 1.0;
                Ok(())
            }
            (Operator::Delete, [Operand::FileName(p)]) => {
                let (node, s) = self
                    .files
                    .remove(p)
                    .ok_or(AdaptorError::Rejected("missing".into()))?;
                self.node_bytes[node] -= s;
                self.requests[node] += 1.0;
                Ok(())
            }
            (Operator::Open, [Operand::FileName(p)]) => {
                let (node, _) = *self
                    .files
                    .get(p)
                    .ok_or(AdaptorError::Rejected("missing".into()))?;
                self.requests[node] += 1.0;
                Ok(())
            }
            _ => Err(AdaptorError::Rejected(format!(
                "ToyDFS cannot {}",
                op.opt.spelling()
            ))),
        }
    }

    // Interface 2: LoadMonitor() — report per-node load.
    fn load_report(&mut self) -> LoadReport {
        let nodes = (0..3)
            .map(|i| NodeLoad {
                node: i as u64,
                role: Role::Storage,
                online: true,
                crashed: false,
                cpu: 0.0,
                rps: 0.0,
                read_io: 0.0,
                write_io: 0.0,
                storage: self.node_bytes[i],
                capacity: 12 << 30,
                uptime_ms: self.clock_ms,
            })
            .collect();
        LoadReport {
            time_ms: self.clock_ms,
            nodes,
        }
    }

    fn rebalance(&mut self) {
        // ToyDFS has no balancer; the API exists but does nothing — which
        // is precisely why its imbalances are confirmed as failures.
        self.clock_ms += 1_000;
    }

    fn rebalance_done(&mut self) -> bool {
        true
    }

    fn wait(&mut self, ms: u64) {
        self.clock_ms += ms;
    }

    fn reset(&mut self) {
        *self = ToyDfs::new();
    }

    fn coverage(&mut self) -> u64 {
        // No instrumentation; coverage-guided baselines degrade gracefully.
        0
    }

    fn now_ms(&mut self) -> u64 {
        self.clock_ms
    }

    fn inventory(&mut self) -> NodeInventory {
        NodeInventory {
            mgmt: vec![],
            storage: vec![0, 1, 2],
            volumes: vec![],
            free_space: (12u64 << 30) * 3 - self.node_bytes.iter().sum::<u64>(),
            files: self.files.keys().cloned().collect(),
            dirs: vec![],
        }
    }
}

fn main() {
    let mut dfs = ToyDfs::new();
    let mut strategy = ThemisStrategy::new();
    let cfg = CampaignConfig::hours(3);
    println!("fuzzing {} for 3 virtual hours...", dfs.name());
    let result = run_campaign(&mut strategy, &mut dfs, &cfg, &mut NullObserver);
    println!(
        "iterations={} ops={} candidates={} confirmed={}",
        result.iterations,
        result.ops_sent,
        result.candidates_raised,
        result.confirmed.len()
    );
    if let Some(f) = result.confirmed.first() {
        println!(
            "\nThemis confirmed a persistent {} imbalance (ratio {:.2}) — ToyDFS's\n\
             digit-'1' placement bug concentrates files on node 0 and there is no\n\
             balancer to fix it. Total adaptation effort: the two interfaces above.",
            f.kind, f.ratio
        );
    } else {
        println!("\nno confirmation in this short run — try a longer budget");
    }
}
