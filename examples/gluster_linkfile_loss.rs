//! Case study (Section 6.1.1): GlusterFS Bug#S24387 — linkfile deletion
//! during re-migration in `dht-rebalance.c`.
//!
//! The triggering chain from the paper: create fd → data changes →
//! load rebalance → migrate fd → load changes → rebalance again →
//! migrate fd's linkfile while its hashed id is still in the migration
//! cache → the linkfile is erroneously unlinked → arbitrary data loss and
//! a persistently imbalanced storage distribution.
//!
//! Run with: `cargo run --release --example gluster_linkfile_loss`

use adaptors::SimAdaptor;
use simdfs::bugs::{BugSpec, Effect, FailureKind, Gate, Trigger};
use simdfs::{BugSet, Flavor, MIB};
use themis::adaptor::DfsAdaptor;
use themis::spec::{Operand, Operation, Operator};

fn op(opt: Operator, opds: Vec<Operand>) -> Operation {
    Operation::new(opt, opds)
}

/// The bare mechanistic fault of Bug#S24387 (the catalog version also
/// models the fuzzing-hardness conjuncts; this example scripts the chain
/// directly, so the mechanism alone is armed).
fn linkfile_bug() -> BugSpec {
    BugSpec {
        id: "Bug#S24387-demo",
        platform: Flavor::GlusterFs,
        kind: FailureKind::ImbalancedStorage,
        title: "linkfile unlinked when its datafile's hash id is still cached",
        trigger: Trigger::CacheRemigration,
        effect: Effect::DeleteMigratedData { pct: 60 },
        gate: Gate::None,
        is_new: true,
    }
}

fn main() {
    let sim = std::rc::Rc::new(std::cell::RefCell::new(simdfs::DfsSim::new(
        Flavor::GlusterFs,
        BugSet::Custom(vec![linkfile_bug()]),
    )));
    let mut adaptor = SimAdaptor::from_handle(sim.clone());
    let oracle = adaptor.handle();

    println!("phase 1: create files and rename them (renames leave DHT linkfiles)");
    for i in 0..24 {
        adaptor
            .send(&op(
                Operator::Create,
                vec![
                    Operand::FileName(format!("/fd{i}")),
                    Operand::Size(96 * MIB),
                ],
            ))
            .unwrap();
        let _ = adaptor.send(&op(
            Operator::Rename,
            vec![
                Operand::FileName(format!("/fd{i}")),
                Operand::FileName(format!("/renamed{i}")),
            ],
        ));
    }
    let linkfiles = oracle
        .borrow()
        .cluster()
        .files()
        .values()
        .filter(|m| m.linkfile_at.is_some())
        .count();
    println!("         linkfiles present: {linkfiles}");

    println!("phase 2: churn topology so consecutive rebalances migrate the same files");
    for round in 0..30 {
        // Dense storage/volume churn keeps the rebalancer running and the
        // dht hash cache warm between consecutive migrations.
        let inv = adaptor.inventory();
        if let Some(&node) = inv.storage.last() {
            if inv.storage.len() > 5 && round % 2 == 0 {
                let _ = adaptor.send(&op(Operator::RemoveStorage, vec![Operand::NodeId(node)]));
            } else {
                let _ = adaptor.send(&op(Operator::AddStorage, vec![Operand::Size(0)]));
            }
        }
        if let Some(&vol) = inv.volumes.first() {
            let _ = adaptor.send(&op(
                Operator::ExpandVolume,
                vec![Operand::VolumeId(vol), Operand::Size(512 * MIB)],
            ));
            let _ = adaptor.send(&op(
                Operator::ReduceVolume,
                vec![Operand::VolumeId(vol), Operand::Size(512 * MIB)],
            ));
        }
        // Keep writing and renaming so migrated files regain linkfiles.
        let _ = adaptor.send(&op(
            Operator::Create,
            vec![
                Operand::FileName(format!("/extra{round}")),
                Operand::Size(128 * MIB),
            ],
        ));
        let _ = adaptor.send(&op(
            Operator::Rename,
            vec![
                Operand::FileName(format!("/extra{round}")),
                Operand::FileName(format!("/moved{round}")),
            ],
        ));
        adaptor.rebalance();
        while !adaptor.rebalance_done() {
            adaptor.wait(2_000);
        }
        let sim = oracle.borrow();
        if sim
            .oracle_triggered()
            .iter()
            .any(|id| id.starts_with("Bug#S24387"))
        {
            println!(
                "\n=> Bug#S24387 triggered after round {round}: a linkfile's datafile hash id \
                 was still cached when its linkfile migrated."
            );
            break;
        }
    }

    let sim = oracle.borrow();
    let triggered = sim.oracle_triggered();
    println!("\nground-truth triggered bugs: {triggered:?}");
    println!(
        "bytes lost (erroneously unlinked data): {} MiB",
        sim.bytes_lost() >> 20
    );
    if triggered.iter().any(|id| id.starts_with("Bug#S24387")) {
        println!(
            "From here every further migration deletes part of what it moves — the \
             storage distribution cannot return to balance, which is how Themis's \
             detector catches it during fuzzing (see `quickstart`)."
        );
    } else {
        println!("(the mechanistic chain did not complete in this scripted run; the fuzzer");
        println!(" finds it reliably within a 24-hour campaign — see `repro table2`)");
    }
}
