//! Quickstart: point Themis at a DFS and fuzz for imbalance failures.
//!
//! This runs the full pipeline of the paper against the simulated
//! GlusterFS: load variance-guided test-case generation, the imbalance
//! detector with its double-check, and failure reporting with replayable
//! reproduction logs.
//!
//! Run with: `cargo run --release --example quickstart`

use adaptors::SimAdaptor;
use simdfs::{BugSet, Flavor};
use themis::{run_campaign, CampaignConfig, DfsAdaptor, NullObserver, ThemisStrategy};

fn main() {
    // The target: a 10-node GlusterFS v12.0 deployment carrying the
    // paper's previously unknown latent bugs.
    let mut adaptor = SimAdaptor::new(Flavor::GlusterFs, BugSet::New);
    let oracle = adaptor.handle(); // harness-side ground truth (not used by Themis)

    // Themis itself: the load variance-guided strategy plus a campaign
    // budget of 6 virtual hours (the paper runs 24; this is a demo).
    let mut strategy = ThemisStrategy::new();
    let config = CampaignConfig::hours(6);

    println!("fuzzing {} for 6 virtual hours...", adaptor.name());
    let result = run_campaign(&mut strategy, &mut adaptor, &config, &mut NullObserver);

    println!("\ncampaign finished:");
    println!("  operations sent        : {}", result.ops_sent);
    println!("  fuzzing iterations     : {}", result.iterations);
    println!("  imbalance candidates   : {}", result.candidates_raised);
    println!(
        "  filtered by double-check: {}",
        result.filtered_by_double_check
    );
    println!("  confirmed failures     : {}", result.confirmed.len());
    println!("  branch coverage        : {}", result.final_coverage);

    // Print the first confirmed failure's reproduction log, the artifact
    // the paper hands to maintainers.
    if let Some(failure) = result.confirmed.first() {
        println!(
            "\nfirst confirmed imbalance failure ({} imbalance):",
            failure.kind
        );
        let log = failure.render_repro_log();
        for line in log.lines().take(12) {
            println!("  {line}");
        }
        if log.lines().count() > 12 {
            println!("  ... ({} more operations)", log.lines().count() - 12);
        }
    }

    // The evaluation harness can consult the simulator's ground truth to
    // attribute confirmations to root causes (Themis never sees this).
    let sim = oracle.borrow();
    let triggered = sim.oracle_triggered();
    println!("\nground-truth bugs triggered in the final (post-reset) segment: {triggered:?}");
    println!(
        "bytes lost to data-loss effects: {} MiB",
        sim.bytes_lost() >> 20
    );
}
