//! Property-based tests over the core invariants, spanning the fuzzer and
//! the simulator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simdfs::{BugSet, DfsRequest, DfsSim, Flavor, MIB};
use themis::{gen, mutate, InputModel, NodeInventory, TestCase};

fn model() -> InputModel {
    let mut m = InputModel::new();
    m.sync(&NodeInventory {
        mgmt: vec![0, 1, 2],
        storage: (3..10).collect(),
        volumes: (20..34).collect(),
        free_space: 1 << 36,
        files: (0..32).map(|i| format!("/seed{i}")).collect(),
        dirs: vec!["/d1".into(), "/d2".into()],
    });
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chain of mutations keeps test cases well-formed and in bounds.
    #[test]
    fn mutation_chain_preserves_invariants(seed in any::<u64>(), rounds in 1usize..40) {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut case = gen::random_case(&mut m, &mut rng, gen::MAX_SEQ_LEN);
        for _ in 0..rounds {
            case = mutate::mutate(&case, &mut m, &mut rng, gen::MAX_SEQ_LEN);
            prop_assert!(case.well_formed());
            prop_assert!(!case.is_empty());
            prop_assert!(case.len() <= gen::MAX_SEQ_LEN);
        }
    }

    /// Generation respects the requested grammar subset.
    #[test]
    fn subset_generation_is_closed(seed in any::<u64>()) {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(seed);
        let req = gen::request_only_case(&mut m, &mut rng, 8);
        prop_assert!(req.ops.iter().all(|o| o.opt.is_file_op()));
        let conf = gen::config_only_case(&mut m, &mut rng, 8);
        prop_assert!(conf.ops.iter().all(|o| o.opt.is_config_op()));
    }

    /// JSON round-trips preserve test cases exactly.
    #[test]
    fn testcase_json_roundtrip(seed in any::<u64>()) {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(seed);
        let case = gen::random_case(&mut m, &mut rng, 8);
        let json = case.to_json();
        let back = TestCase::from_json(&json).unwrap();
        prop_assert_eq!(case, back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Without data-loss bugs, bytes are conserved: stored bytes never
    /// exceed logical bytes times replication, and deleting everything the
    /// fuzzer created returns the cluster to its preloaded footprint.
    #[test]
    fn simulator_conserves_bytes(seed in any::<u64>(), n_files in 1usize..24) {
        let mut sim = DfsSim::new(Flavor::CephFs, BugSet::None);
        let base = sim.cluster().total_used();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let mut created = Vec::new();
        let mut logical = 0u64;
        for i in 0..n_files {
            let size = (1 + rng.random_range(0..64u64)) * MIB;
            let path = format!("/p{i}");
            if sim.execute(&DfsRequest::Create { path: path.clone(), size }).is_ok() {
                created.push(path);
                logical += size;
            }
        }
        let stored = sim.cluster().total_used() - base;
        prop_assert!(stored <= logical * 3, "stored {stored} > 3x logical {logical}");
        prop_assert!(stored >= logical, "stored {stored} < logical {logical} (lost replicas)");
        for p in &created {
            let deleted = sim.execute(&DfsRequest::Delete { path: p.clone() }).is_ok();
            prop_assert!(deleted);
        }
        prop_assert_eq!(sim.cluster().total_used(), base);
        prop_assert_eq!(sim.bytes_lost(), 0);
    }

    /// Rebalancing conserves bytes and reduces (or keeps) the utilization
    /// imbalance ratio when no bug effects are active.
    #[test]
    fn rebalance_is_safe_and_helpful(seed in any::<u64>()) {
        let mut sim = DfsSim::new(Flavor::GlusterFs, BugSet::None);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        for i in 0..20 {
            let size = (8 + rng.random_range(0..120u64)) * MIB;
            let _ = sim.execute(&DfsRequest::Create { path: format!("/f{i}"), size });
        }
        // Topology churn to create skew.
        let _ = sim.execute(&DfsRequest::AddStorageNode { volumes: 2, capacity: 0 });
        let before_bytes = sim.cluster().total_used();
        let before_ratio = sim.load_snapshot().storage_imbalance();
        sim.rebalance();
        let mut guard = 0;
        while sim.rebalance_status() == simdfs::RebalanceStatus::Running && guard < 3_000 {
            sim.tick(1_000);
            guard += 1;
        }
        let after_bytes = sim.cluster().total_used();
        let after_ratio = sim.load_snapshot().storage_imbalance();
        prop_assert_eq!(before_bytes, after_bytes, "rebalance must not create or destroy data");
        prop_assert!(
            after_ratio <= before_ratio + 1e-9,
            "rebalance must not worsen utilization imbalance ({before_ratio:.3} -> {after_ratio:.3})"
        );
    }

    /// Whatever request stream runs, a bug-free simulator never reports
    /// crashed nodes and its reset restores the initial inventory.
    #[test]
    fn reset_restores_initial_state(seed in any::<u64>()) {
        let sim = DfsSim::new(Flavor::LeoFs, BugSet::None);
        let initial_nodes = sim.cluster().node_ids().len();
        let initial_used = sim.cluster().total_used();
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(seed);
        // Random fuzz ops through the real generator + adaptor mapping.
        let mut adaptor = adaptors::SimAdaptor::from_handle(
            std::rc::Rc::new(std::cell::RefCell::new(sim)),
        );
        use themis::DfsAdaptor;
        for _ in 0..30 {
            let case = gen::random_case(&mut m, &mut rng, 8);
            for op in &case.ops {
                let _ = adaptor.send(op);
            }
        }
        adaptor.reset();
        let handle = adaptor.handle();
        let sim = handle.borrow();
        prop_assert_eq!(sim.cluster().node_ids().len(), initial_nodes);
        prop_assert_eq!(sim.cluster().total_used(), initial_used);
        prop_assert!(sim.crashed_nodes().is_empty());
        prop_assert_eq!(sim.namespace().file_count(),
            // Only the preloaded /sys files remain.
            sim.cluster().files().len());
    }
}
