//! Cross-crate integration tests: full Themis campaigns against the
//! simulated flavors, exercising generator, detector, adaptor and
//! simulator together.

use adaptors::SimAdaptor;
use simdfs::bugs::{BugSpec, Effect, FailureKind, Gate, Trigger};
use simdfs::{BugSet, Flavor, OpClass};
use themis::{
    by_name, run_campaign, CampaignConfig, CampaignObserver, ConfirmedFailure, DetectorConfig,
    ThemisStrategy,
};

fn short_cfg(hours: u64, seed: u64) -> CampaignConfig {
    CampaignConfig {
        budget_ms: hours * 3_600_000,
        seed,
        ..Default::default()
    }
}

#[test]
fn campaign_runs_on_every_flavor() {
    for flavor in Flavor::all() {
        let mut adaptor = SimAdaptor::new(flavor, BugSet::New);
        let mut strategy = ThemisStrategy::new();
        let res = run_campaign(
            &mut strategy,
            &mut adaptor,
            &short_cfg(1, 42),
            &mut themis::NullObserver,
        );
        assert!(
            res.ops_sent > 50,
            "{flavor}: too few ops ({})",
            res.ops_sent
        );
        assert!(
            res.final_coverage > 500,
            "{flavor}: coverage {}",
            res.final_coverage
        );
        assert!(res.iterations > 10, "{flavor}");
    }
}

#[test]
fn campaigns_are_deterministic_across_runs() {
    let run = || {
        let mut adaptor = SimAdaptor::new(Flavor::LeoFs, BugSet::New);
        let mut strategy = ThemisStrategy::new();
        run_campaign(
            &mut strategy,
            &mut adaptor,
            &short_cfg(1, 7),
            &mut themis::NullObserver,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.ops_sent, b.ops_sent);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.final_coverage, b.final_coverage);
    assert_eq!(a.confirmed.len(), b.confirmed.len());
    assert_eq!(a.candidates_raised, b.candidates_raised);
}

#[test]
fn different_seeds_explore_differently() {
    let run = |seed| {
        let mut adaptor = SimAdaptor::new(Flavor::Hdfs, BugSet::None);
        let mut strategy = ThemisStrategy::new();
        run_campaign(
            &mut strategy,
            &mut adaptor,
            &short_cfg(1, seed),
            &mut themis::NullObserver,
        )
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        (a.ops_sent, a.final_coverage),
        (b.ops_sent, b.final_coverage),
        "distinct seeds should produce distinct campaigns"
    );
}

/// A trivially triggerable seeded bug must be found and confirmed quickly,
/// and the confirmation must carry a usable reproduction log.
#[test]
fn seeded_easy_bug_is_confirmed_with_repro_log() {
    struct Counting {
        handle: adaptors::SimHandle,
        confirmed_with_bug: bool,
        log_len: usize,
    }
    impl CampaignObserver for Counting {
        fn on_confirmed(&mut self, f: &ConfirmedFailure) {
            if !self.handle.borrow().oracle_triggered().is_empty() {
                self.confirmed_with_bug = true;
                self.log_len = f.repro_log.len();
            }
        }
    }
    let easy = BugSpec {
        id: "EASY-1",
        platform: Flavor::GlusterFs,
        kind: FailureKind::ImbalancedStorage,
        title: "test bug: trips after a handful of creates",
        trigger: Trigger::op_count(vec![OpClass::Create], 3, 100),
        effect: Effect::HotspotPlacement { pct: 80 },
        gate: Gate::None,
        is_new: true,
    };
    let mut adaptor = SimAdaptor::new(Flavor::GlusterFs, BugSet::Custom(vec![easy]));
    let mut obs = Counting {
        handle: adaptor.handle(),
        confirmed_with_bug: false,
        log_len: 0,
    };
    let mut strategy = ThemisStrategy::new();
    let res = run_campaign(&mut strategy, &mut adaptor, &short_cfg(4, 3), &mut obs);
    assert!(
        obs.confirmed_with_bug,
        "easy hotspot bug must be confirmed within 4 virtual hours"
    );
    assert!(
        obs.log_len > 0,
        "confirmation must carry a reproduction log"
    );
    assert!(res.resets >= 1, "a confirmation resets the DFS");
    let rendered = res.confirmed[0].render_repro_log();
    assert!(rendered.contains("imbalance failure"));
}

/// No false positives on a bug-free build at the paper's optimal t = 25%.
#[test]
fn bug_free_build_yields_no_confirmations_at_t25() {
    for flavor in [Flavor::Hdfs, Flavor::LeoFs] {
        let mut adaptor = SimAdaptor::new(flavor, BugSet::None);
        let mut strategy = ThemisStrategy::new();
        let res = run_campaign(
            &mut strategy,
            &mut adaptor,
            &short_cfg(3, 99),
            &mut themis::NullObserver,
        );
        assert_eq!(
            res.confirmed.len(),
            0,
            "{flavor}: false positives on a bug-free build: {:?}",
            res.confirmed.iter().map(|c| c.kind).collect::<Vec<_>>()
        );
    }
}

/// A lower threshold must never raise fewer candidates than a higher one
/// on the identical load report (monotonicity of the detector).
#[test]
fn detector_threshold_monotonicity() {
    use themis::{Detector, DfsAdaptor};
    let mut adaptor = SimAdaptor::new(Flavor::GlusterFs, BugSet::None);
    // Drive some load to make the report non-trivial.
    let mut strategy = ThemisStrategy::new();
    let _ = run_campaign(
        &mut strategy,
        &mut adaptor,
        &short_cfg(1, 5),
        &mut themis::NullObserver,
    );
    let report = adaptor.load_report();
    let mut last = usize::MAX;
    for t in [0.05, 0.10, 0.20, 0.30] {
        let n = Detector::with_threshold(t).check(&report).len();
        assert!(n <= last, "candidates must not increase with t");
        last = n;
    }
}

/// All five comparison strategies plus the ablation complete campaigns on
/// the same target without panicking and with sane statistics.
#[test]
fn all_strategies_run_clean() {
    for name in themis::COMPARISON_STRATEGIES
        .iter()
        .chain(["Themis-"].iter())
    {
        let mut strategy = by_name(name).expect("strategy exists");
        let mut adaptor = SimAdaptor::new(Flavor::CephFs, BugSet::New);
        let res = run_campaign(
            strategy.as_mut(),
            &mut adaptor,
            &short_cfg(1, 13),
            &mut themis::NullObserver,
        );
        assert!(res.ops_sent > 20, "{name}");
        assert_eq!(res.strategy, *name);
    }
}

/// The detector config sweep used by Table 7 changes detector behaviour.
#[test]
fn threshold_affects_candidate_volume() {
    let run = |t: f64| {
        let mut adaptor = SimAdaptor::new(Flavor::GlusterFs, BugSet::None);
        let mut strategy = ThemisStrategy::new();
        let cfg = CampaignConfig {
            budget_ms: 2 * 3_600_000,
            seed: 21,
            detector: DetectorConfig {
                threshold_t: t,
                ..Default::default()
            },
            ..Default::default()
        };
        run_campaign(&mut strategy, &mut adaptor, &cfg, &mut themis::NullObserver).candidates_raised
    };
    let low = run(0.05);
    let high = run(0.35);
    assert!(
        low >= high,
        "a lower threshold should raise at least as many candidates ({low} vs {high})"
    );
}
