//! Determinism-contract regression tests (see DESIGN.md, "Determinism
//! contract"): a campaign is a pure function of `(seed, strategy, target)`,
//! so its rendered JSON report — every field, every float, every log line —
//! must be byte-identical across runs. This is the dynamic complement to
//! the static `detlint` pass; it would have caught the pre-PR-5 unordered
//! hash-container state (coverage sets, hash cache) had those sets ever
//! leaked iteration order into results.

use adaptors::SimAdaptor;
use simdfs::{BugSet, Flavor};
use themis::{run_campaign, CampaignConfig, ThemisStrategy};

fn report(flavor: Flavor, seed: u64) -> String {
    let mut adaptor = SimAdaptor::new(flavor, BugSet::New);
    let mut strategy = ThemisStrategy::new();
    let cfg = CampaignConfig {
        budget_ms: 2 * 3_600_000,
        seed,
        ..Default::default()
    };
    run_campaign(&mut strategy, &mut adaptor, &cfg, &mut themis::NullObserver).to_json()
}

#[test]
fn same_seed_campaigns_render_byte_identical_reports() {
    for flavor in [Flavor::Hdfs, Flavor::GlusterFs] {
        let a = report(flavor, 1709);
        let b = report(flavor, 1709);
        assert!(
            a == b,
            "{flavor}: same-seed campaign reports diverged (len {} vs {})",
            a.len(),
            b.len()
        );
        // The report must carry real content, not vacuously match.
        assert!(a.contains("\"coverage_trace\":[{"), "empty trace: {a}");
        assert!(a.len() > 500, "suspiciously small report: {a}");
    }
}

#[test]
fn different_seeds_render_different_reports() {
    let a = report(Flavor::Hdfs, 1709);
    let b = report(Flavor::Hdfs, 1710);
    assert_ne!(a, b, "distinct seeds should not collide byte-for-byte");
}
