//! Integration test of the Section-7 extension: adaptive thresholding
//! converges onto a false-positive-free operating point.

use adaptors::SimAdaptor;
use simdfs::{BugSet, Flavor};
use themis::{
    run_campaign, AdaptiveConfig, CampaignConfig, CampaignObserver, ConfirmedFailure,
    DetectorConfig, ThemisStrategy,
};

/// Oracle-backed classifier: a confirmation with no triggered bug behind
/// it is a false positive.
struct OracleClassifier {
    handle: adaptors::SimHandle,
    fp: u32,
    tp: u32,
}

impl OracleClassifier {
    fn is_true_positive(&self) -> bool {
        !self.handle.borrow().oracle_triggered().is_empty()
    }
}

impl CampaignObserver for OracleClassifier {
    fn on_confirmed(&mut self, _f: &ConfirmedFailure) {
        if self.is_true_positive() {
            self.tp += 1;
        } else {
            self.fp += 1;
        }
    }

    fn classify_confirmation(&mut self, _f: &ConfirmedFailure) -> Option<bool> {
        Some(self.is_true_positive())
    }
}

#[test]
fn adaptive_threshold_limits_false_positives() {
    // Start deliberately over-sensitive (t = 5%); the controller must pull
    // the threshold up as false positives arrive instead of drowning.
    let run_adaptive = |adaptive: Option<AdaptiveConfig>| {
        let mut adaptor = SimAdaptor::new(Flavor::GlusterFs, BugSet::None);
        let mut obs = OracleClassifier {
            handle: adaptor.handle(),
            fp: 0,
            tp: 0,
        };
        let cfg = CampaignConfig {
            budget_ms: 6 * 3_600_000,
            seed: 17,
            detector: DetectorConfig {
                threshold_t: 0.05,
                ..Default::default()
            },
            adaptive,
            ..Default::default()
        };
        let mut strategy = ThemisStrategy::new();
        let res = run_campaign(&mut strategy, &mut adaptor, &cfg, &mut obs);
        (obs.fp, res.confirmed.len() as u32)
    };

    let (fp_fixed, confirmed_fixed) = run_adaptive(None);
    let (fp_adaptive, confirmed_adaptive) = run_adaptive(Some(AdaptiveConfig {
        initial_t: 0.05,
        step: 0.05,
        max_t: 0.3,
    }));
    // On a bug-free build every confirmation is false; the adaptive run
    // must produce strictly fewer of them than the stuck-at-5% run.
    assert!(
        fp_adaptive < fp_fixed || fp_fixed == 0,
        "adaptive ({fp_adaptive}) must beat fixed-low threshold ({fp_fixed})"
    );
    assert_eq!(fp_fixed, confirmed_fixed);
    assert_eq!(fp_adaptive, confirmed_adaptive);
}

#[test]
fn adaptive_threshold_keeps_finding_real_bugs() {
    let mut adaptor = SimAdaptor::new(Flavor::GlusterFs, BugSet::New);
    let mut obs = OracleClassifier {
        handle: adaptor.handle(),
        fp: 0,
        tp: 0,
    };
    let cfg = CampaignConfig {
        budget_ms: 12 * 3_600_000,
        seed: 23,
        adaptive: Some(AdaptiveConfig::default()),
        ..Default::default()
    };
    let mut strategy = ThemisStrategy::new();
    let res = run_campaign(&mut strategy, &mut adaptor, &cfg, &mut obs);
    assert!(
        obs.tp > 0,
        "adaptive detection must still confirm seeded bugs (confirmed {})",
        res.confirmed.len()
    );
}
