//! Property-based tests of the simulator's core invariants under
//! arbitrary request streams.

use proptest::prelude::*;
use simdfs::bugs::{SimEvent, Trigger};
use simdfs::loadstats::float_mean_variance;
use simdfs::{
    BugSet, DfsRequest, DfsSim, FaultPlan, Flavor, FlavorConfig, NodeId, OpClass, RebalanceStatus,
    SimTime, VolumeId, MIB,
};

/// An arbitrary request referencing small id spaces so that a useful
/// fraction succeeds.
fn arb_request() -> impl Strategy<Value = DfsRequest> {
    let path = (0u8..12).prop_map(|i| format!("/q{i}"));
    let size = (0u64..96).prop_map(|m| m * MIB);
    let node = (0u32..24).prop_map(NodeId);
    let volume = (0u32..40).prop_map(VolumeId);
    prop_oneof![
        (path.clone(), size.clone()).prop_map(|(path, size)| DfsRequest::Create { path, size }),
        path.clone().prop_map(|path| DfsRequest::Delete { path }),
        (path.clone(), size.clone()).prop_map(|(path, delta)| DfsRequest::Append { path, delta }),
        (path.clone(), size.clone()).prop_map(|(path, size)| DfsRequest::Overwrite { path, size }),
        path.clone().prop_map(|path| DfsRequest::Open { path }),
        (path.clone(), path.clone()).prop_map(|(from, to)| DfsRequest::Rename { from, to }),
        Just(DfsRequest::AddMgmtNode),
        node.clone()
            .prop_map(|node| DfsRequest::RemoveMgmtNode { node }),
        size.clone()
            .prop_map(|capacity| DfsRequest::AddStorageNode {
                volumes: 2,
                capacity
            }),
        node.clone()
            .prop_map(|node| DfsRequest::RemoveStorageNode { node }),
        (node, size.clone()).prop_map(|(node, capacity)| DfsRequest::AddVolume { node, capacity }),
        volume
            .clone()
            .prop_map(|volume| DfsRequest::RemoveVolume { volume }),
        (volume.clone(), size.clone())
            .prop_map(|(volume, delta)| DfsRequest::ExpandVolume { volume, delta }),
        (volume, size).prop_map(|(volume, delta)| DfsRequest::ReduceVolume { volume, delta }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No request stream can violate the physical invariants of a
    /// bug-free cluster: volumes never over-filled, time monotonic,
    /// no data lost while space remains plentiful, no crashed nodes.
    #[test]
    fn physical_invariants_hold(reqs in proptest::collection::vec(arb_request(), 1..120)) {
        let mut sim = DfsSim::new(Flavor::GlusterFs, BugSet::None);
        let mut last = SimTime::ZERO;
        for req in &reqs {
            let _ = sim.execute(req);
            prop_assert!(sim.now() >= last, "virtual time must be monotonic");
            last = sim.now();
            for node in sim.cluster().storage.values() {
                for v in &node.volumes {
                    prop_assert!(
                        v.used <= v.capacity,
                        "volume {} over-filled: {}/{}",
                        v.id, v.used, v.capacity
                    );
                }
            }
        }
        prop_assert!(sim.crashed_nodes().is_empty());
        // Logical-vs-physical consistency: every namespace file's stored
        // bytes never exceed size times the replication factor.
        let rep = sim.config().replicas as u64;
        for (_, fid, size) in sim.namespace().files() {
            if let Some(meta) = sim.cluster().files().get(&fid) {
                let stored: u64 = meta.replicas.iter().map(|r| r.bytes).sum();
                prop_assert!(
                    stored <= size * rep,
                    "file {fid}: stored {stored} > {size} x{rep}"
                );
            }
        }
    }

    /// The simulator is a pure function of its request stream.
    #[test]
    fn sim_is_deterministic(reqs in proptest::collection::vec(arb_request(), 1..60)) {
        let run = |reqs: &[DfsRequest]| {
            let mut sim = DfsSim::new(Flavor::CephFs, BugSet::New);
            for r in reqs {
                let _ = sim.execute(r);
            }
            (
                sim.now(),
                sim.coverage_count(),
                sim.cluster().total_used(),
                sim.oracle_triggered().len(),
                sim.stats().migrations,
            )
        };
        prop_assert_eq!(run(&reqs), run(&reqs));
    }

    /// Rebalance always terminates and never breaks volume capacity.
    #[test]
    fn rebalance_terminates(reqs in proptest::collection::vec(arb_request(), 1..60)) {
        let mut sim = DfsSim::new(Flavor::Hdfs, BugSet::None);
        for r in &reqs {
            let _ = sim.execute(r);
        }
        sim.rebalance();
        let mut guard = 0;
        while sim.rebalance_status() == RebalanceStatus::Running {
            sim.tick(2_000);
            guard += 1;
            prop_assert!(guard < 20_000, "rebalance did not terminate");
        }
        for node in sim.cluster().storage.values() {
            for v in &node.volumes {
                prop_assert!(v.used <= v.capacity);
            }
        }
    }

    /// The streaming utilization accumulators always agree with a full
    /// recomputation: after any request stream — under any flavor and
    /// fault profile, across fork/restore boundaries — the state audit
    /// (which rebuilds the tracker from scratch and compares) passes, and
    /// the O(1) imbalance ratio matches the float ratio computed from a
    /// fresh load snapshot.
    #[test]
    fn incremental_variance_matches_full_recompute(
        reqs in proptest::collection::vec(arb_request(), 1..80),
        flavor_idx in 0usize..4,
        profile_idx in 0usize..3,
    ) {
        let flavor = Flavor::all()[flavor_idx];
        let profile = ["none", "crash", "diskfull"][profile_idx];
        let mut sim = DfsSim::new(flavor, BugSet::None);
        if profile != "none" {
            sim.set_fault_plan(FaultPlan::named(profile, 42).expect("known profile"));
        }

        let check = |sim: &mut DfsSim| -> Result<(), TestCaseError> {
            prop_assert!(
                sim.audit_state().is_ok(),
                "[{flavor:?}/{profile}] audit: {:?}",
                sim.audit_state()
            );
            let tracked = sim.cluster().util_stats().imbalance_ratio();
            let recomputed = sim.load_snapshot().storage_imbalance();
            // The tracker quantizes utilization to 2^-32; request sizes are
            // MiB-scale on GiB-scale volumes, so quantization error in the
            // ratio is orders of magnitude below this tolerance.
            prop_assert!(
                (tracked - recomputed).abs() <= 1e-6 * recomputed.max(1.0),
                "[{flavor:?}/{profile}] ratio drifted: tracked {tracked} vs recomputed {recomputed}"
            );
            Ok(())
        };

        // First half, then abandon it via restore (the undo log must put
        // the accumulators back exactly), then the full stream.
        let mark = sim.fork();
        for r in &reqs[..reqs.len() / 2] {
            let _ = sim.execute(r);
        }
        check(&mut sim)?;
        prop_assert!(sim.restore(mark), "fork mark must stay valid");
        check(&mut sim)?;
        for r in &reqs {
            let _ = sim.execute(r);
        }
        check(&mut sim)?;
    }

    /// Trigger state machines never panic and fire at most once per
    /// arming, for any event stream.
    #[test]
    fn triggers_are_total(classes in proptest::collection::vec(0u64..14, 1..300)) {
        let mut triggers = vec![
            Trigger::subseq(vec![OpClass::Create, OpClass::VolumeAdd], 4),
            Trigger::op_count(vec![OpClass::Resize], 3, 10),
            Trigger::op_count_timed(vec![OpClass::Create], 3, 10, 5_000),
            Trigger::size_spread(4, 8.0),
            Trigger::rebalance_burst(2, 10_000),
            Trigger::membership_churn(2, 10_000),
            Trigger::echoed_mix(3, 2, 1),
            Trigger::within(
                vec![
                    Trigger::op_count(vec![OpClass::Create], 2, 20),
                    Trigger::membership_churn(1, 60_000),
                ],
                50,
            ),
        ];
        let all_classes = [
            OpClass::Create, OpClass::Delete, OpClass::Resize, OpClass::Read,
            OpClass::DirMeta, OpClass::Rename, OpClass::MgmtAdd, OpClass::MgmtRemove,
            OpClass::StorageAdd, OpClass::StorageRemove, OpClass::VolumeAdd,
            OpClass::VolumeRemove, OpClass::VolumeExpand, OpClass::VolumeReduce,
        ];
        for t in &mut triggers {
            let mut fired = 0;
            for (i, c) in classes.iter().enumerate() {
                let class = all_classes[*c as usize];
                let now = SimTime((i as u64) * 700);
                let ev = SimEvent::Op { class, ok: true, size: (i as u64 % 64) * MIB };
                if t.observe(now, &ev) {
                    fired += 1;
                    break; // the engine stops feeding after a fire
                }
                if class.is_membership() {
                    let _ = t.observe(now, &SimEvent::MembershipChange { class });
                }
            }
            prop_assert!(fired <= 1);
        }
    }
}

/// One step of the 100k churn walk (see below): a data-path or
/// lifecycle mutation keyed by small deterministic operands.
fn churn_request(kind: u8, id: u32, mibs: u64) -> DfsRequest {
    let path = format!("/churn{}", id % 64);
    match kind % 6 {
        0 | 1 => DfsRequest::Create {
            path,
            size: mibs * MIB,
        },
        2 => DfsRequest::Delete { path },
        3 => DfsRequest::Append {
            path,
            delta: mibs * MIB,
        },
        4 => DfsRequest::Overwrite {
            path,
            size: mibs * MIB,
        },
        _ => DfsRequest::Open { path },
    }
}

proptest! {
    // A fresh 100k-node topology per case is the dominant cost, so this
    // block runs few cases with long churn streams rather than many short
    // ones.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// On a 100k-node topology, the streaming `UtilTracker` equals a
    /// from-scratch `f64` recompute over the node tables after long churn
    /// sequences — store/free/resize via data requests, crash/heal via a
    /// fault plan, and a fork/restore rewind in the middle. This is the
    /// differential guard for the arena-indexed tracker at the scale the
    /// sampled-placement campaigns run at.
    #[test]
    fn tracker_matches_float_recompute_after_churn_100k(
        ops in proptest::collection::vec((0u8..6, any::<u32>(), 1u64..48), 60..140),
        fault_seed in any::<u64>(),
    ) {
        let mut cfg = FlavorConfig::scaled(Flavor::Hdfs, 100_000);
        cfg.base_fill = 0.0; // the churn below provides all the load
        cfg.volumes_per_node = 1;
        let mut sim = DfsSim::with_config(cfg, BugSet::None);
        sim.set_fault_plan(FaultPlan::named("crash", fault_seed).expect("known profile"));

        let check = |sim: &DfsSim| -> Result<(), TestCaseError> {
            let t = sim.cluster().util_stats();
            let utils: Vec<f64> = sim
                .cluster()
                .storage
                .values()
                .filter(|n| n.util_q().is_some())
                .map(|n| n.used() as f64 / n.capacity() as f64)
                .collect();
            prop_assert_eq!(t.count(), utils.len(), "eligible-node count drifted");
            let (fmean, fvar) = float_mean_variance(utils.into_iter());
            // Quantization error is <= 2^-32 per node; 1e-6 is orders of
            // magnitude above it and catches any real maintenance bug.
            prop_assert!(
                (t.mean() - fmean).abs() <= 1e-6,
                "mean drifted: tracker {} vs float {}",
                t.mean(),
                fmean
            );
            prop_assert!(
                (t.variance() - fvar).abs() <= 1e-6,
                "variance drifted: tracker {} vs float {}",
                t.variance(),
                fvar
            );
            Ok(())
        };

        // First half, rewound via fork/restore, then the full stream.
        let mark = sim.fork();
        for &(kind, id, mibs) in &ops[..ops.len() / 2] {
            let _ = sim.execute(&churn_request(kind, id, mibs));
        }
        check(&sim)?;
        prop_assert!(sim.restore(mark), "fork mark must stay valid");
        check(&sim)?;
        for &(kind, id, mibs) in &ops {
            let _ = sim.execute(&churn_request(kind, id, mibs));
        }
        check(&sim)?;
        prop_assert!(sim.audit_state().is_ok(), "{:?}", sim.audit_state());
    }
}
