//! Deterministic, seed-free hashing helpers.
//!
//! Every data-path decision in the simulator (placement, routing, coverage
//! branch ids) is a pure function of its inputs through these hashes, which
//! keeps whole campaigns bit-reproducible given the fuzzer seed.

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes a string (used for DHT placement keyed on file names).
pub fn hash_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// Mixes two 64-bit values into one (splitmix64-style finalizer).
pub fn mix(a: u64, b: u64) -> u64 {
    let mut x = a
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.rotate_left(31).wrapping_mul(0xd6e8_feb8_6659_fd93));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to a float in the open interval `(0, 1)`.
///
/// The input is re-mixed first so that nearby integers map to well-spread
/// floats, and the result is never exactly 0, so it is safe as input to
/// `ln`.
pub fn hash01(h: u64) -> f64 {
    let m = mix(h, 0x7531_d0c0_ffee);
    ((m >> 11) as f64 + 1.0) / ((1u64 << 53) as f64 + 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a vector: empty input hashes to the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn mix_spreads_inputs() {
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix(0, 0), 0);
    }

    #[test]
    fn hash01_in_open_unit_interval() {
        for h in [0u64, 1, u64::MAX, 0xdead_beef] {
            let x = hash01(h);
            assert!(x > 0.0 && x < 1.0, "hash01({h}) = {x}");
        }
    }

    #[test]
    fn hash01_distinguishes_values() {
        assert_ne!(hash01(1), hash01(2));
    }
}
