//! Core identifier and quantity types shared across the simulator.

use serde::{Deserialize, Serialize};

/// Identifier of a node (management or storage) in the simulated cluster.
///
/// Node ids are allocated sequentially by the cluster and are never reused,
/// so an id uniquely identifies a node across its whole lifetime, including
/// after the node has been removed from the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a storage volume (a "brick" in GlusterFS terms, a disk in
/// HDFS terms). Volumes are attached to exactly one storage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VolumeId(pub u32);

impl std::fmt::Display for VolumeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vol{}", self.0)
    }
}

/// Identifier of a file in the simulated namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// A quantity of bytes.
pub type Bytes = u64;

/// One mebibyte, the granularity most workloads in the paper operate at.
pub const MIB: Bytes = 1024 * 1024;

/// One gibibyte.
pub const GIB: Bytes = 1024 * MIB;

/// A point in simulated time, measured in milliseconds since simulator start.
///
/// The simulator is fully virtual-time driven: a "24 hour" campaign from the
/// paper corresponds to a [`SimTime`] budget of `24 * 3_600_000` ms and runs
/// in seconds of real time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from whole simulated seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Constructs a time from whole simulated minutes.
    pub fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000)
    }

    /// Constructs a time from whole simulated hours.
    pub fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000)
    }

    /// Milliseconds since simulator start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole simulated seconds since simulator start.
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Simulated minutes since start, as a float (used by reports).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Saturating difference between two instants, in milliseconds.
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns this instant advanced by `ms` milliseconds.
    pub fn advanced(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total_secs = self.0 / 1000;
        write!(
            f,
            "{:02}:{:02}:{:02}.{:03}",
            total_secs / 3600,
            (total_secs / 60) % 60,
            total_secs % 60,
            self.0 % 1000
        )
    }
}

/// Role of a node within the DFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Metadata management node (HDFS NameNode, CephFS MDS, LeoFS gateway).
    Management,
    /// Data storage node (HDFS DataNode, Ceph OSD host, Gluster brick host).
    Storage,
}

impl std::fmt::Display for NodeRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeRole::Management => write!(f, "management"),
            NodeRole::Storage => write!(f, "storage"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_constructors_agree() {
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_mins(2).as_millis(), 120_000);
        assert_eq!(SimTime::from_hours(24).as_millis(), 86_400_000);
    }

    #[test]
    fn sim_time_saturating_since_never_underflows() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(b.saturating_since(a), 4_000);
        assert_eq!(a.saturating_since(b), 0);
    }

    #[test]
    fn sim_time_display_formats_hms() {
        let t = SimTime(3_661_042);
        assert_eq!(t.to_string(), "01:01:01.042");
    }

    #[test]
    fn sim_time_advanced_adds() {
        assert_eq!(SimTime(10).advanced(5), SimTime(15));
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(VolumeId(7).to_string(), "vol7");
        assert_eq!(FileId(9).to_string(), "file9");
        assert_eq!(NodeRole::Management.to_string(), "management");
        assert_eq!(NodeRole::Storage.to_string(), "storage");
    }

    #[test]
    fn as_mins_f64_is_fractional() {
        assert!((SimTime(90_000).as_mins_f64() - 1.5).abs() < 1e-9);
    }
}
