//! Node and volume state for the simulated cluster.

use crate::metrics::NodeLoadAccount;
use crate::types::{Bytes, NodeId, SimTime, VolumeId};

/// A storage volume (disk / brick) attached to a storage node.
#[derive(Debug, Clone)]
pub struct Volume {
    /// Stable volume id.
    pub id: VolumeId,
    /// Total capacity in bytes.
    pub capacity: Bytes,
    /// Bytes of file data currently stored.
    pub used: Bytes,
}

impl Volume {
    /// Remaining free bytes.
    pub fn free(&self) -> Bytes {
        self.capacity.saturating_sub(self.used)
    }

    /// Utilization in `[0, 1]` (0 for zero-capacity volumes).
    pub fn util(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }
}

/// A data storage node hosting one or more volumes.
#[derive(Debug, Clone)]
pub struct StorageNode {
    /// Stable node id.
    pub id: NodeId,
    /// Whether the node is currently online.
    pub online: bool,
    /// Attached volumes.
    pub volumes: Vec<Volume>,
    /// Live load counters (IO, CPU from migrations).
    pub load: NodeLoadAccount,
    /// When the node joined the cluster.
    pub joined: SimTime,
}

impl StorageNode {
    /// Bytes stored across all volumes.
    pub fn used(&self) -> Bytes {
        self.volumes.iter().map(|v| v.used).sum()
    }

    /// Total capacity across all volumes.
    pub fn capacity(&self) -> Bytes {
        self.volumes.iter().map(|v| v.capacity).sum()
    }

    /// Free bytes across all volumes.
    pub fn free(&self) -> Bytes {
        self.volumes.iter().map(|v| v.free()).sum()
    }

    /// Mutable reference to a volume by id.
    pub fn volume_mut(&mut self, id: VolumeId) -> Option<&mut Volume> {
        self.volumes.iter_mut().find(|v| v.id == id)
    }

    /// Shared reference to a volume by id.
    pub fn volume(&self, id: VolumeId) -> Option<&Volume> {
        self.volumes.iter().find(|v| v.id == id)
    }

    /// The node's quantized utilization for the streaming load stats, or
    /// `None` if the node is ineligible for the storage pool (offline,
    /// diskless, or zero total capacity). This is the single definition of
    /// eligibility shared by the variance sampler, the balancer's
    /// activation check, and the cluster auditor.
    pub fn util_q(&self) -> Option<u64> {
        if !self.online || self.volumes.is_empty() {
            return None;
        }
        let cap = self.capacity();
        if cap == 0 {
            return None;
        }
        Some(crate::loadstats::quantize(self.used(), cap))
    }
}

/// A metadata management node (NameNode / MDS / gateway).
#[derive(Debug, Clone)]
pub struct MgmtNode {
    /// Stable node id.
    pub id: NodeId,
    /// Whether the node is currently online.
    pub online: bool,
    /// Number of CPU cores (homogeneous per the paper's system model).
    pub cores: u32,
    /// Live load counters (requests, CPU, IO).
    pub load: NodeLoadAccount,
    /// When the node joined the cluster.
    pub joined: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol(id: u32, cap: Bytes, used: Bytes) -> Volume {
        Volume {
            id: VolumeId(id),
            capacity: cap,
            used,
        }
    }

    #[test]
    fn volume_free_saturates() {
        let v = vol(0, 100, 150);
        assert_eq!(v.free(), 0);
    }

    #[test]
    fn volume_util_zero_capacity() {
        assert_eq!(vol(0, 0, 0).util(), 0.0);
    }

    #[test]
    fn util_q_encodes_eligibility() {
        let mut node = StorageNode {
            id: NodeId(1),
            online: true,
            volumes: vec![vol(0, 100, 25), vol(1, 100, 25)],
            load: NodeLoadAccount::default(),
            joined: SimTime::ZERO,
        };
        assert_eq!(node.util_q(), Some(1 << 30)); // 50/200 = 1/4
        node.online = false;
        assert_eq!(node.util_q(), None);
        node.online = true;
        node.volumes.clear();
        assert_eq!(node.util_q(), None);
        node.volumes.push(vol(0, 0, 0));
        assert_eq!(node.util_q(), None, "zero capacity is ineligible");
    }

    #[test]
    fn storage_node_aggregates_volumes() {
        let node = StorageNode {
            id: NodeId(1),
            online: true,
            volumes: vec![vol(0, 100, 30), vol(1, 200, 50)],
            load: NodeLoadAccount::default(),
            joined: SimTime::ZERO,
        };
        assert_eq!(node.used(), 80);
        assert_eq!(node.capacity(), 300);
        assert_eq!(node.free(), 220);
        assert!(node.volume(VolumeId(1)).is_some());
        assert!(node.volume(VolumeId(9)).is_none());
    }
}
