//! Per-node load accounting and cluster load snapshots.
//!
//! This module implements the measurement side of the paper's Load Variance
//! Model (Figure 8): every node carries computation load (CPU utilization
//! across its cores), network load (requests per unit time plus read/write
//! IO counts) and storage load (bytes stored). Rate-like quantities (rps,
//! CPU, IO) are tracked as exponentially decaying counters over virtual
//! time so that bursts decay exactly the way a `top`/`iostat` style monitor
//! would observe on a real cluster.

use crate::types::{Bytes, NodeId, NodeRole, SimTime};
use serde::{Deserialize, Serialize};

/// Time constant (ms) for rate decay: a five-minute observation window.
/// Long enough to smooth the multinomial noise of request routing (so the
/// network/CPU detectors see systematic skew rather than per-minute jitter),
/// short enough that funnel/spin effects dominate within one fuzzing
/// iteration.
const DECAY_WINDOW_MS: f64 = 300_000.0;

/// An exponentially decaying rate counter.
///
/// `add` records events at the current instant; `rate` reports the decayed
/// events-per-second estimate. Decay is applied lazily on access so the
/// counter costs nothing while idle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecayingRate {
    value: f64,
    last: SimTime,
}

impl Default for DecayingRate {
    fn default() -> Self {
        DecayingRate {
            value: 0.0,
            last: SimTime::ZERO,
        }
    }
}

impl DecayingRate {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    fn decay_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last) as f64;
        if dt > 0.0 {
            self.value *= (-dt / DECAY_WINDOW_MS).exp();
            self.last = now;
        }
    }

    /// Records `amount` events at instant `now`.
    pub fn add(&mut self, now: SimTime, amount: f64) {
        self.decay_to(now);
        self.value += amount;
    }

    /// The decayed accumulated value as observed at `now`.
    pub fn value_at(&mut self, now: SimTime) -> f64 {
        self.decay_to(now);
        self.value
    }

    /// Clears the counter.
    pub fn reset(&mut self) {
        self.value = 0.0;
        self.last = SimTime::ZERO;
    }

    /// The raw, not-yet-decayed accumulated value (diagnostics/audit only —
    /// use [`DecayingRate::value_at`] for observations).
    pub fn peek_raw(&self) -> f64 {
        self.value
    }

    /// The instant of the most recent update (diagnostics/audit only).
    pub fn last_update(&self) -> SimTime {
        self.last
    }
}

/// Live load accounting attached to one node.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeLoadAccount {
    /// Decaying CPU work counter (abstract work units).
    pub cpu: DecayingRate,
    /// Decaying count of client requests handled.
    pub rps: DecayingRate,
    /// Decaying count of read IO operations.
    pub read_io: DecayingRate,
    /// Decaying count of write IO operations.
    pub write_io: DecayingRate,
}

impl NodeLoadAccount {
    /// Clears all counters.
    pub fn reset(&mut self) {
        self.cpu.reset();
        self.rps.reset();
        self.read_io.reset();
        self.write_io.reset();
    }
}

/// A point-in-time view of one node's load, as collected by a monitor.
///
/// This is what the paper's `LoadMonitor()` interface returns per node and
/// what the Load Variance Model consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLoadSample {
    /// The observed node.
    pub node: NodeId,
    /// The node's role (management nodes carry network/CPU load, storage
    /// nodes carry storage load; both carry IO).
    pub role: NodeRole,
    /// Whether the node was online when sampled.
    pub online: bool,
    /// Decayed CPU utilization (work units per window).
    pub cpu: f64,
    /// Decayed requests handled per window.
    pub rps: f64,
    /// Decayed read IO operations per window.
    pub read_io: f64,
    /// Decayed write IO operations per window.
    pub write_io: f64,
    /// Bytes of file data stored on the node (sum over its volumes).
    pub storage: Bytes,
    /// Total capacity of the node's volumes in bytes.
    pub capacity: Bytes,
    /// Milliseconds since the node joined the cluster.
    pub uptime_ms: u64,
}

impl NodeLoadSample {
    /// Storage utilization in `[0, 1]`, or 0 for nodes without capacity.
    pub fn storage_util(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.storage as f64 / self.capacity as f64
        }
    }
}

/// A cluster-wide load snapshot at one instant.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Instant the snapshot was taken.
    pub time: SimTime,
    /// One sample per cluster node (management and storage).
    pub nodes: Vec<NodeLoadSample>,
}

impl ClusterSnapshot {
    /// Samples for online nodes of the given role.
    pub fn by_role(&self, role: NodeRole) -> impl Iterator<Item = &NodeLoadSample> {
        self.nodes
            .iter()
            .filter(move |n| n.role == role && n.online)
    }

    /// Max-over-mean imbalance ratio for a metric over the given samples.
    ///
    /// Returns `max / mean` where `mean` is over all provided values, or 1.0
    /// when there are fewer than two samples or the mean is ~zero (a cluster
    /// with no load is trivially balanced). This is the LBS quantity from
    /// Section 2.2 of the paper.
    pub fn imbalance_ratio(values: &[f64]) -> f64 {
        Self::imbalance_ratio_iter(values.iter().copied())
    }

    /// Streaming form of [`ClusterSnapshot::imbalance_ratio`]: consumes the
    /// values in one pass with no intermediate collection. The simulator's
    /// per-operation variance sampling uses this for the CPU/network
    /// dimensions (bounded management fleets); the storage dimension is
    /// served in O(1) by the incrementally maintained
    /// [`crate::loadstats::UtilTracker`], whose `imbalance_ratio` computes
    /// the same max-over-mean quantity from quantized utilizations.
    pub fn imbalance_ratio_iter(values: impl Iterator<Item = f64>) -> f64 {
        let (mut n, mut sum, mut max) = (0usize, 0.0f64, f64::MIN);
        for v in values {
            n += 1;
            sum += v;
            max = max.max(v);
        }
        if n < 2 {
            return 1.0;
        }
        let mean = sum / n as f64;
        if mean <= f64::EPSILON {
            return 1.0;
        }
        max / mean
    }

    /// Storage imbalance ratio over online storage nodes, measured on
    /// utilization (used/capacity) as the HDFS Balancer defines it — with
    /// heterogeneous per-node capacities (volume attach/detach), raw bytes
    /// cannot be equalized but utilization can.
    pub fn storage_imbalance(&self) -> f64 {
        let v: Vec<f64> = self
            .by_role(NodeRole::Storage)
            .filter(|n| n.capacity > 0)
            .map(|n| n.storage as f64 / n.capacity as f64)
            .collect();
        Self::imbalance_ratio(&v)
    }

    /// CPU imbalance ratio over online management nodes.
    pub fn cpu_imbalance(&self) -> f64 {
        let v: Vec<f64> = self.by_role(NodeRole::Management).map(|n| n.cpu).collect();
        Self::imbalance_ratio(&v)
    }

    /// Network imbalance ratio over online management nodes.
    ///
    /// Network load is the request rate plus read/write IO, matching the
    /// paper's network load data definition.
    pub fn network_imbalance(&self) -> f64 {
        let v: Vec<f64> = self
            .by_role(NodeRole::Management)
            .map(|n| n.rps + n.read_io + n.write_io)
            .collect();
        Self::imbalance_ratio(&v)
    }

    /// Total bytes stored across online storage nodes.
    pub fn total_stored(&self) -> Bytes {
        self.by_role(NodeRole::Storage).map(|n| n.storage).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: u32, role: NodeRole, storage: Bytes) -> NodeLoadSample {
        NodeLoadSample {
            node: NodeId(node),
            role,
            online: true,
            cpu: 0.0,
            rps: 0.0,
            read_io: 0.0,
            write_io: 0.0,
            storage,
            capacity: 100,
            uptime_ms: 1 << 40,
        }
    }

    #[test]
    fn decaying_rate_decays_over_time() {
        let mut r = DecayingRate::new();
        r.add(SimTime(0), 100.0);
        let decayed = r.value_at(SimTime(300_000));
        assert!(
            decayed < 100.0 * 0.37 + 1.0,
            "expected ~e^-1 decay, got {decayed}"
        );
        assert!(decayed > 30.0);
    }

    #[test]
    fn decaying_rate_accumulates_without_time_passing() {
        let mut r = DecayingRate::new();
        r.add(SimTime(5), 1.0);
        r.add(SimTime(5), 2.0);
        assert!((r.value_at(SimTime(5)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_ratio_of_uniform_load_is_one() {
        let v = vec![10.0, 10.0, 10.0];
        assert!((ClusterSnapshot::imbalance_ratio(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_ratio_detects_hotspot() {
        let v = vec![10.0, 10.0, 40.0];
        // mean = 20, max = 40 -> ratio 2.0
        assert!((ClusterSnapshot::imbalance_ratio(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_ratio_degenerate_cases_are_balanced() {
        assert_eq!(ClusterSnapshot::imbalance_ratio(&[]), 1.0);
        assert_eq!(ClusterSnapshot::imbalance_ratio(&[5.0]), 1.0);
        assert_eq!(ClusterSnapshot::imbalance_ratio(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn snapshot_storage_imbalance_ignores_management_nodes() {
        let snap = ClusterSnapshot {
            time: SimTime::ZERO,
            nodes: vec![
                sample(0, NodeRole::Management, 999),
                sample(1, NodeRole::Storage, 10),
                sample(2, NodeRole::Storage, 30),
            ],
        };
        // mean = 20, max = 30 -> 1.5; the management node's bytes are ignored.
        assert!((snap.storage_imbalance() - 1.5).abs() < 1e-12);
        assert_eq!(snap.total_stored(), 40);
    }

    #[test]
    fn snapshot_skips_offline_nodes() {
        let mut off = sample(3, NodeRole::Storage, 1_000_000);
        off.online = false;
        let snap = ClusterSnapshot {
            time: SimTime::ZERO,
            nodes: vec![
                sample(1, NodeRole::Storage, 10),
                sample(2, NodeRole::Storage, 10),
                off,
            ],
        };
        assert!((snap.storage_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn storage_util_handles_zero_capacity() {
        let mut s = sample(1, NodeRole::Storage, 10);
        s.capacity = 0;
        assert_eq!(s.storage_util(), 0.0);
    }
}
