//! Crash-point instrumentation over the migration pipeline.
//!
//! Every migration the balancer executes decomposes into enumerable
//! micro-steps — plan, per-fragment copy, file-table commit, source-space
//! reclaim, linkfile/cache cleanup — and the boundary after each completed
//! micro-step is a deterministic **crash point**. When the instrumentation
//! is armed (see [`crate::sim::DfsSim::arm_crash_enumeration`] /
//! [`crate::sim::DfsSim::arm_crash_at`]), the simulator either counts the
//! points it passes or kills the machine applying the step at exactly one
//! of them, leaving the mid-migration state a real power failure would.
//!
//! Recovery ([`crate::sim::DfsSim::recover_crashed_machine`]) restarts the
//! machine and runs the flavor's restart-time repair, which carries three
//! **seeded crash-window bug classes** — lost linkfiles, orphan replicas,
//! double-counted blocks — that only manifest when a crash lands inside
//! the matching micro-window. The crash-consistency oracle
//! ([`crate::sim::DfsSim::check_crash_invariants`]) re-derives the
//! namespace/replica/accounting invariants after recovery and classifies
//! any violation.
//!
//! Normal campaigns never pay for any of this: with the instrumentation
//! disarmed the migration loop takes the atomic [`crate::Cluster::migrate`]
//! fast path, byte-identical to the pre-instrumentation behaviour.

use crate::balancer::MigrationMove;
use crate::types::{Bytes, NodeId};

/// Position of a crash point inside one migration's micro-step sequence:
/// the crash fires *after* the named micro-step completed and before the
/// next one starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStepKind {
    /// Planning/validation done; no data moved yet.
    Plan,
    /// Fragment `fragment` of `of` landed on the destination; the file
    /// table still points at the source.
    Copy {
        /// 1-based index of the fragment that just landed.
        fragment: u8,
        /// Total fragments in this move.
        of: u8,
    },
    /// The file table now names the destination, but the source space has
    /// not been reclaimed: the moved bytes are counted on both ends.
    CommitSwap,
    /// Source space reclaimed; linkfile/cache cleanup still pending.
    CommitAccount,
    /// The move is fully durable, cleanup included.
    Cleanup,
}

impl MigrationStepKind {
    /// Short deterministic label (`plan`, `copy 2/4`, ...).
    pub fn label(&self) -> String {
        match self {
            MigrationStepKind::Plan => "plan".to_string(),
            MigrationStepKind::Copy { fragment, of } => format!("copy {fragment}/{of}"),
            MigrationStepKind::CommitSwap => "commit-swap".to_string(),
            MigrationStepKind::CommitAccount => "commit-account".to_string(),
            MigrationStepKind::Cleanup => "cleanup".to_string(),
        }
    }

    /// Whether the file-table commit had landed when the crash fired (the
    /// linkfile invariant only binds completed moves).
    pub fn committed(&self) -> bool {
        matches!(
            self,
            MigrationStepKind::CommitAccount | MigrationStepKind::Cleanup
        )
    }
}

/// The migration a fired crash interrupted, as recorded at the instant the
/// victim machine went down. Recovery and the oracle both key off it.
#[derive(Debug, Clone)]
pub struct InFlightMove {
    /// The planned move being executed.
    pub mv: MigrationMove,
    /// Last micro-step that completed before the crash.
    pub step: MigrationStepKind,
    /// Bytes already landed on the destination volume.
    pub copied: Bytes,
    /// Source replica size (what a completed move would reclaim).
    pub moved: Bytes,
    /// Bytes the destination replica would hold after commit.
    pub kept: Bytes,
    /// The file's placement key (for the linkfile recompute).
    pub key: u64,
    /// The machine that crashed while applying the step.
    pub victim: NodeId,
    /// Crash-point index (0-based since arming) that fired.
    pub point: u64,
}

impl InFlightMove {
    /// Deterministic human-readable label for reports.
    pub fn label(&self) -> String {
        format!(
            "{} f{} {}->{}",
            self.step.label(),
            self.mv.file,
            self.mv.from,
            self.mv.to
        )
    }
}

/// What the armed instrumentation does at each crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CrashPlan {
    /// Count and label every crash point passed; never crash.
    Enumerate,
    /// Crash at the point with this 0-based index.
    At(u64),
}

/// Live crash-instrumentation state. Small and cloned wholesale into
/// snapshot-fork marks, so a restore rewinds it with everything else.
#[derive(Debug, Clone, Default)]
pub(crate) struct CrashRuntime {
    /// `Some` while armed; `None` on the (hot) normal path.
    pub plan: Option<CrashPlan>,
    /// Crash points passed since arming.
    pub points_seen: u64,
    /// Labels of the points passed (enumeration mode only).
    pub labels: Vec<String>,
    /// Set when an armed crash fires; cleared by recovery.
    pub in_flight: Option<InFlightMove>,
    /// The last recovered move, kept for the oracle's classification.
    pub recovered: Option<InFlightMove>,
}

impl CrashRuntime {
    /// Whether crash instrumentation is armed (micro-step path active).
    pub fn armed(&self) -> bool {
        self.plan.is_some()
    }
}

/// The seeded crash-window failure classes, plus a backstop for any other
/// corruption the release-mode audit uncovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashClass {
    /// A committed move lost its DHT linkfile rewrite: lookups at the hash
    /// location find neither data nor a pointer.
    LostLinkfile,
    /// Partially copied bytes on the destination that no file-table entry
    /// owns — allocated space nobody can ever reclaim.
    OrphanReplica,
    /// The moved bytes are counted on both the source and the destination
    /// (the source reclaim never ran after the commit).
    DoubleCountedBlocks,
    /// Any other inconsistency caught by the first-principles audit.
    Other,
}

impl CrashClass {
    /// Stable snake_case name used in reports and artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            CrashClass::LostLinkfile => "lost_linkfile",
            CrashClass::OrphanReplica => "orphan_replica",
            CrashClass::DoubleCountedBlocks => "double_counted_blocks",
            CrashClass::Other => "other",
        }
    }
}

/// One crash-consistency invariant violation found by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashViolation {
    /// Which seeded class the violation belongs to.
    pub class: CrashClass,
    /// First-principles description of the inconsistency.
    pub detail: String,
}

impl std::fmt::Display for CrashViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.class.as_str(), self.detail)
    }
}

/// Deterministic fragment count for a migration of `bytes`: one fragment
/// per 256 MiB started, capped at 4 — enough structure for distinct
/// mid-copy crash points without exploding the exploration space.
pub(crate) fn fragment_count(bytes: Bytes) -> u8 {
    const FRAGMENT: Bytes = 256 << 20;
    let n = bytes.div_ceil(FRAGMENT).clamp(1, 4);
    n as u8
}

/// Size of fragment `i` (0-based) of `of` for a `bytes`-sized copy: even
/// split, remainder on the last fragment, so the sizes always sum to
/// `bytes`.
pub(crate) fn fragment_bytes(bytes: Bytes, of: u8, i: u8) -> Bytes {
    let of = of as Bytes;
    let i = i as Bytes;
    let share = bytes / of;
    if i + 1 == of {
        bytes - share * (of - 1)
    } else {
        share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragments_cover_bytes_exactly() {
        for bytes in [1u64, 1 << 20, 256 << 20, (256 << 20) + 1, 3 << 30, 64] {
            let n = fragment_count(bytes);
            assert!((1..=4).contains(&n));
            let total: Bytes = (0..n).map(|i| fragment_bytes(bytes, n, i)).sum();
            assert_eq!(total, bytes, "fragments of {bytes} must sum back");
        }
    }

    #[test]
    fn step_labels_are_distinct_and_stable() {
        let steps = [
            MigrationStepKind::Plan,
            MigrationStepKind::Copy { fragment: 1, of: 2 },
            MigrationStepKind::Copy { fragment: 2, of: 2 },
            MigrationStepKind::CommitSwap,
            MigrationStepKind::CommitAccount,
            MigrationStepKind::Cleanup,
        ];
        let labels: Vec<String> = steps.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(MigrationStepKind::CommitAccount.committed());
        assert!(!MigrationStepKind::CommitSwap.committed());
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(CrashClass::LostLinkfile.as_str(), "lost_linkfile");
        assert_eq!(CrashClass::OrphanReplica.as_str(), "orphan_replica");
        assert_eq!(
            CrashClass::DoubleCountedBlocks.as_str(),
            "double_counted_blocks"
        );
        assert_eq!(CrashClass::Other.as_str(), "other");
    }
}
