//! The storage load balancer: collector, calculator, planner and executor.
//!
//! This implements the generic pipeline of Figure 1: a *Load Collector*
//! gathers per-node usage, a *Load Calculator* decides whether the
//! distribution exceeds the flavor threshold, a *Migration Planner*
//! computes file moves from over- to under-utilized nodes, and a
//! *Migration Executor* applies them a few moves per virtual time step.
//! Triggered bug effects hook into the planner and executor exactly where
//! the corresponding real bugs lived (plan filtering, lossy moves,
//! misreported completion).

// detlint:allow-file(float-accum): every reduction here (fill means, max
// fills) folds over a Vec built from `Cluster::node_fill`, which iterates
// BTreeMap node ids in ascending order — the accumulation order is pinned.

use crate::cluster::Cluster;
use crate::types::{Bytes, FileId, NodeId, VolumeId};
use std::collections::VecDeque;

/// Movable replicas on one donor node: `(file, volume, bytes)` triples.
type DonorReplicas = Vec<(FileId, VolumeId, Bytes)>;

/// One planned file move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationMove {
    /// File whose replica moves.
    pub file: FileId,
    /// Source volume.
    pub from: VolumeId,
    /// Source node (for effect hooks and accounting).
    pub from_node: NodeId,
    /// Destination volume.
    pub to: VolumeId,
    /// Destination node.
    pub to_node: NodeId,
    /// Replica bytes to move.
    pub bytes: Bytes,
}

/// Whether the balancer is idle or executing a migration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalancePhase {
    /// No rebalance in flight.
    Idle,
    /// A migration plan is being executed.
    Migrating,
}

/// Externally visible rebalance status (the paper's `rebalance state` API).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceStatus {
    /// The balancer is idle and the last round (if any) completed.
    Done,
    /// A rebalance round is still migrating data.
    Running,
}

/// Balancer state for one simulated DFS.
#[derive(Debug, Clone)]
pub struct Balancer {
    /// Imbalance threshold `t` (fraction over the mean).
    pub threshold: f64,
    /// Current phase.
    pub phase: RebalancePhase,
    /// Remaining moves of the in-flight plan.
    pub queue: VecDeque<MigrationMove>,
    /// Rounds started since simulator start.
    pub rounds: u64,
    /// Moves successfully executed since simulator start.
    pub total_moves: u64,
    /// Bytes migrated since simulator start.
    pub total_bytes_moved: u64,
}

impl Balancer {
    /// Creates an idle balancer with the given threshold.
    pub fn new(threshold: f64) -> Self {
        Balancer {
            threshold,
            phase: RebalancePhase::Idle,
            queue: VecDeque::new(),
            rounds: 0,
            total_moves: 0,
            total_bytes_moved: 0,
        }
    }

    /// Load Calculator: whether the per-node storage utilization exceeds
    /// the threshold (max fill > mean fill * (1 + t)). Real balancers
    /// compare utilization, not raw bytes (the HDFS Balancer's definition),
    /// which stays meaningful when volume attach/detach makes node
    /// capacities differ.
    ///
    /// Runs once per executed operation (the activation check), so it
    /// reads the cluster's streaming utilization stats in O(1) instead of
    /// walking every node. The eligibility filter is identical to the old
    /// walk: `UtilTracker` entries exist exactly for the nodes
    /// [`Self::fills`] would have returned (see `StorageNode::util_q`).
    pub fn needs_rebalance(&self, cluster: &Cluster) -> bool {
        cluster.util_stats().is_imbalanced(self.threshold)
    }

    /// Per-node utilization for online storage nodes.
    ///
    /// O(nodes). Only called from the planning paths ([`Self::plan`],
    /// [`Self::donor_nodes`], [`Self::hottest_node`]), which run when a
    /// rebalance round *starts* — not per executed operation.
    fn fills(cluster: &Cluster) -> Vec<(NodeId, f64)> {
        cluster
            .node_fill()
            .into_iter()
            .filter(|(_, _, cap)| *cap > 0)
            .map(|(n, used, cap)| (n, used as f64 / cap as f64))
            .collect()
    }

    /// The most utilized online storage node (the "hotspot" candidate).
    pub fn hottest_node(cluster: &Cluster) -> Option<NodeId> {
        Self::fills(cluster)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| n)
    }

    /// Nodes over the donor threshold — exactly the donors [`Self::plan`]
    /// would shed replicas from, computed without touching the file table.
    ///
    /// This lets callers that are about to filter the plan (effect hooks)
    /// prove it empty cheaply: if every donor is excluded, no move survives.
    pub fn donor_nodes(&self, cluster: &Cluster) -> Vec<NodeId> {
        let fills = Self::fills(cluster);
        if fills.len() < 2 {
            return Vec::new();
        }
        let mean = fills.iter().map(|(_, f)| f).sum::<f64>() / fills.len() as f64;
        if mean <= f64::EPSILON {
            return Vec::new();
        }
        fills
            .into_iter()
            .filter(|(_, f)| *f > mean * (1.0 + self.threshold * 0.5))
            .map(|(n, _)| n)
            .collect()
    }

    /// Migration Planner: plans moves that bring every node's utilization
    /// within the threshold band around the mean utilization.
    ///
    /// Over-utilized nodes shed their largest replicas first (as the HDFS
    /// balancer and Gluster rebalance do) toward the volume with the most
    /// free space on the least-utilized node. The plan is a pure function
    /// of cluster state.
    pub fn plan(&self, cluster: &Cluster) -> Vec<MigrationMove> {
        let caps: std::collections::BTreeMap<NodeId, f64> = cluster
            .node_fill()
            .into_iter()
            .filter(|(_, _, cap)| *cap > 0)
            .map(|(n, _, cap)| (n, cap as f64))
            .collect();
        let fills = Self::fills(cluster);
        if fills.len() < 2 {
            return Vec::new();
        }
        let mean = fills.iter().map(|(_, f)| f).sum::<f64>() / fills.len() as f64;
        if mean <= f64::EPSILON {
            return Vec::new();
        }
        // Projected node utilization, updated as we assign moves.
        let mut projected: Vec<(NodeId, f64)> = fills.clone();
        // Donor replicas, largest first. Buckets are filled in a single
        // pass over the file table (a volume belongs to exactly one node,
        // so a volume→donor-bucket map preserves the per-donor replica
        // order the old per-donor scans produced).
        let mut donors: Vec<(NodeId, DonorReplicas)> = fills
            .iter()
            .filter(|(_, f)| *f > mean * (1.0 + self.threshold * 0.5))
            .map(|(n, _)| (*n, DonorReplicas::new()))
            .collect();
        if !donors.is_empty() {
            let mut vol_bucket: std::collections::BTreeMap<VolumeId, usize> =
                std::collections::BTreeMap::new();
            for (i, (node, _)) in donors.iter().enumerate() {
                if let Some(sn) = cluster.storage.get(node) {
                    for v in &sn.volumes {
                        vol_bucket.insert(v.id, i);
                    }
                }
            }
            for (fid, meta) in cluster.files() {
                for r in &meta.replicas {
                    if r.bytes > 0 {
                        if let Some(&i) = vol_bucket.get(&r.volume) {
                            donors[i].1.push((*fid, r.volume, r.bytes));
                        }
                    }
                }
            }
            for (_, replicas) in &mut donors {
                replicas.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
            }
        }
        // Deterministic order: most utilized donor first.
        donors.sort_by(|a, b| {
            let fa = fills
                .iter()
                .find(|(n, _)| *n == a.0)
                .map(|(_, f)| *f)
                .unwrap_or(0.0);
            let fb = fills
                .iter()
                .find(|(n, _)| *n == b.0)
                .map(|(_, f)| *f)
                .unwrap_or(0.0);
            fb.total_cmp(&fa).then(a.0.cmp(&b.0))
        });
        let mut moves = Vec::new();
        for (donor, replicas) in donors {
            let donor_cap = caps.get(&donor).copied().unwrap_or(1.0);
            for (fid, from_vol, bytes) in replicas {
                let donor_fill = projected
                    .iter()
                    .find(|(n, _)| *n == donor)
                    .map(|(_, f)| *f)
                    .unwrap_or(0.0);
                if donor_fill <= mean * (1.0 + self.threshold * 0.25) {
                    break;
                }
                // Receiver: least-utilized other node that stays within the
                // threshold band after taking the replica.
                let mut receivers: Vec<(NodeId, f64)> = projected
                    .iter()
                    .filter(|(n, f)| {
                        *n != donor && {
                            let cap = caps.get(n).copied().unwrap_or(1.0);
                            f + bytes as f64 / cap <= mean * (1.0 + self.threshold)
                        }
                    })
                    .cloned()
                    .collect();
                receivers.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                let Some((recv, _)) = receivers.first().cloned() else {
                    continue;
                };
                let Some(sn) = cluster.storage.get(&recv) else {
                    continue;
                };
                let Some(best_vol) = sn
                    .volumes
                    .iter()
                    .filter(|v| v.free() >= bytes)
                    .max_by_key(|v| (v.free(), std::cmp::Reverse(v.id)))
                else {
                    continue;
                };
                moves.push(MigrationMove {
                    file: fid,
                    from: from_vol,
                    from_node: donor,
                    to: best_vol.id,
                    to_node: recv,
                    bytes,
                });
                let recv_cap = caps.get(&recv).copied().unwrap_or(1.0);
                for (n, f) in &mut projected {
                    if *n == donor {
                        *f -= bytes as f64 / donor_cap;
                    } else if *n == recv {
                        *f += bytes as f64 / recv_cap;
                    }
                }
            }
        }
        moves
    }

    /// [`Balancer::plan`] restricted to reachable nodes: moves touching an
    /// excluded (partitioned) node are dropped, as a real balancer's RPCs
    /// to an unreachable peer would fail.
    pub fn plan_excluding(&self, cluster: &Cluster, excluded: &[NodeId]) -> Vec<MigrationMove> {
        let mut plan = self.plan(cluster);
        if !excluded.is_empty() {
            plan.retain(|m| !excluded.contains(&m.from_node) && !excluded.contains(&m.to_node));
        }
        plan
    }

    /// Starts a round with the given (possibly effect-filtered) plan.
    pub fn start_round(&mut self, plan: Vec<MigrationMove>) {
        self.rounds += 1;
        self.queue = plan.into();
        self.phase = if self.queue.is_empty() {
            RebalancePhase::Idle
        } else {
            RebalancePhase::Migrating
        };
    }

    /// Pops up to `n` moves for the executor.
    pub fn next_moves(&mut self, n: usize) -> Vec<MigrationMove> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.queue.pop_front() {
                Some(m) => out.push(m),
                None => break,
            }
        }
        if self.queue.is_empty() {
            self.phase = RebalancePhase::Idle;
        }
        out
    }

    /// Puts a deferred move back at the queue tail (slow-storage faults
    /// stall individual migrations without dropping them), reopening the
    /// round if `next_moves` just drained the queue.
    pub fn requeue(&mut self, m: MigrationMove) {
        self.queue.push_back(m);
        self.phase = RebalancePhase::Migrating;
    }

    /// Externally visible status.
    pub fn status(&self) -> RebalanceStatus {
        match self.phase {
            RebalancePhase::Idle => RebalanceStatus::Done,
            RebalancePhase::Migrating => RebalanceStatus::Running,
        }
    }

    /// Drops the in-flight plan (reset).
    pub fn abort(&mut self) {
        self.queue.clear();
        self.phase = RebalancePhase::Idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileId;

    /// Builds a 3-node cluster with a deliberately skewed load.
    fn skewed_cluster() -> Cluster {
        let mut c = Cluster::new();
        c.add_mgmt(6);
        let (_, v0) = c.add_storage(1, 10_000);
        let (_, v1) = c.add_storage(1, 10_000);
        let (_, v2) = c.add_storage(1, 10_000);
        // Node 1 (v0) holds 6 files of 1000B, others are nearly empty.
        for i in 0..6 {
            c.store(FileId(i), v0[0], 1_000).unwrap();
        }
        c.store(FileId(100), v1[0], 500).unwrap();
        c.store(FileId(101), v2[0], 500).unwrap();
        c
    }

    #[test]
    fn needs_rebalance_detects_skew() {
        let c = skewed_cluster();
        let b = Balancer::new(0.10);
        assert!(b.needs_rebalance(&c));
    }

    #[test]
    fn balanced_cluster_needs_no_rebalance() {
        let mut c = Cluster::new();
        c.add_mgmt(6);
        let (_, v0) = c.add_storage(1, 10_000);
        let (_, v1) = c.add_storage(1, 10_000);
        c.store(FileId(1), v0[0], 1_000).unwrap();
        c.store(FileId(2), v1[0], 1_000).unwrap();
        let b = Balancer::new(0.10);
        assert!(!b.needs_rebalance(&c));
    }

    #[test]
    fn empty_cluster_needs_no_rebalance() {
        let mut c = Cluster::new();
        c.add_mgmt(6);
        c.add_storage(1, 10_000);
        c.add_storage(1, 10_000);
        let b = Balancer::new(0.10);
        assert!(!b.needs_rebalance(&c));
    }

    #[test]
    fn plan_reduces_imbalance() {
        let mut c = skewed_cluster();
        let b = Balancer::new(0.10);
        let plan = b.plan(&c);
        assert!(!plan.is_empty());
        for m in &plan {
            c.migrate(m.file, m.from, m.to, m.bytes).unwrap();
        }
        assert!(
            !b.needs_rebalance(&c),
            "plan execution should rebalance the cluster"
        );
    }

    #[test]
    fn plan_moves_from_hottest_node() {
        let c = skewed_cluster();
        let b = Balancer::new(0.10);
        let hottest = Balancer::hottest_node(&c).unwrap();
        let plan = b.plan(&c);
        assert!(plan.iter().all(|m| m.from_node == hottest));
    }

    #[test]
    fn plan_is_deterministic() {
        let c = skewed_cluster();
        let b = Balancer::new(0.10);
        assert_eq!(b.plan(&c), b.plan(&c));
    }

    #[test]
    fn round_lifecycle() {
        let c = skewed_cluster();
        let mut b = Balancer::new(0.10);
        assert_eq!(b.status(), RebalanceStatus::Done);
        let plan = b.plan(&c);
        let planned = plan.len();
        b.start_round(plan);
        assert_eq!(b.status(), RebalanceStatus::Running);
        assert_eq!(b.rounds, 1);
        let mut executed = 0;
        while b.status() == RebalanceStatus::Running {
            executed += b.next_moves(2).len();
        }
        assert_eq!(executed, planned);
        assert_eq!(b.status(), RebalanceStatus::Done);
    }

    #[test]
    fn empty_plan_round_is_immediately_done() {
        let mut b = Balancer::new(0.10);
        b.start_round(Vec::new());
        assert_eq!(b.status(), RebalanceStatus::Done);
        assert_eq!(b.rounds, 1);
    }

    #[test]
    fn abort_clears_queue() {
        let c = skewed_cluster();
        let mut b = Balancer::new(0.10);
        b.start_round(b.plan(&c));
        assert_eq!(b.status(), RebalanceStatus::Running);
        b.abort();
        assert_eq!(b.status(), RebalanceStatus::Done);
        assert!(b.queue.is_empty());
    }
}
