//! Behavioural branch-coverage model.
//!
//! The paper measures gcov/JaCoCo/ExIntegration branch coverage of the real
//! DFS implementations. Those targets do not exist in this reproduction, so
//! `simdfs` provides a coverage *model*: a per-flavor universe of branch ids
//! partitioned into regions, where executing behaviour deterministically
//! unlocks ids. The regions encode what actually drives coverage in a DFS
//! under test:
//!
//! - **base**: per-operation handling code (op kind × operand shape ×
//!   outcome) — every method reaches these quickly;
//! - **pair**: code guarded by *execution dependencies* between consecutive
//!   operations (the combinations Methods 1–3 of the paper under-explore);
//! - **state**: code conditioned on runtime load state (variance buckets,
//!   balancer phase) — reachable only by driving the cluster into many
//!   distinct load states;
//! - **deep**: rebalance/migration internals — reachable only while the
//!   balancer is actively planning/migrating.
//!
//! Each distinct feature tuple unlocks a small block of branch ids in its
//! region (a feature corresponds to a handful of real branches). Regions
//! saturate like real coverage does, giving Figure 12-style curves.

use crate::hashing::mix;
use std::collections::BTreeSet;

/// Region sizes (in branch ids) for one flavor's coverage universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageUniverse {
    /// Per-operation handling branches.
    pub base: u32,
    /// Operation-pair (execution dependency) branches.
    pub pair: u32,
    /// Load-state-conditioned branches.
    pub state: u32,
    /// Balancer/migration internals.
    pub deep: u32,
}

impl CoverageUniverse {
    /// Total number of branch ids in the universe.
    pub fn total(&self) -> u32 {
        self.base + self.pair + self.state + self.deep
    }
}

/// Which region a feature unlocks branches in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Per-operation handling code.
    Base,
    /// Consecutive-operation dependency code.
    Pair,
    /// Load-state-conditioned code.
    State,
    /// Rebalance/migration internals.
    Deep,
}

/// Branches unlocked per previously-unseen feature, per region.
///
/// A "feature" abstracts a small cluster of real branches (e.g. one
/// operation handler with its error/size/replica sub-branches).
const REWARD: [(Region, u32); 4] = [
    (Region::Base, 14),
    (Region::Pair, 10),
    (Region::State, 9),
    (Region::Deep, 16),
];

fn reward(region: Region) -> u32 {
    REWARD
        .iter()
        .find(|(r, _)| *r == region)
        .map(|(_, w)| *w)
        .unwrap_or(8)
}

/// Deterministic coverage accumulator for one simulated DFS instance.
#[derive(Debug, Clone)]
pub struct CoverageModel {
    universe: CoverageUniverse,
    hits: BTreeSet<u32>,
    seen_features: BTreeSet<u64>,
}

impl CoverageModel {
    /// Creates an empty model over the given universe.
    pub fn new(universe: CoverageUniverse) -> Self {
        CoverageModel {
            universe,
            hits: BTreeSet::new(),
            seen_features: BTreeSet::new(),
        }
    }

    /// Region id-space offset and length.
    fn region_range(&self, region: Region) -> (u32, u32) {
        let u = &self.universe;
        match region {
            Region::Base => (0, u.base),
            Region::Pair => (u.base, u.pair),
            Region::State => (u.base + u.pair, u.state),
            Region::Deep => (u.base + u.pair + u.state, u.deep),
        }
    }

    /// Records the execution of a feature, unlocking its branch block.
    ///
    /// Returns the number of newly covered branches (0 when the feature was
    /// seen before or its block fully collided with covered ids).
    pub fn touch(&mut self, region: Region, feature: u64) -> u32 {
        let tagged = mix(feature, region as u64 + 0x5eed);
        if !self.seen_features.insert(tagged) {
            return 0;
        }
        let (offset, len) = self.region_range(region);
        if len == 0 {
            return 0;
        }
        let mut new = 0;
        for i in 0..reward(region) {
            let id = offset + (mix(tagged, i as u64) % len as u64) as u32;
            if self.hits.insert(id) {
                new += 1;
            }
        }
        new
    }

    /// Number of covered branches.
    pub fn covered(&self) -> u64 {
        self.hits.len() as u64
    }

    /// Covered branches within one region (used by tests/diagnostics).
    pub fn covered_in(&self, region: Region) -> u64 {
        let (offset, len) = self.region_range(region);
        self.hits
            .iter()
            .filter(|&&id| id >= offset && id < offset + len)
            .count() as u64
    }

    /// The configured universe.
    pub fn universe(&self) -> CoverageUniverse {
        self.universe
    }

    /// Clears all coverage (campaign reset does *not* call this — coverage
    /// accumulates across resets exactly as gcov accumulates across DFS
    /// restarts in the paper; see [`crate::sim::DfsSim::reset`]).
    pub fn clear(&mut self) {
        self.hits.clear();
        self.seen_features.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CoverageModel {
        CoverageModel::new(CoverageUniverse {
            base: 1000,
            pair: 500,
            state: 400,
            deep: 300,
        })
    }

    #[test]
    fn touch_unlocks_branches_once() {
        let mut m = small();
        let n1 = m.touch(Region::Base, 42);
        assert!(n1 > 0 && n1 <= 14);
        let n2 = m.touch(Region::Base, 42);
        assert_eq!(n2, 0, "repeat feature must not add coverage");
        assert_eq!(m.covered(), n1 as u64);
    }

    #[test]
    fn same_feature_in_different_regions_is_distinct() {
        let mut m = small();
        assert!(m.touch(Region::Base, 7) > 0);
        assert!(m.touch(Region::Pair, 7) > 0);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut m = small();
        for f in 0..200u64 {
            m.touch(Region::Base, f);
            m.touch(Region::Pair, f);
            m.touch(Region::State, f);
            m.touch(Region::Deep, f);
        }
        let sum = m.covered_in(Region::Base)
            + m.covered_in(Region::Pair)
            + m.covered_in(Region::State)
            + m.covered_in(Region::Deep);
        assert_eq!(sum, m.covered());
    }

    #[test]
    fn region_saturates_at_its_size() {
        let mut m = CoverageModel::new(CoverageUniverse {
            base: 64,
            pair: 0,
            state: 0,
            deep: 0,
        });
        for f in 0..10_000u64 {
            m.touch(Region::Base, f);
        }
        assert!(m.covered() <= 64);
        assert!(
            m.covered() > 55,
            "region should nearly saturate, got {}",
            m.covered()
        );
    }

    #[test]
    fn coverage_is_deterministic() {
        let mut a = small();
        let mut b = small();
        for f in 0..500u64 {
            a.touch(Region::State, f * 3);
            b.touch(Region::State, f * 3);
        }
        assert_eq!(a.covered(), b.covered());
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = small();
        m.touch(Region::Deep, 1);
        m.clear();
        assert_eq!(m.covered(), 0);
        assert!(m.touch(Region::Deep, 1) > 0);
    }

    #[test]
    fn universe_total_adds_up() {
        let u = CoverageUniverse {
            base: 1,
            pair: 2,
            state: 3,
            deep: 4,
        };
        assert_eq!(u.total(), 10);
    }
}
