//! Data placement policies.
//!
//! Each DFS flavor places file replicas with a different algorithm, matching
//! the families the paper names (Section 2.1): hash partitioning (GlusterFS
//! DHT), consistent hashing with virtual nodes (LeoFS ring), CRUSH-style
//! weighted rendezvous hashing (Ceph), and free-space-weighted selection
//! (the HDFS block placement heuristic). All policies are deterministic
//! functions of the placement key and the current volume views.

use crate::hashing::{hash01, mix};
use crate::types::{Bytes, NodeId, VolumeId};

/// A read-only view of one candidate volume offered to a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeView {
    /// The volume.
    pub volume: VolumeId,
    /// The storage node hosting it.
    pub node: NodeId,
    /// Volume capacity in bytes.
    pub capacity: Bytes,
    /// Bytes currently stored.
    pub used: Bytes,
    /// Whether the hosting node is online.
    pub online: bool,
}

impl VolumeView {
    /// Free bytes on the volume.
    pub fn free(&self) -> Bytes {
        self.capacity.saturating_sub(self.used)
    }

    /// Relative weight used by weighted policies (capacity in GiB units;
    /// zero-capacity volumes get a tiny epsilon weight so hashing stays
    /// well-defined).
    pub fn weight(&self) -> f64 {
        (self.capacity as f64 / (1u64 << 30) as f64).max(1e-9)
    }
}

/// A replica placement decision: one volume per replica.
pub type Placement = Vec<VolumeId>;

/// A deterministic replica placement policy.
pub trait PlacementPolicy: std::fmt::Debug + Send {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Chooses up to `replicas` volumes (on distinct nodes where possible)
    /// for the data identified by `key`. `views` lists candidate volumes on
    /// online nodes; policies must not return duplicates. An empty result
    /// means no placement is possible.
    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement;
}

/// Selects up to `replicas` entries from scored candidates, preferring
/// distinct nodes first, then filling with remaining volumes if the cluster
/// has fewer nodes than requested replicas.
fn pick_distinct_nodes(
    mut scored: Vec<(f64, VolumeView)>,
    replicas: usize,
    size: Bytes,
) -> Placement {
    // Sort by score descending; ties broken by volume id for determinism.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.volume.cmp(&b.1.volume))
    });
    let mut out = Vec::with_capacity(replicas);
    let mut used_nodes = Vec::new();
    for (_, v) in scored.iter().filter(|(_, v)| v.free() >= size) {
        if out.len() == replicas {
            break;
        }
        if !used_nodes.contains(&v.node) {
            used_nodes.push(v.node);
            out.push(v.volume);
        }
    }
    // Second pass: allow same-node volumes when nodes are scarce.
    if out.len() < replicas {
        for (_, v) in scored.iter().filter(|(_, v)| v.free() >= size) {
            if out.len() == replicas {
                break;
            }
            if !out.contains(&v.volume) {
                out.push(v.volume);
            }
        }
    }
    out
}

/// GlusterFS-style DHT hash partitioning.
///
/// Volumes own contiguous arcs of a 64-bit hash ring (one point per volume,
/// positioned by hashing the volume id). A key is placed on the volume whose
/// point is the smallest value ≥ the key hash (wrapping), and further
/// replicas walk the ring clockwise to distinct nodes.
#[derive(Debug, Default, Clone)]
pub struct DhtHashRing;

impl PlacementPolicy for DhtHashRing {
    fn name(&self) -> &'static str {
        "dht-hash-ring"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let mut ring: Vec<(u64, VolumeView)> =
            views.iter().map(|v| (mix(v.volume.0 as u64, 0x6c75_7374_6572), *v)).collect();
        ring.sort_by_key(|(h, v)| (*h, v.volume));
        if ring.is_empty() {
            return Vec::new();
        }
        let start = ring.partition_point(|(h, _)| *h < key) % ring.len();
        let mut out = Vec::with_capacity(replicas);
        let mut used_nodes = Vec::new();
        for i in 0..ring.len() {
            let v = &ring[(start + i) % ring.len()].1;
            if out.len() == replicas {
                break;
            }
            if v.free() >= size && !used_nodes.contains(&v.node) {
                used_nodes.push(v.node);
                out.push(v.volume);
            }
        }
        if out.len() < replicas {
            for i in 0..ring.len() {
                let v = &ring[(start + i) % ring.len()].1;
                if out.len() == replicas {
                    break;
                }
                if v.free() >= size && !out.contains(&v.volume) {
                    out.push(v.volume);
                }
            }
        }
        out
    }
}

/// LeoFS-style consistent hashing with virtual nodes.
///
/// Each volume is hashed to `vnodes` points on the ring, smoothing arc sizes
/// and reducing the data moved when membership changes.
#[derive(Debug, Clone)]
pub struct VnodeRing {
    /// Virtual nodes per volume (LeoFS defaults to 168; we scale down).
    pub vnodes: u32,
}

impl Default for VnodeRing {
    fn default() -> Self {
        VnodeRing { vnodes: 32 }
    }
}

impl PlacementPolicy for VnodeRing {
    fn name(&self) -> &'static str {
        "vnode-ring"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let mut ring: Vec<(u64, usize)> = Vec::with_capacity(views.len() * self.vnodes as usize);
        for (idx, v) in views.iter().enumerate() {
            for vn in 0..self.vnodes {
                ring.push((mix(v.volume.0 as u64, vn as u64 + 1), idx));
            }
        }
        ring.sort_unstable();
        if ring.is_empty() {
            return Vec::new();
        }
        let start = ring.partition_point(|(h, _)| *h < key) % ring.len();
        let mut out = Vec::with_capacity(replicas);
        let mut used_nodes = Vec::new();
        for i in 0..ring.len() {
            let v = &views[ring[(start + i) % ring.len()].1];
            if out.len() == replicas {
                break;
            }
            if v.free() >= size && !used_nodes.contains(&v.node) && !out.contains(&v.volume) {
                used_nodes.push(v.node);
                out.push(v.volume);
            }
        }
        out
    }
}

/// Ceph-style CRUSH placement, modelled as straw2 (weighted rendezvous
/// hashing): each volume draws a straw `-ln(u) / weight` with `u` a
/// deterministic hash of `(key, volume)`, and the shortest straws win.
#[derive(Debug, Default, Clone)]
pub struct CrushStraw2;

impl PlacementPolicy for CrushStraw2 {
    fn name(&self) -> &'static str {
        "crush-straw2"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let scored: Vec<(f64, VolumeView)> = views
            .iter()
            .map(|v| {
                let u = hash01(mix(key, v.volume.0 as u64));
                // Larger score wins in `pick_distinct_nodes`; straw2 picks
                // the *minimum* -ln(u)/w, i.e. the maximum of its negation.
                (-(-u.ln() / v.weight()), *v)
            })
            .collect();
        pick_distinct_nodes(scored, replicas, size)
    }
}

/// HDFS-style free-space-weighted placement.
///
/// The NameNode prefers DataNode volumes with more free space; we score by
/// free fraction with a deterministic per-key jitter, reproducing the
/// "available = weighted random" feel of the HDFS block placement policy
/// without nondeterminism.
#[derive(Debug, Default, Clone)]
pub struct FreeSpaceWeighted;

impl PlacementPolicy for FreeSpaceWeighted {
    fn name(&self) -> &'static str {
        "free-space-weighted"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let scored: Vec<(f64, VolumeView)> = views
            .iter()
            .map(|v| {
                let free_frac = if v.capacity == 0 {
                    0.0
                } else {
                    v.free() as f64 / v.capacity as f64
                };
                let jitter = hash01(mix(key, v.volume.0 as u64 ^ 0x4846_5353));
                (free_frac * (0.75 + 0.5 * jitter), *v)
            })
            .collect();
        pick_distinct_nodes(scored, replicas, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: u32, cap: Bytes) -> Vec<VolumeView> {
        (0..n)
            .map(|i| VolumeView {
                volume: VolumeId(i),
                node: NodeId(i),
                capacity: cap,
                used: 0,
                online: true,
            })
            .collect()
    }

    fn policies() -> Vec<Box<dyn PlacementPolicy>> {
        vec![
            Box::new(DhtHashRing),
            Box::new(VnodeRing::default()),
            Box::new(CrushStraw2),
            Box::new(FreeSpaceWeighted),
        ]
    }

    #[test]
    fn all_policies_place_requested_replicas() {
        let vs = views(6, 1 << 30);
        for p in policies() {
            let placed = p.place(12345, 1024, 3, &vs);
            assert_eq!(placed.len(), 3, "{} placed {:?}", p.name(), placed);
            let mut dedup = placed.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "{} returned duplicates", p.name());
        }
    }

    #[test]
    fn all_policies_are_deterministic() {
        let vs = views(6, 1 << 30);
        for p in policies() {
            assert_eq!(p.place(7, 10, 2, &vs), p.place(7, 10, 2, &vs), "{}", p.name());
        }
    }

    #[test]
    fn policies_respect_free_space() {
        let mut vs = views(3, 1000);
        vs[0].used = 1000;
        vs[1].used = 1000;
        for p in policies() {
            let placed = p.place(99, 500, 1, &vs);
            assert_eq!(placed, vec![VolumeId(2)], "{}", p.name());
        }
    }

    #[test]
    fn empty_views_place_nothing() {
        for p in policies() {
            assert!(p.place(1, 1, 3, &[]).is_empty(), "{}", p.name());
        }
    }

    #[test]
    fn replicas_prefer_distinct_nodes() {
        // Two volumes on node 0, one on node 1: a 2-replica placement must
        // span both nodes.
        let vs = vec![
            VolumeView { volume: VolumeId(0), node: NodeId(0), capacity: 1 << 30, used: 0, online: true },
            VolumeView { volume: VolumeId(1), node: NodeId(0), capacity: 1 << 30, used: 0, online: true },
            VolumeView { volume: VolumeId(2), node: NodeId(1), capacity: 1 << 30, used: 0, online: true },
        ];
        for p in policies() {
            let placed = p.place(42, 1, 2, &vs);
            assert_eq!(placed.len(), 2, "{}", p.name());
            let has_node1 = placed.contains(&VolumeId(2));
            assert!(has_node1, "{} did not spread across nodes: {:?}", p.name(), placed);
        }
    }

    #[test]
    fn hash_ring_moves_few_keys_on_node_addition() {
        // Consistent hashing property: adding one volume to a 8-volume ring
        // should relocate well under half the keys.
        let before = views(8, 1 << 30);
        let after = views(9, 1 << 30);
        let ring = VnodeRing::default();
        let total = 2000;
        let mut moved = 0;
        for k in 0..total {
            let key = mix(k, 0xfeed);
            if ring.place(key, 1, 1, &before) != ring.place(key, 1, 1, &after) {
                moved += 1;
            }
        }
        let frac = moved as f64 / total as f64;
        assert!(frac < 0.35, "vnode ring moved {frac:.2} of keys on single-node add");
        assert!(frac > 0.01, "adding a node should move some keys");
    }

    #[test]
    fn crush_distributes_roughly_by_weight() {
        // One volume with 3x capacity should receive roughly 3x the keys.
        let mut vs = views(4, 1 << 30);
        vs[3].capacity = 3 << 30;
        let p = CrushStraw2;
        let mut counts = [0usize; 4];
        for k in 0..3000u64 {
            let placed = p.place(mix(k, 1), 1, 1, &vs);
            counts[placed[0].0 as usize] += 1;
        }
        let small_avg = (counts[0] + counts[1] + counts[2]) as f64 / 3.0;
        let big = counts[3] as f64;
        let ratio = big / small_avg;
        assert!((2.0..4.5).contains(&ratio), "weight ratio {ratio:.2}, counts {counts:?}");
    }

    #[test]
    fn free_space_weighted_prefers_empty_volumes() {
        let mut vs = views(2, 1000);
        vs[0].used = 900;
        let p = FreeSpaceWeighted;
        let mut empties = 0;
        for k in 0..200u64 {
            if p.place(mix(k, 2), 1, 1, &vs)[0] == VolumeId(1) {
                empties += 1;
            }
        }
        assert!(empties > 190, "free-space policy picked the full volume too often");
    }
}
