//! Data placement policies.
//!
//! Each DFS flavor places file replicas with a different algorithm, matching
//! the families the paper names (Section 2.1): hash partitioning (GlusterFS
//! DHT), consistent hashing with virtual nodes (LeoFS ring), CRUSH-style
//! weighted rendezvous hashing (Ceph), and free-space-weighted selection
//! (the HDFS block placement heuristic). All policies are deterministic
//! functions of the placement key and the current volume views.

use crate::hashing::{hash01, mix};
use crate::types::{Bytes, NodeId, VolumeId};

/// A read-only view of one candidate volume offered to a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeView {
    /// The volume.
    pub volume: VolumeId,
    /// The storage node hosting it.
    pub node: NodeId,
    /// Volume capacity in bytes.
    pub capacity: Bytes,
    /// Bytes currently stored.
    pub used: Bytes,
    /// Whether the hosting node is online.
    pub online: bool,
}

impl VolumeView {
    /// Free bytes on the volume.
    pub fn free(&self) -> Bytes {
        self.capacity.saturating_sub(self.used)
    }

    /// Relative weight used by weighted policies (capacity in GiB units;
    /// zero-capacity volumes get a tiny epsilon weight so hashing stays
    /// well-defined).
    pub fn weight(&self) -> f64 {
        (self.capacity as f64 / (1u64 << 30) as f64).max(1e-9)
    }
}

/// A replica placement decision: one volume per replica.
pub type Placement = Vec<VolumeId>;

/// Precomputed, generation-invalidated placement state.
///
/// Ring policies pay an `O(V log V)` ring build per [`PlacementPolicy::place`]
/// call; on the fuzzing hot path that cost dominates. A `PlacementCache`
/// holds each policy's precomputed structures — sorted DHT ring, vnode
/// ring, CRUSH weight table — tagged with the cluster *topology generation*
/// they were built for, plus reusable scoring scratch buffers. The
/// structures index into the canonical `views` slice rather than copying
/// it, so per-call fill levels (`used`) are always read fresh while the
/// membership-dependent parts are rebuilt only when the generation changes
/// (see [`crate::cluster::Cluster::generation`]).
#[derive(Debug, Default)]
pub struct PlacementCache {
    /// `(generation, policy name)` the cached structures were built for.
    built: Option<(u64, &'static str)>,
    /// Ring entries `(hash point, tie-break, view index)`.
    ring: Vec<(u64, u32, u32)>,
    /// Per-view weights (CRUSH straw2).
    weights: Vec<f64>,
    /// Scratch: scored candidates `(score, view index)`.
    scored: Vec<(f64, u32)>,
    /// Scratch: nodes already granted a replica for the current key.
    nodes: Vec<NodeId>,
}

impl PlacementCache {
    /// Creates an empty cache (first use triggers a rebuild).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached structures; the next placement rebuilds them.
    /// Required when the cluster object itself is replaced (its generation
    /// counter restarts) rather than mutated.
    pub fn invalidate(&mut self) {
        self.built = None;
    }

    /// Whether the cache currently holds structures built for
    /// `(generation, policy)`.
    pub fn is_fresh(&self, generation: u64, policy: &'static str) -> bool {
        self.built == Some((generation, policy))
    }

    /// Drops the cached structures only if they were built for a topology
    /// generation *newer* than `generation`.
    ///
    /// Used by snapshot restore: rewinding to an earlier point of the same
    /// execution lineage cannot change what any generation `<= generation`
    /// looked like, so such structures remain valid. A cache built for a
    /// later generation must go — the re-executed suffix may reuse the
    /// same generation numbers for a different topology.
    pub fn invalidate_if_newer_than(&mut self, generation: u64) {
        if matches!(self.built, Some((g, _)) if g > generation) {
            self.built = None;
        }
    }
}

/// A deterministic replica placement policy.
pub trait PlacementPolicy: std::fmt::Debug + Send {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Chooses up to `replicas` volumes (on distinct nodes where possible)
    /// for the data identified by `key`. `views` lists candidate volumes on
    /// online nodes; policies must not return duplicates. An empty result
    /// means no placement is possible.
    ///
    /// This is the uncached reference path: ring policies rebuild their
    /// ring on every call. The simulator's hot path goes through
    /// [`PlacementPolicy::place_cached`] instead.
    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement;

    /// Rebuilds `cache`'s precomputed structures for `views`. Called by
    /// [`PlacementPolicy::place_cached`] when the topology generation
    /// changed; policies without precomputable state do nothing.
    fn rebuild(&self, _cache: &mut PlacementCache, _views: &[VolumeView]) {}

    /// Places using `cache`, which must hold structures built by
    /// [`PlacementPolicy::rebuild`] for this exact `views` slice (same
    /// membership and order; `used` fill levels may differ), writing the
    /// chosen volumes into `out` (cleared first). The default falls back
    /// to the uncached path.
    fn place_via(
        &self,
        _cache: &mut PlacementCache,
        key: u64,
        size: Bytes,
        replicas: usize,
        views: &[VolumeView],
        out: &mut Placement,
    ) {
        *out = self.place(key, size, replicas, views);
    }

    /// Cached entry point: rebuilds the cache iff `generation` does not
    /// match what it was built for, then places through it into `out`
    /// (cleared first; reuse one buffer across calls to keep the hot loop
    /// allocation-free). `views` must be the canonical view list for
    /// `generation` — callers that filter or reorder views (e.g.
    /// bug-injected hotspot placement) must use
    /// [`PlacementPolicy::place`] directly.
    #[allow(clippy::too_many_arguments)]
    fn place_cached_into(
        &self,
        cache: &mut PlacementCache,
        generation: u64,
        key: u64,
        size: Bytes,
        replicas: usize,
        views: &[VolumeView],
        out: &mut Placement,
    ) {
        if !cache.is_fresh(generation, self.name()) {
            self.rebuild(cache, views);
            cache.built = Some((generation, self.name()));
        }
        self.place_via(cache, key, size, replicas, views, out);
    }

    /// Allocating convenience wrapper around
    /// [`PlacementPolicy::place_cached_into`].
    fn place_cached(
        &self,
        cache: &mut PlacementCache,
        generation: u64,
        key: u64,
        size: Bytes,
        replicas: usize,
        views: &[VolumeView],
    ) -> Placement {
        let mut out = Vec::new();
        self.place_cached_into(cache, generation, key, size, replicas, views, &mut out);
        out
    }
}

/// Selects up to `replicas` entries from scored candidates, preferring
/// distinct nodes first, then filling with remaining volumes if the cluster
/// has fewer nodes than requested replicas.
fn pick_distinct_nodes(
    mut scored: Vec<(f64, VolumeView)>,
    replicas: usize,
    size: Bytes,
) -> Placement {
    // Sort by score descending; ties broken by volume id for determinism.
    // `total_cmp` keeps the comparator a total order even for NaN scores —
    // `partial_cmp(..).unwrap_or(Equal)` silently made the comparison
    // inconsistent and the resulting order permutation-dependent.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.volume.cmp(&b.1.volume)));
    let mut out = Vec::with_capacity(replicas);
    let mut used_nodes = Vec::new();
    for (_, v) in scored.iter().filter(|(_, v)| v.free() >= size) {
        if out.len() == replicas {
            break;
        }
        if !used_nodes.contains(&v.node) {
            used_nodes.push(v.node);
            out.push(v.volume);
        }
    }
    // Second pass: allow same-node volumes when nodes are scarce.
    if out.len() < replicas {
        for (_, v) in scored.iter().filter(|(_, v)| v.free() >= size) {
            if out.len() == replicas {
                break;
            }
            if !out.contains(&v.volume) {
                out.push(v.volume);
            }
        }
    }
    out
}

/// Index-based variant of [`pick_distinct_nodes`] used by the cached path:
/// sorts `(score, view index)` pairs in place and reuses the caller's
/// node scratch and output buffers, so a call allocates nothing once the
/// buffers are warm.
fn pick_distinct_nodes_indexed(
    scored: &mut [(f64, u32)],
    views: &[VolumeView],
    replicas: usize,
    size: Bytes,
    used_nodes: &mut Vec<NodeId>,
    out: &mut Placement,
) {
    scored.sort_unstable_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| views[a.1 as usize].volume.cmp(&views[b.1 as usize].volume))
    });
    used_nodes.clear();
    out.clear();
    for &(_, i) in scored.iter() {
        if out.len() == replicas {
            break;
        }
        let v = &views[i as usize];
        if v.free() >= size && !used_nodes.contains(&v.node) {
            used_nodes.push(v.node);
            out.push(v.volume);
        }
    }
    if out.len() < replicas {
        for &(_, i) in scored.iter() {
            if out.len() == replicas {
                break;
            }
            let v = &views[i as usize];
            if v.free() >= size && !out.contains(&v.volume) {
                out.push(v.volume);
            }
        }
    }
}

/// GlusterFS-style DHT hash partitioning.
///
/// Volumes own contiguous arcs of a 64-bit hash ring (one point per volume,
/// positioned by hashing the volume id). A key is placed on the volume whose
/// point is the smallest value ≥ the key hash (wrapping), and further
/// replicas walk the ring clockwise to distinct nodes.
#[derive(Debug, Default, Clone)]
pub struct DhtHashRing;

/// Walks a sorted `(hash, tie-break, view index)` ring clockwise from the
/// key's successor point, preferring distinct nodes, then filling with
/// same-node volumes when `fill_same_node` is set and nodes are scarce.
#[allow(clippy::too_many_arguments)]
fn walk_ring(
    ring: &[(u64, u32, u32)],
    views: &[VolumeView],
    key: u64,
    size: Bytes,
    replicas: usize,
    used_nodes: &mut Vec<NodeId>,
    fill_same_node: bool,
    out: &mut Placement,
) {
    out.clear();
    if ring.is_empty() {
        return;
    }
    let start = ring.partition_point(|&(h, _, _)| h < key) % ring.len();
    used_nodes.clear();
    for i in 0..ring.len() {
        let v = &views[ring[(start + i) % ring.len()].2 as usize];
        if out.len() == replicas {
            break;
        }
        if v.free() >= size && !used_nodes.contains(&v.node) && !out.contains(&v.volume) {
            used_nodes.push(v.node);
            out.push(v.volume);
        }
    }
    if fill_same_node && out.len() < replicas {
        for i in 0..ring.len() {
            let v = &views[ring[(start + i) % ring.len()].2 as usize];
            if out.len() == replicas {
                break;
            }
            if v.free() >= size && !out.contains(&v.volume) {
                out.push(v.volume);
            }
        }
    }
}

impl DhtHashRing {
    fn build_ring(views: &[VolumeView], ring: &mut Vec<(u64, u32, u32)>) {
        ring.clear();
        ring.extend(views.iter().enumerate().map(|(i, v)| {
            (
                mix(v.volume.0 as u64, 0x6c75_7374_6572),
                v.volume.0,
                i as u32,
            )
        }));
        ring.sort_unstable_by_key(|&(h, vol, _)| (h, vol));
    }
}

impl PlacementPolicy for DhtHashRing {
    fn name(&self) -> &'static str {
        "dht-hash-ring"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let mut ring = Vec::new();
        Self::build_ring(views, &mut ring);
        let mut used_nodes = Vec::new();
        let mut out = Vec::new();
        walk_ring(
            &ring,
            views,
            key,
            size,
            replicas,
            &mut used_nodes,
            true,
            &mut out,
        );
        out
    }

    fn rebuild(&self, cache: &mut PlacementCache, views: &[VolumeView]) {
        Self::build_ring(views, &mut cache.ring);
    }

    fn place_via(
        &self,
        cache: &mut PlacementCache,
        key: u64,
        size: Bytes,
        replicas: usize,
        views: &[VolumeView],
        out: &mut Placement,
    ) {
        walk_ring(
            &cache.ring,
            views,
            key,
            size,
            replicas,
            &mut cache.nodes,
            true,
            out,
        );
    }
}

/// LeoFS-style consistent hashing with virtual nodes.
///
/// Each volume is hashed to `vnodes` points on the ring, smoothing arc sizes
/// and reducing the data moved when membership changes.
#[derive(Debug, Clone)]
pub struct VnodeRing {
    /// Virtual nodes per volume (LeoFS defaults to 168; we scale down).
    pub vnodes: u32,
}

impl Default for VnodeRing {
    fn default() -> Self {
        VnodeRing { vnodes: 32 }
    }
}

impl PlacementPolicy for VnodeRing {
    fn name(&self) -> &'static str {
        "vnode-ring"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let mut ring = Vec::new();
        self.build_ring(views, &mut ring);
        let mut used_nodes = Vec::new();
        let mut out = Vec::new();
        walk_ring(
            &ring,
            views,
            key,
            size,
            replicas,
            &mut used_nodes,
            false,
            &mut out,
        );
        out
    }

    fn rebuild(&self, cache: &mut PlacementCache, views: &[VolumeView]) {
        self.build_ring(views, &mut cache.ring);
    }

    fn place_via(
        &self,
        cache: &mut PlacementCache,
        key: u64,
        size: Bytes,
        replicas: usize,
        views: &[VolumeView],
        out: &mut Placement,
    ) {
        walk_ring(
            &cache.ring,
            views,
            key,
            size,
            replicas,
            &mut cache.nodes,
            false,
            out,
        );
    }
}

impl VnodeRing {
    fn build_ring(&self, views: &[VolumeView], ring: &mut Vec<(u64, u32, u32)>) {
        ring.clear();
        ring.reserve(views.len() * self.vnodes as usize);
        for (idx, v) in views.iter().enumerate() {
            for vn in 0..self.vnodes {
                ring.push((
                    mix(v.volume.0 as u64, vn as u64 + 1),
                    idx as u32,
                    idx as u32,
                ));
            }
        }
        ring.sort_unstable();
    }
}

/// Ceph-style CRUSH placement, modelled as straw2 (weighted rendezvous
/// hashing): each volume draws a straw `-ln(u) / weight` with `u` a
/// deterministic hash of `(key, volume)`, and the shortest straws win.
#[derive(Debug, Default, Clone)]
pub struct CrushStraw2;

impl PlacementPolicy for CrushStraw2 {
    fn name(&self) -> &'static str {
        "crush-straw2"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let scored: Vec<(f64, VolumeView)> = views
            .iter()
            .map(|v| {
                let u = hash01(mix(key, v.volume.0 as u64));
                // Larger score wins in `pick_distinct_nodes`; straw2 picks
                // the *minimum* -ln(u)/w, i.e. the maximum of its negation.
                (-(-u.ln() / v.weight()), *v)
            })
            .collect();
        pick_distinct_nodes(scored, replicas, size)
    }

    fn rebuild(&self, cache: &mut PlacementCache, views: &[VolumeView]) {
        cache.weights.clear();
        cache.weights.extend(views.iter().map(VolumeView::weight));
    }

    fn place_via(
        &self,
        cache: &mut PlacementCache,
        key: u64,
        size: Bytes,
        replicas: usize,
        views: &[VolumeView],
        out: &mut Placement,
    ) {
        let weights = &cache.weights;
        let scored = &mut cache.scored;
        scored.clear();
        scored.extend(views.iter().enumerate().map(|(i, v)| {
            let u = hash01(mix(key, v.volume.0 as u64));
            (-(-u.ln() / weights[i]), i as u32)
        }));
        pick_distinct_nodes_indexed(scored, views, replicas, size, &mut cache.nodes, out);
    }
}

/// HDFS-style free-space-weighted placement.
///
/// The NameNode prefers DataNode volumes with more free space; we score by
/// free fraction with a deterministic per-key jitter, reproducing the
/// "available = weighted random" feel of the HDFS block placement policy
/// without nondeterminism.
#[derive(Debug, Default, Clone)]
pub struct FreeSpaceWeighted;

impl PlacementPolicy for FreeSpaceWeighted {
    fn name(&self) -> &'static str {
        "free-space-weighted"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let scored: Vec<(f64, VolumeView)> =
            views.iter().map(|v| (Self::score(key, v), *v)).collect();
        pick_distinct_nodes(scored, replicas, size)
    }

    // Free-space scores depend on live fill levels, so nothing is
    // precomputable; the cached path still reuses the scoring scratch
    // buffers instead of allocating per call.
    fn place_via(
        &self,
        cache: &mut PlacementCache,
        key: u64,
        size: Bytes,
        replicas: usize,
        views: &[VolumeView],
        out: &mut Placement,
    ) {
        let scored = &mut cache.scored;
        scored.clear();
        scored.extend(
            views
                .iter()
                .enumerate()
                .map(|(i, v)| (Self::score(key, v), i as u32)),
        );
        pick_distinct_nodes_indexed(scored, views, replicas, size, &mut cache.nodes, out);
    }
}

impl FreeSpaceWeighted {
    fn score(key: u64, v: &VolumeView) -> f64 {
        let free_frac = if v.capacity == 0 {
            0.0
        } else {
            v.free() as f64 / v.capacity as f64
        };
        let jitter = hash01(mix(key, v.volume.0 as u64 ^ 0x4846_5353));
        free_frac * (0.75 + 0.5 * jitter)
    }
}

/// Power-of-d-choices sampling over free-space scores.
///
/// Instead of scoring all `V` volumes per fragment like
/// [`FreeSpaceWeighted`], the policy draws `d * replicas` candidate volumes
/// with a deterministic hash sequence seeded from the placement key, scores
/// only those, and places among them. The classic two-choices result says
/// sampling a handful of candidates and picking the least loaded keeps the
/// load gap exponentially smaller than one random choice — so the achieved
/// variance stays close to the full scan at `O(d)` cost per fragment (see
/// the differential test `sampled_policies_track_full_scan_variance`).
///
/// Fallbacks keep the policy *complete*: when the view list is no larger
/// than the sample budget, or when the sampled candidates cannot satisfy
/// the request, the policy degenerates to the full scan, so it never fails
/// a placement the full-scan policy would have satisfied.
#[derive(Debug, Clone)]
pub struct PowerOfDChoices {
    /// Candidates sampled per requested replica.
    pub d: usize,
}

impl Default for PowerOfDChoices {
    fn default() -> Self {
        PowerOfDChoices { d: 4 }
    }
}

/// Salt for the candidate-sampling hash sequence ("PODC").
const POWER_OF_D_SALT: u64 = 0x504f_4443;

impl PowerOfDChoices {
    fn budget(&self, replicas: usize) -> usize {
        self.d.max(1) * replicas.max(1)
    }

    /// Deterministic candidate index sequence for `key`: the j-th candidate
    /// is `mix(mix(key, SALT), j) % V`. Duplicate indices are possible and
    /// harmless — the distinct-node selection dedupes by node and volume.
    fn candidate(seed: u64, j: usize, len: usize) -> usize {
        (mix(seed, j as u64) % len as u64) as usize
    }

    fn score_sampled(
        &self,
        key: u64,
        replicas: usize,
        views: &[VolumeView],
        scored: &mut Vec<(f64, u32)>,
    ) {
        scored.clear();
        let budget = self.budget(replicas);
        if views.len() <= budget {
            scored.extend(
                views
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (FreeSpaceWeighted::score(key, v), i as u32)),
            );
            return;
        }
        let seed = mix(key, POWER_OF_D_SALT);
        scored.extend((0..budget).map(|j| {
            let i = Self::candidate(seed, j, views.len());
            (FreeSpaceWeighted::score(key, &views[i]), i as u32)
        }));
    }
}

impl PlacementPolicy for PowerOfDChoices {
    fn name(&self) -> &'static str {
        "power-of-d"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let mut cache = PlacementCache::new();
        let mut out = Vec::new();
        self.place_via(&mut cache, key, size, replicas, views, &mut out);
        out
    }

    fn place_via(
        &self,
        cache: &mut PlacementCache,
        key: u64,
        size: Bytes,
        replicas: usize,
        views: &[VolumeView],
        out: &mut Placement,
    ) {
        self.score_sampled(key, replicas, views, &mut cache.scored);
        pick_distinct_nodes_indexed(
            &mut cache.scored,
            views,
            replicas,
            size,
            &mut cache.nodes,
            out,
        );
        if out.len() < replicas && views.len() > self.budget(replicas) {
            // The sample could not satisfy the request (e.g. every sampled
            // volume is full); fall back to the full scan so completeness
            // matches `FreeSpaceWeighted`. If the full scan also comes up
            // short, that result is final.
            let scored = &mut cache.scored;
            scored.clear();
            scored.extend(
                views
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (FreeSpaceWeighted::score(key, v), i as u32)),
            );
            pick_distinct_nodes_indexed(scored, views, replicas, size, &mut cache.nodes, out);
        }
    }
}

/// Stride-sampled DHT ring for GlusterFS-style hashing.
///
/// Builds the same hash ring as [`DhtHashRing`] (identical hash points, so
/// the key→successor ownership structure is preserved), but instead of
/// walking all `V` ring entries clockwise it probes the true successor plus
/// `d * replicas - 1` entries spaced a fixed stride apart. The stride keeps
/// probes spread around the whole ring, so replica spill-over under full
/// volumes still lands on far-away arcs the way a full clockwise walk
/// eventually would. Degenerates to the full walk when the ring is no
/// larger than the probe budget or when the probes cannot satisfy the
/// request.
#[derive(Debug, Clone)]
pub struct StrideSampledDht {
    /// Ring probes per requested replica.
    pub d: usize,
}

impl Default for StrideSampledDht {
    fn default() -> Self {
        StrideSampledDht { d: 8 }
    }
}

impl StrideSampledDht {
    fn budget(&self, replicas: usize) -> usize {
        self.d.max(1) * replicas.max(1)
    }

    /// Strided ring walk: probe `budget` entries starting at the key's
    /// successor, spaced `len / budget` apart. Returns true when the
    /// request was satisfied.
    #[allow(clippy::too_many_arguments)]
    fn walk_strided(
        ring: &[(u64, u32, u32)],
        views: &[VolumeView],
        key: u64,
        size: Bytes,
        replicas: usize,
        budget: usize,
        used_nodes: &mut Vec<NodeId>,
        out: &mut Placement,
    ) {
        out.clear();
        used_nodes.clear();
        let len = ring.len();
        let start = ring.partition_point(|&(h, _, _)| h < key) % len;
        let stride = (len / budget).max(1);
        for j in 0..budget {
            if out.len() == replicas {
                break;
            }
            let v = &views[ring[(start + j * stride) % len].2 as usize];
            if v.free() >= size && !used_nodes.contains(&v.node) && !out.contains(&v.volume) {
                used_nodes.push(v.node);
                out.push(v.volume);
            }
        }
        if out.len() < replicas {
            for j in 0..budget {
                if out.len() == replicas {
                    break;
                }
                let v = &views[ring[(start + j * stride) % len].2 as usize];
                if v.free() >= size && !out.contains(&v.volume) {
                    out.push(v.volume);
                }
            }
        }
    }
}

impl PlacementPolicy for StrideSampledDht {
    fn name(&self) -> &'static str {
        "stride-dht"
    }

    fn place(&self, key: u64, size: Bytes, replicas: usize, views: &[VolumeView]) -> Placement {
        let mut cache = PlacementCache::new();
        self.rebuild(&mut cache, views);
        let mut out = Vec::new();
        self.place_via(&mut cache, key, size, replicas, views, &mut out);
        out
    }

    fn rebuild(&self, cache: &mut PlacementCache, views: &[VolumeView]) {
        DhtHashRing::build_ring(views, &mut cache.ring);
    }

    fn place_via(
        &self,
        cache: &mut PlacementCache,
        key: u64,
        size: Bytes,
        replicas: usize,
        views: &[VolumeView],
        out: &mut Placement,
    ) {
        let budget = self.budget(replicas);
        if cache.ring.len() <= budget {
            walk_ring(
                &cache.ring,
                views,
                key,
                size,
                replicas,
                &mut cache.nodes,
                true,
                out,
            );
            return;
        }
        Self::walk_strided(
            &cache.ring,
            views,
            key,
            size,
            replicas,
            budget,
            &mut cache.nodes,
            out,
        );
        if out.len() < replicas {
            // The strided probes came up short; fall back to the full
            // clockwise walk so completeness matches `DhtHashRing`.
            walk_ring(
                &cache.ring,
                views,
                key,
                size,
                replicas,
                &mut cache.nodes,
                true,
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: u32, cap: Bytes) -> Vec<VolumeView> {
        (0..n)
            .map(|i| VolumeView {
                volume: VolumeId(i),
                node: NodeId(i),
                capacity: cap,
                used: 0,
                online: true,
            })
            .collect()
    }

    fn policies() -> Vec<Box<dyn PlacementPolicy>> {
        vec![
            Box::new(DhtHashRing),
            Box::new(VnodeRing::default()),
            Box::new(CrushStraw2),
            Box::new(FreeSpaceWeighted),
            Box::new(PowerOfDChoices::default()),
            Box::new(StrideSampledDht::default()),
        ]
    }

    #[test]
    fn all_policies_place_requested_replicas() {
        let vs = views(6, 1 << 30);
        for p in policies() {
            let placed = p.place(12345, 1024, 3, &vs);
            assert_eq!(placed.len(), 3, "{} placed {:?}", p.name(), placed);
            let mut dedup = placed.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "{} returned duplicates", p.name());
        }
    }

    #[test]
    fn all_policies_are_deterministic() {
        let vs = views(6, 1 << 30);
        for p in policies() {
            assert_eq!(
                p.place(7, 10, 2, &vs),
                p.place(7, 10, 2, &vs),
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn policies_respect_free_space() {
        let mut vs = views(3, 1000);
        vs[0].used = 1000;
        vs[1].used = 1000;
        for p in policies() {
            let placed = p.place(99, 500, 1, &vs);
            assert_eq!(placed, vec![VolumeId(2)], "{}", p.name());
        }
    }

    #[test]
    fn empty_views_place_nothing() {
        for p in policies() {
            assert!(p.place(1, 1, 3, &[]).is_empty(), "{}", p.name());
        }
    }

    #[test]
    fn replicas_prefer_distinct_nodes() {
        // Two volumes on node 0, one on node 1: a 2-replica placement must
        // span both nodes.
        let vs = vec![
            VolumeView {
                volume: VolumeId(0),
                node: NodeId(0),
                capacity: 1 << 30,
                used: 0,
                online: true,
            },
            VolumeView {
                volume: VolumeId(1),
                node: NodeId(0),
                capacity: 1 << 30,
                used: 0,
                online: true,
            },
            VolumeView {
                volume: VolumeId(2),
                node: NodeId(1),
                capacity: 1 << 30,
                used: 0,
                online: true,
            },
        ];
        for p in policies() {
            let placed = p.place(42, 1, 2, &vs);
            assert_eq!(placed.len(), 2, "{}", p.name());
            let has_node1 = placed.contains(&VolumeId(2));
            assert!(
                has_node1,
                "{} did not spread across nodes: {:?}",
                p.name(),
                placed
            );
        }
    }

    #[test]
    fn hash_ring_moves_few_keys_on_node_addition() {
        // Consistent hashing property: adding one volume to a 8-volume ring
        // should relocate well under half the keys.
        let before = views(8, 1 << 30);
        let after = views(9, 1 << 30);
        let ring = VnodeRing::default();
        let total = 2000;
        let mut moved = 0;
        for k in 0..total {
            let key = mix(k, 0xfeed);
            if ring.place(key, 1, 1, &before) != ring.place(key, 1, 1, &after) {
                moved += 1;
            }
        }
        let frac = moved as f64 / total as f64;
        assert!(
            frac < 0.35,
            "vnode ring moved {frac:.2} of keys on single-node add"
        );
        assert!(frac > 0.01, "adding a node should move some keys");
    }

    #[test]
    fn crush_distributes_roughly_by_weight() {
        // One volume with 3x capacity should receive roughly 3x the keys.
        let mut vs = views(4, 1 << 30);
        vs[3].capacity = 3 << 30;
        let p = CrushStraw2;
        let mut counts = [0usize; 4];
        for k in 0..3000u64 {
            let placed = p.place(mix(k, 1), 1, 1, &vs);
            counts[placed[0].0 as usize] += 1;
        }
        let small_avg = (counts[0] + counts[1] + counts[2]) as f64 / 3.0;
        let big = counts[3] as f64;
        let ratio = big / small_avg;
        assert!(
            (2.0..4.5).contains(&ratio),
            "weight ratio {ratio:.2}, counts {counts:?}"
        );
    }

    #[test]
    fn cached_placement_matches_uncached_reference() {
        // The cached path must be bit-identical to `place()` across keys,
        // replica counts, fill-level drift, and topology changes (which
        // bump the generation and force a rebuild).
        for p in policies() {
            let mut cache = PlacementCache::new();
            let mut vs = views(6, 1 << 30);
            // The generation advances once per round (the end-of-round
            // topology change below bumps it).
            for round in 0..4u64 {
                let generation = round;
                for k in 0..200u64 {
                    let key = mix(k, round);
                    let size = 1 + (k % 7) * 1024;
                    let replicas = 1 + (k % 4) as usize;
                    let legacy = p.place(key, size, replicas, &vs);
                    let cached = p.place_cached(&mut cache, generation, key, size, replicas, &vs);
                    assert_eq!(legacy, cached, "{} diverged at key {key:#x}", p.name());
                    // Fill levels drift without a generation bump: caches
                    // must read `used` fresh, not from build time.
                    vs[(k % 6) as usize].used = (vs[(k % 6) as usize].used + size) % (1 << 29);
                }
                // Topology change: add a volume and bump the generation.
                let n = vs.len() as u32;
                vs.push(VolumeView {
                    volume: VolumeId(n),
                    node: NodeId(n),
                    capacity: 1 << 30,
                    used: 0,
                    online: true,
                });
            }
        }
    }

    #[test]
    fn cached_placement_survives_policy_switch_and_invalidate() {
        // One cache shared across policies (as the simulator owns a single
        // cache): switching the policy at the same generation must rebuild,
        // and an explicit invalidate must too.
        let vs = views(5, 1 << 30);
        let mut cache = PlacementCache::new();
        let dht = DhtHashRing;
        let vnode = VnodeRing::default();
        let a = dht.place_cached(&mut cache, 7, 11, 64, 2, &vs);
        assert_eq!(a, dht.place(11, 64, 2, &vs));
        let b = vnode.place_cached(&mut cache, 7, 11, 64, 2, &vs);
        assert_eq!(b, vnode.place(11, 64, 2, &vs));
        cache.invalidate();
        let c = vnode.place_cached(&mut cache, 7, 11, 64, 2, &vs);
        assert_eq!(b, c);
    }

    #[test]
    fn nan_scores_sort_consistently_regardless_of_input_order() {
        // Regression: the old comparator used `partial_cmp(..).unwrap_or(Equal)`,
        // so a NaN score compared Equal to everything and the final order
        // (hence the placement) depended on the input permutation. With
        // `total_cmp`, NaN sorts to a fixed position and both permutations
        // must agree.
        let mk = |vol: u32| VolumeView {
            volume: VolumeId(vol),
            node: NodeId(vol),
            capacity: 1 << 20,
            used: 0,
            online: true,
        };
        let scored_fwd = vec![(0.5, mk(0)), (f64::NAN, mk(1)), (0.9, mk(2))];
        let mut scored_rev = scored_fwd.clone();
        scored_rev.reverse();
        let fwd = pick_distinct_nodes(scored_fwd, 2, 1);
        let rev = pick_distinct_nodes(scored_rev, 2, 1);
        assert_eq!(fwd, rev, "NaN score made placement permutation-dependent");
        // NaN sorts above all ordered floats under total_cmp (positive NaN
        // has the largest bit pattern), so it wins a slot deterministically.
        assert_eq!(fwd, vec![VolumeId(1), VolumeId(2)]);

        // The indexed (cached-path) variant must agree with the same rule.
        let views = vec![mk(0), mk(1), mk(2)];
        let mut fwd_idx = vec![(0.5, 0u32), (f64::NAN, 1), (0.9, 2)];
        let mut rev_idx = fwd_idx.clone();
        rev_idx.reverse();
        let mut scratch = Vec::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        pick_distinct_nodes_indexed(&mut fwd_idx, &views, 2, 1, &mut scratch, &mut a);
        pick_distinct_nodes_indexed(&mut rev_idx, &views, 2, 1, &mut scratch, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, fwd);
    }

    /// Per-view coefficient of variation of `used` after replaying `keys`
    /// placements through `p`, charging each placed replica to its view.
    fn fill_cv(
        p: &dyn PlacementPolicy,
        keys: u64,
        replicas: usize,
        mut vs: Vec<VolumeView>,
    ) -> f64 {
        let mut cache = PlacementCache::new();
        let size: Bytes = 1 << 20;
        let mut out = Vec::new();
        for k in 0..keys {
            let key = mix(k, 0x5eed);
            p.place_cached_into(&mut cache, 0, key, size, replicas, &vs, &mut out);
            assert_eq!(out.len(), replicas, "{} failed a placement", p.name());
            for vol in &out {
                let v = vs.iter_mut().find(|v| v.volume == *vol).unwrap();
                v.used += size;
            }
        }
        let n = vs.len() as f64;
        let mean = vs.iter().map(|v| v.used as f64).sum::<f64>() / n;
        let var = vs
            .iter()
            .map(|v| (v.used as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    #[test]
    fn sampled_policies_track_full_scan_variance() {
        // Differential quality check: replay the same placement stream
        // through the full-scan policy and its sampled counterpart, and
        // compare the resulting fill imbalance (CV of per-volume used).
        // The documented bound — also gated in CI via BENCH_6 — is
        // sampled_cv <= 2 * full_cv + 0.05.
        let vs = views(64, 1 << 30);
        let bound = |full: f64| 2.0 * full + 0.05;

        let full_fsw = fill_cv(&FreeSpaceWeighted, 2000, 2, vs.clone());
        let pod = fill_cv(&PowerOfDChoices { d: 4 }, 2000, 2, vs.clone());
        assert!(
            pod <= bound(full_fsw),
            "power-of-d cv {pod:.4} vs full-scan cv {full_fsw:.4}"
        );

        let full_dht = fill_cv(&DhtHashRing, 2000, 2, vs.clone());
        let stride = fill_cv(&StrideSampledDht { d: 8 }, 2000, 2, vs);
        assert!(
            stride <= bound(full_dht),
            "stride-dht cv {stride:.4} vs full-scan cv {full_dht:.4}"
        );
    }

    #[test]
    fn stride_dht_first_replica_matches_full_ring_successor() {
        // The strided walk starts at the key's true successor, so when the
        // successor volume has room the first replica must agree with the
        // full clockwise walk — the key→owner structure of GlusterFS-style
        // hashing is preserved, only the spill-over search is sampled.
        let vs = views(256, 1 << 30);
        let full = DhtHashRing;
        let sampled = StrideSampledDht { d: 4 };
        for k in 0..500u64 {
            let key = mix(k, 0xd417);
            let a = full.place(key, 1024, 1, &vs);
            let b = sampled.place(key, 1024, 1, &vs);
            assert_eq!(a[0], b[0], "successor diverged at key {key:#x}");
        }
    }

    #[test]
    fn sampled_policies_fall_back_to_full_scan_when_sample_is_full() {
        // 128 volumes, all full except one: a d*replicas sample will
        // usually miss the single free volume, and the fallback must find
        // it anyway — completeness matches the full-scan policies.
        let mut vs = views(128, 1000);
        for v in vs.iter_mut() {
            v.used = 1000;
        }
        vs[97].used = 0;
        for p in [
            Box::new(PowerOfDChoices { d: 2 }) as Box<dyn PlacementPolicy>,
            Box::new(StrideSampledDht { d: 2 }),
        ] {
            for k in 0..50u64 {
                let placed = p.place(mix(k, 3), 500, 1, &vs);
                assert_eq!(placed, vec![VolumeId(97)], "{} key {k}", p.name());
            }
        }
    }

    #[test]
    fn free_space_weighted_prefers_empty_volumes() {
        let mut vs = views(2, 1000);
        vs[0].used = 900;
        let p = FreeSpaceWeighted;
        let mut empties = 0;
        for k in 0..200u64 {
            if p.place(mix(k, 2), 1, 1, &vs)[0] == VolumeId(1) {
                empties += 1;
            }
        }
        assert!(
            empties > 190,
            "free-space policy picked the full volume too often"
        );
    }
}
