//! Deterministic fault injection.
//!
//! Themis's premise is that imbalance failures emerge from *environment
//! changes* — node crashes, degraded disks, partitions — not only from
//! clean topology commands. A [`FaultPlan`] schedules such environment
//! faults on the virtual clock: every event carries an absolute virtual
//! time, node targets are resolved by rank over the online node set at
//! fire time, and all jitter derives from the plan seed via the fixed
//! [`crate::hashing::mix`] permutation. Two simulators driven with the
//! same `(seed, plan)` therefore observe bit-identical fault sequences,
//! which keeps whole fuzzing campaigns reproducible under fault load.
//!
//! Faults model the *environment*, not DFS process state: a crashed host
//! stays crashed across [`crate::DfsSim::reset`] (a redeploy does not fix
//! hardware), as do slow disks, full volumes, loss on the migration path
//! and network partitions, until the plan schedules a restart or a
//! [`FaultKind::Heal`].

use crate::hashing::mix;
use crate::types::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// One injectable environment fault.
///
/// Node-targeting variants carry a *rank*, not a node id: the target is
/// the `index % n`-th node (in id order) of the relevant online set when
/// the event fires. Plans thus stay valid across topologies while staying
/// fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Hard-crash the `index`-th online storage node (it stays down, even
    /// across resets, until restarted). A lone survivor is never crashed.
    CrashStorage {
        /// Rank into the online storage set.
        index: u32,
    },
    /// Restart the `index`-th fault-crashed storage node.
    RestartStorage {
        /// Rank into the fault-crashed list.
        index: u32,
    },
    /// The `index`-th online management node degrades: requests it serves
    /// cost `factor`× the latency and burn `factor`× the CPU.
    SlowMgmt {
        /// Rank into the online management set.
        index: u32,
        /// Latency/CPU multiplier (≥ 1).
        factor: u32,
    },
    /// The `index`-th online storage node degrades: migrations touching it
    /// only make progress every `factor`-th balancer step.
    SlowStorage {
        /// Rank into the online storage set.
        index: u32,
        /// Stall factor (≥ 1).
        factor: u32,
    },
    /// Every volume of the `index`-th online storage node reports full
    /// (free space collapses to zero; existing data stays readable).
    DiskFull {
        /// Rank into the online storage set.
        index: u32,
    },
    /// The migration path starts dropping `pct`% of every moved replica.
    LossyMigration {
        /// Percentage of migrated bytes lost (0–100).
        pct: u8,
    },
    /// The `index`-th online management node is partitioned away: it takes
    /// no client requests and drops out of the load monitor.
    PartitionMgmt {
        /// Rank into the online management set.
        index: u32,
    },
    /// The `index`-th online storage node is partitioned away from the
    /// management plane: no placements, migrations or monitoring reach it.
    PartitionStorage {
        /// Rank into the online storage set.
        index: u32,
    },
    /// All partitions heal and slow-node skews clear.
    Heal,
}

/// A fault scheduled at an absolute virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time (ms since simulator start) at which the fault fires.
    pub at_ms: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of environment faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Events in firing order (sorted by time on construction; ties keep
    /// their insertion order).
    pub events: Vec<FaultEvent>,
}

/// Jittered event time inside `[lo_min, hi_min)` minutes, derived from the
/// plan seed so equal seeds give equal schedules.
fn at(seed: u64, salt: u64, lo_min: u64, hi_min: u64) -> u64 {
    lo_min * 60_000 + mix(seed, salt) % ((hi_min - lo_min) * 60_000)
}

impl FaultPlan {
    /// Builds a plan, sorting events into firing order (stable, so
    /// same-instant events keep their authored order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_ms);
        FaultPlan { events }
    }

    /// The named fault profiles, in fixed sweep order ("none" first).
    pub fn profiles() -> &'static [&'static str] {
        &[
            "none",
            "crash",
            "flap",
            "slow",
            "lossy",
            "diskfull",
            "partition",
            "chaos",
        ]
    }

    /// A named profile with seed-jittered timing and targets; `None` for
    /// an unknown name. `named("none", _)` is the empty plan.
    pub fn named(profile: &str, seed: u64) -> Option<FaultPlan> {
        let idx = |salt: u64| (mix(seed, salt) % 64) as u32;
        let ev = |at_ms: u64, kind: FaultKind| FaultEvent { at_ms, kind };
        let plan = match profile {
            "none" => Vec::new(),
            // One storage host dies and stays dead.
            "crash" => vec![ev(
                at(seed, 0xc4a5, 20, 40),
                FaultKind::CrashStorage { index: idx(1) },
            )],
            // A storage host dies, then comes back half an hour later.
            "flap" => {
                let t = at(seed, 0xf1a9, 15, 30);
                vec![
                    ev(t, FaultKind::CrashStorage { index: idx(2) }),
                    ev(t + 30 * 60_000, FaultKind::RestartStorage { index: 0 }),
                ]
            }
            // One gateway degrades to 6× latency/CPU per request.
            "slow" => vec![ev(
                at(seed, 0x510e, 10, 25),
                FaultKind::SlowMgmt {
                    index: idx(3),
                    factor: 6,
                },
            )],
            // The migration path starts losing 40% of moved bytes.
            "lossy" => vec![ev(
                at(seed, 0x1055, 5, 15),
                FaultKind::LossyMigration { pct: 40 },
            )],
            // One storage host's volumes fill up.
            "diskfull" => vec![ev(
                at(seed, 0xd15c, 20, 40),
                FaultKind::DiskFull { index: idx(4) },
            )],
            // A transient gateway partition that heals 45 minutes later —
            // the detector must not confirm anything off the flap alone.
            "partition" => {
                let t = at(seed, 0x9a27, 15, 30);
                vec![
                    ev(t, FaultKind::PartitionMgmt { index: idx(5) }),
                    ev(t + 45 * 60_000, FaultKind::Heal),
                ]
            }
            // Everything at once, staggered.
            "chaos" => {
                let t_part = at(seed, 0xc405, 30, 50);
                vec![
                    ev(
                        at(seed, 0xc401, 5, 15),
                        FaultKind::LossyMigration { pct: 25 },
                    ),
                    ev(
                        at(seed, 0xc402, 10, 25),
                        FaultKind::SlowMgmt {
                            index: idx(6),
                            factor: 6,
                        },
                    ),
                    ev(
                        at(seed, 0xc403, 20, 40),
                        FaultKind::CrashStorage { index: idx(7) },
                    ),
                    ev(t_part, FaultKind::PartitionStorage { index: idx(8) }),
                    ev(t_part + 30 * 60_000, FaultKind::Heal),
                ]
            }
            _ => return None,
        };
        Some(FaultPlan::new(plan))
    }
}

/// Runtime fault state held by the simulator: the plan cursor plus the
/// currently active environment degradations. The simulator applies due
/// events from its single clock-advance point and consults the active
/// state on every routing, migration and monitoring decision.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    /// Fault-crashed nodes (persist across resets until restarted).
    crashed: Vec<NodeId>,
    /// Nodes whose volumes were forced full (re-applied after resets).
    disk_full: Vec<NodeId>,
    slow_mgmt: BTreeMap<NodeId, u32>,
    slow_storage: BTreeMap<NodeId, u32>,
    /// Slow-machine factor whose node left the cluster: the bad host goes
    /// back to the provisioning pool and the next node added in the same
    /// role lands on it — machine faults outlive DFS membership.
    slow_mgmt_orphan: Option<u32>,
    slow_storage_orphan: Option<u32>,
    partitioned: BTreeSet<NodeId>,
    loss_pct: u8,
    /// Global stall counter for slow-storage migration deferral.
    defer_counter: u64,
}

impl FaultInjector {
    /// Installs a plan, clearing the cursor and all active fault state.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        *self = FaultInjector {
            plan,
            ..FaultInjector::default()
        };
    }

    /// Pops the next event due at or before `now_ms`, if any.
    pub fn next_due(&mut self, now_ms: u64) -> Option<FaultKind> {
        let ev = self.plan.events.get(self.cursor)?;
        if ev.at_ms > now_ms {
            return None;
        }
        self.cursor += 1;
        Some(ev.kind)
    }

    /// Whether any fault is scheduled or active (fast gate for hot paths).
    pub fn any(&self) -> bool {
        !self.plan.events.is_empty()
            || !self.crashed.is_empty()
            || !self.disk_full.is_empty()
            || !self.slow_mgmt.is_empty()
            || !self.slow_storage.is_empty()
            || self.slow_mgmt_orphan.is_some()
            || self.slow_storage_orphan.is_some()
            || !self.partitioned.is_empty()
            || self.loss_pct > 0
    }

    /// Records a fault crash (the node stays down across resets).
    pub fn note_crashed(&mut self, id: NodeId) {
        self.crashed.push(id);
    }

    /// Takes the `index`-th fault-crashed node for a restart, if any.
    pub fn take_crashed(&mut self, index: u32) -> Option<NodeId> {
        if self.crashed.is_empty() {
            return None;
        }
        let i = index as usize % self.crashed.len();
        Some(self.crashed.remove(i))
    }

    /// Fault-crashed nodes (re-crashed on reset).
    pub fn crashed(&self) -> &[NodeId] {
        &self.crashed
    }

    /// Records a disk-full node (re-applied on reset).
    pub fn note_disk_full(&mut self, id: NodeId) {
        if !self.disk_full.contains(&id) {
            self.disk_full.push(id);
        }
    }

    /// Nodes whose volumes were forced full.
    pub fn disk_full(&self) -> &[NodeId] {
        &self.disk_full
    }

    /// Marks a management node slow.
    pub fn set_slow_mgmt(&mut self, id: NodeId, factor: u32) {
        self.slow_mgmt.insert(id, factor.max(1));
    }

    /// Marks a storage node slow.
    pub fn set_slow_storage(&mut self, id: NodeId, factor: u32) {
        self.slow_storage.insert(id, factor.max(1));
    }

    /// Latency/CPU multiplier for a management node (1 when healthy).
    pub fn slow_mgmt_factor(&self, id: NodeId) -> u32 {
        self.slow_mgmt.get(&id).copied().unwrap_or(1)
    }

    /// Migration stall factor for a storage node (1 when healthy).
    pub fn slow_storage_factor(&self, id: NodeId) -> u32 {
        self.slow_storage.get(&id).copied().unwrap_or(1)
    }

    /// Notes that management node `id` left the cluster. If it was the
    /// slow machine, the host returns to the provisioning pool and the
    /// next management node added lands on it (see
    /// [`FaultInjector::mgmt_added`]) — removing the process does not fix
    /// the machine.
    pub fn mgmt_removed(&mut self, id: NodeId) {
        if let Some(f) = self.slow_mgmt.remove(&id) {
            self.slow_mgmt_orphan = Some(f);
        }
        self.partitioned.remove(&id);
    }

    /// Notes that a new management node joined; it inherits the orphaned
    /// slow machine, if one is waiting in the pool.
    pub fn mgmt_added(&mut self, id: NodeId) {
        if let Some(f) = self.slow_mgmt_orphan.take() {
            self.slow_mgmt.insert(id, f);
        }
    }

    /// Notes that storage node `id` left the cluster (slow-host pool
    /// semantics as for [`FaultInjector::mgmt_removed`]).
    pub fn storage_removed(&mut self, id: NodeId) {
        if let Some(f) = self.slow_storage.remove(&id) {
            self.slow_storage_orphan = Some(f);
        }
        self.partitioned.remove(&id);
        self.disk_full.retain(|n| *n != id);
    }

    /// Notes that a new storage node joined; it inherits the orphaned
    /// slow machine, if one is waiting in the pool.
    pub fn storage_added(&mut self, id: NodeId) {
        if let Some(f) = self.slow_storage_orphan.take() {
            self.slow_storage.insert(id, f);
        }
    }

    /// Re-targets fault state after a redeploy restored the pristine
    /// topology: the same machine pool hosts the fresh nodes, so machine
    /// faults attached to nodes that no longer exist are re-assigned to
    /// restored nodes of the same role (in id order, skipping hosts that
    /// already carry the same fault). Partitions referencing vanished
    /// hosts are dropped — the hosts they isolated are gone.
    pub fn remap_nodes(&mut self, mgmt: &[NodeId], storage: &[NodeId]) {
        fn retarget_list(ids: &mut [NodeId], pool: &[NodeId]) {
            let mut taken: BTreeSet<NodeId> =
                ids.iter().filter(|id| pool.contains(id)).copied().collect();
            for id in ids.iter_mut() {
                if !pool.contains(id) {
                    if let Some(n) = pool.iter().find(|n| !taken.contains(n)) {
                        *id = *n;
                        taken.insert(*n);
                    }
                }
            }
        }
        fn retarget_map(map: &mut BTreeMap<NodeId, u32>, pool: &[NodeId]) {
            let missing: Vec<NodeId> = map
                .keys()
                .filter(|id| !pool.contains(id))
                .copied()
                .collect();
            for id in missing {
                let f = map.remove(&id).expect("key present");
                if let Some(n) = pool.iter().find(|n| !map.contains_key(n)) {
                    map.insert(*n, f);
                }
            }
        }
        retarget_list(&mut self.crashed, storage);
        retarget_list(&mut self.disk_full, storage);
        retarget_map(&mut self.slow_mgmt, mgmt);
        retarget_map(&mut self.slow_storage, storage);
        self.partitioned
            .retain(|id| mgmt.contains(id) || storage.contains(id));
    }

    /// Counts a migration attempt against a stall factor; `true` means the
    /// move may execute this step, `false` that it is deferred.
    pub fn defer_tick(&mut self, factor: u32) -> bool {
        self.defer_counter += 1;
        self.defer_counter.is_multiple_of(factor.max(1) as u64)
    }

    /// Sets the migration loss percentage.
    pub fn set_loss(&mut self, pct: u8) {
        self.loss_pct = pct.min(100);
    }

    /// Active migration loss percentage (0 when healthy).
    pub fn loss_pct(&self) -> u8 {
        self.loss_pct
    }

    /// Partitions a node away from the management plane.
    pub fn partition(&mut self, id: NodeId) {
        self.partitioned.insert(id);
    }

    /// Whether any partition is active (fast gate).
    pub fn has_partitions(&self) -> bool {
        !self.partitioned.is_empty()
    }

    /// Whether `id` is currently partitioned away.
    pub fn is_partitioned(&self, id: NodeId) -> bool {
        !self.partitioned.is_empty() && self.partitioned.contains(&id)
    }

    /// Currently partitioned nodes, in id order.
    pub fn partitioned_nodes(&self) -> Vec<NodeId> {
        self.partitioned.iter().copied().collect()
    }

    /// Heals all partitions and clears slow-node skews (including slow
    /// machines waiting in the provisioning pool).
    pub fn heal(&mut self) {
        self.partitioned.clear();
        self.slow_mgmt.clear();
        self.slow_storage.clear();
        self.slow_mgmt_orphan = None;
        self.slow_storage_orphan = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_are_deterministic() {
        for p in FaultPlan::profiles() {
            let a = FaultPlan::named(p, 42).unwrap();
            let b = FaultPlan::named(p, 42).unwrap();
            assert_eq!(a, b, "profile {p} must be a pure function of seed");
        }
        assert!(FaultPlan::named("no_such_profile", 1).is_none());
    }

    #[test]
    fn seeds_jitter_the_schedule() {
        let a = FaultPlan::named("crash", 1).unwrap();
        let b = FaultPlan::named("crash", 2).unwrap();
        assert_ne!(a, b, "different seeds should give different timing");
    }

    #[test]
    fn plans_are_sorted_by_time() {
        for p in FaultPlan::profiles() {
            let plan = FaultPlan::named(p, 7).unwrap();
            for w in plan.events.windows(2) {
                assert!(w[0].at_ms <= w[1].at_ms);
            }
        }
    }

    #[test]
    fn injector_pops_due_events_in_order() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at_ms: 2_000,
                kind: FaultKind::Heal,
            },
            FaultEvent {
                at_ms: 1_000,
                kind: FaultKind::LossyMigration { pct: 10 },
            },
        ]);
        let mut inj = FaultInjector::default();
        inj.set_plan(plan);
        assert_eq!(inj.next_due(500), None);
        assert_eq!(
            inj.next_due(1_500),
            Some(FaultKind::LossyMigration { pct: 10 })
        );
        assert_eq!(inj.next_due(1_500), None);
        assert_eq!(inj.next_due(5_000), Some(FaultKind::Heal));
        assert_eq!(inj.next_due(u64::MAX), None);
    }

    #[test]
    fn heal_clears_partitions_and_skews() {
        let mut inj = FaultInjector::default();
        inj.partition(NodeId(3));
        inj.set_slow_mgmt(NodeId(1), 6);
        inj.set_slow_storage(NodeId(2), 4);
        assert!(inj.is_partitioned(NodeId(3)));
        assert_eq!(inj.slow_mgmt_factor(NodeId(1)), 6);
        inj.heal();
        assert!(!inj.has_partitions());
        assert_eq!(inj.slow_mgmt_factor(NodeId(1)), 1);
        assert_eq!(inj.slow_storage_factor(NodeId(2)), 1);
    }

    #[test]
    fn defer_tick_executes_every_nth_attempt() {
        let mut inj = FaultInjector::default();
        let fired: Vec<bool> = (0..6).map(|_| inj.defer_tick(3)).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn crashed_list_supports_restart_by_rank() {
        let mut inj = FaultInjector::default();
        inj.note_crashed(NodeId(5));
        inj.note_crashed(NodeId(9));
        assert_eq!(inj.take_crashed(1), Some(NodeId(9)));
        assert_eq!(inj.crashed(), &[NodeId(5)]);
        assert_eq!(inj.take_crashed(7), Some(NodeId(5)));
        assert_eq!(inj.take_crashed(0), None);
    }

    #[test]
    fn slow_host_follows_membership_churn() {
        // Removing the process on a slow machine does not fix the machine:
        // the host returns to the pool and the next node added lands on it.
        let mut inj = FaultInjector::default();
        inj.set_slow_mgmt(NodeId(1), 6);
        inj.mgmt_removed(NodeId(1));
        assert_eq!(inj.slow_mgmt_factor(NodeId(1)), 1);
        assert!(inj.any(), "orphaned slow host still counts as a fault");
        inj.mgmt_added(NodeId(9));
        assert_eq!(inj.slow_mgmt_factor(NodeId(9)), 6);

        inj.set_slow_storage(NodeId(4), 3);
        inj.storage_removed(NodeId(4));
        inj.storage_added(NodeId(12));
        assert_eq!(inj.slow_storage_factor(NodeId(12)), 3);

        // Heal also drains the pool.
        inj.mgmt_removed(NodeId(9));
        inj.heal();
        inj.mgmt_added(NodeId(20));
        assert_eq!(inj.slow_mgmt_factor(NodeId(20)), 1);
    }

    #[test]
    fn remap_retargets_dangling_fault_state() {
        let mut inj = FaultInjector::default();
        inj.set_slow_mgmt(NodeId(42), 4);
        inj.note_crashed(NodeId(77));
        inj.note_disk_full(NodeId(78));
        inj.partition(NodeId(88));
        inj.remap_nodes(&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        // Machine faults land on restored nodes of the same role, in id
        // order; the partition of a vanished host is dropped.
        assert_eq!(inj.slow_mgmt_factor(NodeId(0)), 4);
        assert_eq!(inj.crashed(), &[NodeId(2)]);
        assert_eq!(inj.disk_full(), &[NodeId(2)]);
        assert!(!inj.is_partitioned(NodeId(88)));
        assert!(!inj.has_partitions());
    }

    #[test]
    fn remap_keeps_still_valid_targets() {
        let mut inj = FaultInjector::default();
        inj.set_slow_mgmt(NodeId(1), 6);
        inj.note_crashed(NodeId(3));
        inj.partition(NodeId(1));
        inj.remap_nodes(&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        assert_eq!(inj.slow_mgmt_factor(NodeId(1)), 6);
        assert_eq!(inj.crashed(), &[NodeId(3)]);
        assert!(inj.is_partitioned(NodeId(1)));
    }
}
