//! The four simulated DFS flavors and their configurations.
//!
//! Each flavor mirrors the externally observable load-balancing behaviour of
//! one of the paper's targets: placement algorithm family, balancer
//! activation style, default imbalance threshold, default topology, and the
//! size of its coverage universe (scaled to the branch counts the paper
//! reports in Table 5).

use crate::coverage::CoverageUniverse;
use crate::placement::{
    CrushStraw2, DhtHashRing, FreeSpaceWeighted, PlacementPolicy, PowerOfDChoices,
    StrideSampledDht, VnodeRing,
};
use crate::types::{Bytes, GIB, MIB};
use serde::{Deserialize, Serialize};

/// One of the four simulated distributed file systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Flavor {
    /// Hadoop Distributed File System (v3.4-sim).
    Hdfs,
    /// CephFS (v18.0.0-sim).
    CephFs,
    /// GlusterFS (v12.0-sim).
    GlusterFs,
    /// LeoFS (v1.4.4-sim).
    LeoFs,
}

impl Flavor {
    /// All four flavors in the paper's presentation order.
    pub fn all() -> [Flavor; 4] {
        [
            Flavor::Hdfs,
            Flavor::CephFs,
            Flavor::GlusterFs,
            Flavor::LeoFs,
        ]
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Flavor::Hdfs => "HDFS",
            Flavor::CephFs => "CephFS",
            Flavor::GlusterFs => "GlusterFS",
            Flavor::LeoFs => "LeoFS",
        }
    }

    /// Simulated version string (matching the versions the paper tests).
    pub fn version(self) -> &'static str {
        match self {
            Flavor::Hdfs => "v3.4-sim",
            Flavor::CephFs => "v18.0.0-sim",
            Flavor::GlusterFs => "v12.0-sim",
            Flavor::LeoFs => "v1.4.4-sim",
        }
    }

    /// The default configuration for this flavor.
    pub fn config(self) -> FlavorConfig {
        FlavorConfig::for_flavor(self)
    }
}

impl std::fmt::Display for Flavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the flavor's storage balancer activates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerStyle {
    /// HDFS: the Balancer tool runs when invoked (rebalance API) and a
    /// background check fires periodically.
    OnDemand {
        /// Period of the background imbalance check, in ms.
        check_period_ms: u64,
    },
    /// GlusterFS: rebalance is started by volume topology commands and by
    /// the rebalance API; a periodic fix-layout task also runs.
    Periodic {
        /// Period of the timed rebalance task, in ms.
        period_ms: u64,
    },
    /// CephFS: the balancer evaluates continuously (every clock tick).
    Continuous,
    /// LeoFS: rebalance runs after cluster membership changes and on API
    /// request.
    OnMembership,
}

/// Placement algorithm family used by a flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    /// Free-space-weighted selection (HDFS).
    FreeSpaceWeighted,
    /// CRUSH/straw2 weighted rendezvous hashing (Ceph).
    Crush,
    /// DHT hash partitioning (GlusterFS).
    DhtRing,
    /// Consistent hashing with virtual nodes (LeoFS).
    VnodeRing,
    /// Power-of-d-choices sampling over free-space scores: scores `d`
    /// candidates per replica instead of every volume. The O(d) stand-in
    /// for [`PlacementKind::FreeSpaceWeighted`] / [`PlacementKind::Crush`]
    /// on 100k-node topologies.
    PowerOfD,
    /// Stride-sampled DHT ring: same hash ring as
    /// [`PlacementKind::DhtRing`], probed at `d` strided points per replica
    /// instead of walked in full. The O(d) stand-in for the ring policies.
    StrideDht,
}

impl PlacementKind {
    /// Instantiates the policy object.
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementKind::FreeSpaceWeighted => Box::new(FreeSpaceWeighted),
            PlacementKind::Crush => Box::new(CrushStraw2),
            PlacementKind::DhtRing => Box::new(DhtHashRing),
            PlacementKind::VnodeRing => Box::new(VnodeRing::default()),
            PlacementKind::PowerOfD => Box::new(PowerOfDChoices::default()),
            PlacementKind::StrideDht => Box::new(StrideSampledDht::default()),
        }
    }

    /// The candidate-sampling counterpart of this placement family: scoring
    /// policies map to power-of-d sampling, ring policies to the strided
    /// ring. Sampling kinds map to themselves.
    pub fn sampled(self) -> PlacementKind {
        match self {
            PlacementKind::FreeSpaceWeighted | PlacementKind::Crush | PlacementKind::PowerOfD => {
                PlacementKind::PowerOfD
            }
            PlacementKind::DhtRing | PlacementKind::VnodeRing | PlacementKind::StrideDht => {
                PlacementKind::StrideDht
            }
        }
    }
}

/// How client requests are routed to management nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// Route by hash of the path (Gluster/LeoFS gateways).
    HashPath,
    /// Round-robin across online management nodes (HDFS HA reads).
    RoundRobin,
    /// Primary-subtree: the MDS owning the top-level directory serves the
    /// request (CephFS dynamic subtree partitioning, coarse-grained).
    PrimarySubtree,
}

/// Full configuration of one simulated DFS instance.
#[derive(Debug, Clone)]
pub struct FlavorConfig {
    /// Which flavor this configures.
    pub flavor: Flavor,
    /// Replication factor for file data.
    pub replicas: usize,
    /// Internal balancer threshold `t` (fraction over the mean that counts
    /// as imbalanced; 0.10 in the HDFS Balancer, 0.20 in GlusterFS).
    pub balance_threshold: f64,
    /// Balancer activation style.
    pub balancer: BalancerStyle,
    /// Placement algorithm.
    pub placement: PlacementKind,
    /// Request routing.
    pub routing: RoutingKind,
    /// Coverage universe sizes.
    pub coverage: CoverageUniverse,
    /// Initial number of management nodes.
    pub mgmt_nodes: u32,
    /// Initial number of storage nodes.
    pub storage_nodes: u32,
    /// Volumes attached to each initial storage node.
    pub volumes_per_node: u32,
    /// Capacity of each initial volume, in bytes.
    pub volume_capacity: Bytes,
    /// File moves the migration executor performs per balancer step.
    pub moves_per_step: usize,
    /// Virtual milliseconds one migration step takes.
    pub migrate_step_ms: u64,
    /// How long a file's hashed id stays in the DHT migration cache
    /// (GlusterFS dht-rebalance cache; drives new-bug #1).
    pub hash_cache_ttl_ms: u64,
    /// Striping block size: file data is split into blocks of this size
    /// and placed independently (HDFS blocks, Ceph objects, LeoFS chunks).
    /// `0` means whole-file placement (GlusterFS DHT semantics).
    pub block_size: Bytes,
    /// Whole-file flavors shard files larger than this threshold into
    /// `shard_size` pieces (the GlusterFS shard translator). `0` disables
    /// sharding (meaningless for striping flavors).
    pub shard_threshold: Bytes,
    /// Shard size used above `shard_threshold`.
    pub shard_size: Bytes,
    /// Maximum management nodes the testbed can host.
    pub max_mgmt_nodes: u32,
    /// Maximum storage nodes the testbed can host.
    pub max_storage_nodes: u32,
    /// Maximum volumes per storage node.
    pub max_volumes_per_node: u32,
    /// Fraction of raw capacity pre-loaded with base data at deploy time.
    /// Production DFSes already store large amounts of data (Section 2.1);
    /// the tester's workload shifts balance only gradually against it.
    pub base_fill: f64,
    /// Size of each pre-loaded base file.
    pub base_file_size: Bytes,
}

impl FlavorConfig {
    /// The paper-faithful default configuration for `flavor`.
    ///
    /// All flavors run the paper's 10-node cluster split between management
    /// and storage roles; capacities are scaled from 480 GB SSDs down to a
    /// few GiB so campaigns stay fast while preserving utilization ratios.
    pub fn for_flavor(flavor: Flavor) -> Self {
        match flavor {
            Flavor::Hdfs => FlavorConfig {
                flavor,
                replicas: 3,
                balance_threshold: 0.10,
                balancer: BalancerStyle::OnDemand {
                    check_period_ms: 600_000,
                },
                placement: PlacementKind::FreeSpaceWeighted,
                routing: RoutingKind::RoundRobin,
                coverage: CoverageUniverse {
                    base: 26_000,
                    pair: 7_500,
                    state: 6_000,
                    deep: 6_000,
                },
                mgmt_nodes: 2,
                storage_nodes: 8,
                volumes_per_node: 2,
                volume_capacity: 24 * GIB,
                moves_per_step: 4,
                migrate_step_ms: 2_000,
                hash_cache_ttl_ms: 0,
                block_size: 32 * MIB,
                shard_threshold: 0,
                shard_size: 0,
                max_mgmt_nodes: 4,
                max_storage_nodes: 10,
                max_volumes_per_node: 4,
                base_fill: 0.35,
                base_file_size: 256 * MIB,
            },
            Flavor::CephFs => FlavorConfig {
                flavor,
                replicas: 3,
                balance_threshold: 0.08,
                balancer: BalancerStyle::Continuous,
                placement: PlacementKind::Crush,
                routing: RoutingKind::PrimarySubtree,
                coverage: CoverageUniverse {
                    base: 42_000,
                    pair: 11_000,
                    state: 9_500,
                    deep: 10_000,
                },
                mgmt_nodes: 3,
                storage_nodes: 7,
                volumes_per_node: 2,
                volume_capacity: 24 * GIB,
                moves_per_step: 6,
                migrate_step_ms: 1_500,
                hash_cache_ttl_ms: 0,
                block_size: 8 * MIB,
                shard_threshold: 0,
                shard_size: 0,
                max_mgmt_nodes: 5,
                max_storage_nodes: 9,
                max_volumes_per_node: 4,
                base_fill: 0.35,
                base_file_size: 256 * MIB,
            },
            Flavor::GlusterFs => FlavorConfig {
                flavor,
                replicas: 2,
                balance_threshold: 0.20,
                balancer: BalancerStyle::Periodic { period_ms: 300_000 },
                placement: PlacementKind::DhtRing,
                routing: RoutingKind::HashPath,
                coverage: CoverageUniverse {
                    base: 32_000,
                    pair: 9_000,
                    state: 7_000,
                    deep: 7_500,
                },
                mgmt_nodes: 2,
                storage_nodes: 8,
                volumes_per_node: 2,
                volume_capacity: 24 * GIB,
                moves_per_step: 4,
                migrate_step_ms: 2_500,
                hash_cache_ttl_ms: 900_000,
                block_size: 0,
                shard_threshold: 128 * MIB,
                shard_size: 32 * MIB,
                max_mgmt_nodes: 4,
                max_storage_nodes: 10,
                max_volumes_per_node: 4,
                base_fill: 0.35,
                base_file_size: 256 * MIB,
            },
            Flavor::LeoFs => FlavorConfig {
                flavor,
                replicas: 2,
                balance_threshold: 0.15,
                balancer: BalancerStyle::OnMembership,
                placement: PlacementKind::VnodeRing,
                routing: RoutingKind::HashPath,
                coverage: CoverageUniverse {
                    base: 7_600,
                    pair: 2_100,
                    state: 1_700,
                    deep: 1_700,
                },
                mgmt_nodes: 3,
                storage_nodes: 7,
                volumes_per_node: 1,
                volume_capacity: 48 * GIB,
                moves_per_step: 3,
                migrate_step_ms: 2_000,
                hash_cache_ttl_ms: 0,
                block_size: 16 * MIB,
                shard_threshold: 0,
                shard_size: 0,
                max_mgmt_nodes: 5,
                max_storage_nodes: 9,
                max_volumes_per_node: 3,
                base_fill: 0.35,
                base_file_size: 256 * MIB,
            },
        }
    }

    /// A large-topology variant of the flavor's default configuration for
    /// scaling studies (1k/10k-node campaigns).
    ///
    /// Only the storage fleet grows — the management fleet keeps its
    /// paper-faithful size, because real deployments scale data nodes far
    /// faster than NameNodes/MDSes and the simulator's per-op mgmt walks
    /// stay O(1) that way. Pre-loaded base files are enlarged to 1 GiB so
    /// deploy-time preload stays a bounded number of placements (tens of
    /// thousands at 10k nodes) instead of millions.
    ///
    /// Requesting fewer storage nodes than the paper default keeps the
    /// default topology unchanged.
    pub fn scaled(flavor: Flavor, storage_nodes: u32) -> Self {
        let mut cfg = Self::for_flavor(flavor);
        if storage_nodes > cfg.storage_nodes {
            cfg.storage_nodes = storage_nodes;
            // Leave headroom for AddStorageNode churn on top of the
            // requested fleet (10%, at least 2 slots).
            cfg.max_storage_nodes = storage_nodes.saturating_add((storage_nodes / 10).max(2));
            // From 50k nodes up the binding constraint flips: bulk-load
            // preload made per-store cost cheap, so what matters is the
            // *starting-state quantization imbalance* — k fragments per
            // volume leave max/mean ≈ 1 + 1/k, and coarse GiB fragments at
            // 100k nodes (k ≈ 8) start the cluster above every flavor's
            // balancer threshold, which contradicts the balanced-deploy
            // premise of preload. 512 MiB keeps k ≈ 17 (ratio ≈ 1.01, under
            // all thresholds) while preload stays around a million
            // round-robin placements.
            cfg.base_file_size = if storage_nodes >= 50_000 {
                512 * MIB
            } else {
                GIB
            };
        }
        cfg
    }

    /// Like [`FlavorConfig::scaled`], but swaps the flavor's full-scan
    /// placement policy for its candidate-sampling counterpart
    /// ([`PlacementKind::sampled`]): O(d) scored candidates per fragment
    /// instead of O(V). Everything else — balancer, routing, topology —
    /// matches `scaled` exactly, so differential runs isolate the placement
    /// policy.
    pub fn sampled_scaled(flavor: Flavor, storage_nodes: u32) -> Self {
        let mut cfg = Self::scaled(flavor, storage_nodes);
        cfg.placement = cfg.placement.sampled();
        cfg
    }

    /// Default size of a volume added by `AddVolume`/`AddStorageNode`
    /// requests when the caller does not specify one.
    pub fn default_new_volume_capacity(&self) -> Bytes {
        self.volume_capacity
    }

    /// Default size bound for generated files (a fraction of one volume so
    /// single files cannot trivially fill a node).
    pub fn max_reasonable_file(&self) -> Bytes {
        self.volume_capacity / 8
    }

    /// Smallest granularity of file data the simulator tracks.
    pub fn io_unit(&self) -> Bytes {
        MIB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_flavors_have_distinct_names_and_versions() {
        let names: Vec<_> = Flavor::all().iter().map(|f| f.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn ten_node_clusters() {
        for f in Flavor::all() {
            let c = f.config();
            assert_eq!(
                c.mgmt_nodes + c.storage_nodes,
                10,
                "{f} must form a 10-node cluster"
            );
        }
    }

    #[test]
    fn thresholds_match_paper_defaults() {
        assert!((Flavor::Hdfs.config().balance_threshold - 0.10).abs() < 1e-9);
        assert!((Flavor::GlusterFs.config().balance_threshold - 0.20).abs() < 1e-9);
    }

    #[test]
    fn coverage_universe_ordering_matches_table5_scale() {
        // Table 5: CephFS > GlusterFS > HDFS > LeoFS in branch counts.
        let u = |f: Flavor| f.config().coverage.total();
        assert!(u(Flavor::CephFs) > u(Flavor::GlusterFs));
        assert!(u(Flavor::GlusterFs) > u(Flavor::Hdfs));
        assert!(u(Flavor::Hdfs) > u(Flavor::LeoFs));
    }

    #[test]
    fn scaled_grows_storage_only() {
        for f in Flavor::all() {
            let base = f.config();
            let big = FlavorConfig::scaled(f, 1_000);
            assert_eq!(big.storage_nodes, 1_000);
            assert!(big.max_storage_nodes >= 1_002);
            assert_eq!(big.mgmt_nodes, base.mgmt_nodes, "{f} mgmt fleet fixed");
            assert_eq!(big.max_mgmt_nodes, base.max_mgmt_nodes);
            assert_eq!(big.base_file_size, GIB);
            // Requesting fewer nodes than the default changes nothing.
            let small = FlavorConfig::scaled(f, 1);
            assert_eq!(small.storage_nodes, base.storage_nodes);
            assert_eq!(small.base_file_size, base.base_file_size);
        }
    }

    #[test]
    fn scaled_100k_refines_base_files_below_balancer_thresholds() {
        for f in Flavor::all() {
            let big = FlavorConfig::scaled(f, 100_000);
            assert_eq!(big.storage_nodes, 100_000);
            // 512 MiB fragments keep the deploy-time quantization
            // imbalance (≈ 1 + size / (base_fill · volume_capacity))
            // safely under the flavor's balancer threshold: a fresh
            // scaled cluster must start *balanced*.
            assert_eq!(big.base_file_size, 512 * MIB);
            let frag_ratio =
                big.base_file_size as f64 / (big.base_fill * big.volume_capacity as f64);
            assert!(
                frag_ratio < big.balance_threshold,
                "{}: deploy quantization {} >= threshold {}",
                f.name(),
                frag_ratio,
                big.balance_threshold
            );
            // Below the 100k tier the 10k preload sizing holds.
            assert_eq!(FlavorConfig::scaled(f, 10_000).base_file_size, GIB);
        }
    }

    #[test]
    fn sampled_scaled_swaps_only_the_placement_policy() {
        for f in Flavor::all() {
            let full = FlavorConfig::scaled(f, 1_000);
            let sampled = FlavorConfig::sampled_scaled(f, 1_000);
            assert_eq!(sampled.placement, full.placement.sampled());
            assert_ne!(sampled.placement, full.placement, "{f}");
            assert_eq!(sampled.storage_nodes, full.storage_nodes);
            assert_eq!(sampled.replicas, full.replicas);
            assert_eq!(sampled.base_file_size, full.base_file_size);
            assert!((sampled.balance_threshold - full.balance_threshold).abs() < 1e-12);
        }
        // Idempotent: sampling a sampled kind is a no-op.
        assert_eq!(PlacementKind::PowerOfD.sampled(), PlacementKind::PowerOfD);
        assert_eq!(PlacementKind::StrideDht.sampled(), PlacementKind::StrideDht);
    }

    #[test]
    fn placement_kinds_build() {
        for f in Flavor::all() {
            let p = f.config().placement.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn only_gluster_has_hash_cache() {
        for f in Flavor::all() {
            let ttl = f.config().hash_cache_ttl_ms;
            if f == Flavor::GlusterFs {
                assert!(ttl > 0);
            } else {
                assert_eq!(ttl, 0);
            }
        }
    }
}
