//! The request surface of the simulated DFS.
//!
//! [`DfsRequest`] mirrors what a real deployment exposes: client file
//! operations (via a FUSE-style mount) and administrative configuration
//! commands (node and volume management CLIs). Themis's Interaction Adaptor
//! translates its operation grammar into these requests.

use crate::types::{Bytes, NodeId, VolumeId};

/// A single request sent to the simulated DFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsRequest {
    /// Create a file of `size` bytes.
    Create { path: String, size: Bytes },
    /// Delete a file.
    Delete { path: String },
    /// Append `delta` bytes to a file.
    Append { path: String, delta: Bytes },
    /// Replace a file's contents with `size` new bytes.
    Overwrite { path: String, size: Bytes },
    /// Read a file.
    Open { path: String },
    /// Truncate a file to zero and write `size` new bytes.
    TruncateOverwrite { path: String, size: Bytes },
    /// Create a directory.
    Mkdir { path: String },
    /// Remove an empty directory.
    Rmdir { path: String },
    /// Rename/move a file or directory.
    Rename { from: String, to: String },
    /// Add a metadata management node.
    AddMgmtNode,
    /// Remove a management node.
    RemoveMgmtNode { node: NodeId },
    /// Add a storage node with `volumes` volumes of `capacity` bytes each.
    AddStorageNode { volumes: u32, capacity: Bytes },
    /// Remove a storage node (its data is migrated off first).
    RemoveStorageNode { node: NodeId },
    /// Attach a new volume to an existing storage node.
    AddVolume { node: NodeId, capacity: Bytes },
    /// Detach a volume (its data is migrated off first).
    RemoveVolume { volume: VolumeId },
    /// Grow a volume by `delta` bytes.
    ExpandVolume { volume: VolumeId, delta: Bytes },
    /// Shrink a volume by `delta` bytes.
    ReduceVolume { volume: VolumeId, delta: Bytes },
}

/// Coarse operation class used by bug triggers and the coverage model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// File creation.
    Create,
    /// File deletion.
    Delete,
    /// Size-changing writes (append / overwrite / truncate-overwrite).
    Resize,
    /// Reads.
    Read,
    /// Directory metadata (mkdir / rmdir).
    DirMeta,
    /// Renames.
    Rename,
    /// Management node addition.
    MgmtAdd,
    /// Management node removal.
    MgmtRemove,
    /// Storage node addition.
    StorageAdd,
    /// Storage node removal.
    StorageRemove,
    /// Volume attach.
    VolumeAdd,
    /// Volume detach.
    VolumeRemove,
    /// Volume expansion.
    VolumeExpand,
    /// Volume reduction.
    VolumeReduce,
}

impl OpClass {
    /// Whether this class belongs to the client-request input space.
    pub fn is_request(self) -> bool {
        matches!(
            self,
            OpClass::Create
                | OpClass::Delete
                | OpClass::Resize
                | OpClass::Read
                | OpClass::DirMeta
                | OpClass::Rename
        )
    }

    /// Whether this class belongs to the system-configuration input space.
    pub fn is_config(self) -> bool {
        !self.is_request()
    }

    /// Whether this class changes cluster membership or volume topology.
    pub fn is_membership(self) -> bool {
        matches!(
            self,
            OpClass::MgmtAdd
                | OpClass::MgmtRemove
                | OpClass::StorageAdd
                | OpClass::StorageRemove
                | OpClass::VolumeAdd
                | OpClass::VolumeRemove
        )
    }

    /// Stable small integer used in hashed coverage features.
    pub fn index(self) -> u64 {
        match self {
            OpClass::Create => 0,
            OpClass::Delete => 1,
            OpClass::Resize => 2,
            OpClass::Read => 3,
            OpClass::DirMeta => 4,
            OpClass::Rename => 5,
            OpClass::MgmtAdd => 6,
            OpClass::MgmtRemove => 7,
            OpClass::StorageAdd => 8,
            OpClass::StorageRemove => 9,
            OpClass::VolumeAdd => 10,
            OpClass::VolumeRemove => 11,
            OpClass::VolumeExpand => 12,
            OpClass::VolumeReduce => 13,
        }
    }
}

impl DfsRequest {
    /// The request's coarse class.
    pub fn class(&self) -> OpClass {
        match self {
            DfsRequest::Create { .. } => OpClass::Create,
            DfsRequest::Delete { .. } => OpClass::Delete,
            DfsRequest::Append { .. }
            | DfsRequest::Overwrite { .. }
            | DfsRequest::TruncateOverwrite { .. } => OpClass::Resize,
            DfsRequest::Open { .. } => OpClass::Read,
            DfsRequest::Mkdir { .. } | DfsRequest::Rmdir { .. } => OpClass::DirMeta,
            DfsRequest::Rename { .. } => OpClass::Rename,
            DfsRequest::AddMgmtNode => OpClass::MgmtAdd,
            DfsRequest::RemoveMgmtNode { .. } => OpClass::MgmtRemove,
            DfsRequest::AddStorageNode { .. } => OpClass::StorageAdd,
            DfsRequest::RemoveStorageNode { .. } => OpClass::StorageRemove,
            DfsRequest::AddVolume { .. } => OpClass::VolumeAdd,
            DfsRequest::RemoveVolume { .. } => OpClass::VolumeRemove,
            DfsRequest::ExpandVolume { .. } => OpClass::VolumeExpand,
            DfsRequest::ReduceVolume { .. } => OpClass::VolumeReduce,
        }
    }

    /// Bytes of data this request writes or moves, for the cost model.
    pub fn payload(&self) -> Bytes {
        match self {
            DfsRequest::Create { size, .. }
            | DfsRequest::Overwrite { size, .. }
            | DfsRequest::TruncateOverwrite { size, .. } => *size,
            DfsRequest::Append { delta, .. } => *delta,
            _ => 0,
        }
    }
}

/// Outcome of a successfully executed request, reported back to the client.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReqOutcome {
    /// Milliseconds of virtual time the request consumed.
    pub latency_ms: u64,
    /// Node id allocated by add-node requests.
    pub new_node: Option<NodeId>,
    /// Volume ids allocated by add-node / add-volume requests.
    pub new_volumes: Vec<VolumeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_partition_is_total() {
        let all = [
            OpClass::Create,
            OpClass::Delete,
            OpClass::Resize,
            OpClass::Read,
            OpClass::DirMeta,
            OpClass::Rename,
            OpClass::MgmtAdd,
            OpClass::MgmtRemove,
            OpClass::StorageAdd,
            OpClass::StorageRemove,
            OpClass::VolumeAdd,
            OpClass::VolumeRemove,
            OpClass::VolumeExpand,
            OpClass::VolumeReduce,
        ];
        for c in all {
            assert!(
                c.is_request() ^ c.is_config(),
                "{c:?} must be exactly one input space"
            );
        }
        // 6 request classes model the 9 file operators; 8 config classes
        // model the 8 node/volume operators of the paper's grammar.
        assert_eq!(all.iter().filter(|c| c.is_request()).count(), 6);
        assert_eq!(all.iter().filter(|c| c.is_config()).count(), 8);
    }

    #[test]
    fn class_indices_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..14u64 {
            assert!(seen.insert(i), "duplicate index");
        }
        let _ = seen;
    }

    #[test]
    fn request_classes_match() {
        assert_eq!(
            DfsRequest::Create {
                path: "/f".into(),
                size: 1
            }
            .class(),
            OpClass::Create
        );
        assert_eq!(
            DfsRequest::Append {
                path: "/f".into(),
                delta: 1
            }
            .class(),
            OpClass::Resize
        );
        assert_eq!(DfsRequest::AddMgmtNode.class(), OpClass::MgmtAdd);
        assert_eq!(
            DfsRequest::ReduceVolume {
                volume: VolumeId(0),
                delta: 1
            }
            .class(),
            OpClass::VolumeReduce
        );
    }

    #[test]
    fn payload_reflects_written_bytes() {
        assert_eq!(
            DfsRequest::Create {
                path: "/f".into(),
                size: 77
            }
            .payload(),
            77
        );
        assert_eq!(DfsRequest::Open { path: "/f".into() }.payload(), 0);
        assert_eq!(
            DfsRequest::Append {
                path: "/f".into(),
                delta: 5
            }
            .payload(),
            5
        );
    }

    #[test]
    fn membership_classes() {
        assert!(OpClass::StorageAdd.is_membership());
        assert!(OpClass::VolumeRemove.is_membership());
        assert!(!OpClass::VolumeExpand.is_membership());
        assert!(!OpClass::Create.is_membership());
    }
}
