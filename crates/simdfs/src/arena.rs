//! Arena-indexed SoA tables for the cluster's node and volume state.
//!
//! Node and volume ids are dense `u32`s handed out by monotonic counters
//! and never reused, so the raw id doubles as a slot index: [`NodeArena`]
//! keeps storage nodes in a `Vec<Option<StorageNode>>` indexed by
//! `NodeId.0` and [`VolumeDirectory`] keeps the volume→node map in a
//! `Vec<NodeId>` indexed by `VolumeId.0`. Lookups that used to pay a
//! BTreeMap descent become one bounds-checked index, and full-fleet scans
//! (placement views, totals, variance maintenance) walk contiguous
//! memory.
//!
//! [`NodeArena`] additionally maintains parallel *hot columns*
//! ([`NodeHot`]: online flag, volume count, used, capacity) — the fields
//! scoring and variance maintenance actually read — split off from the
//! cold per-node metadata (volume lists, load counters, join times).
//! `total_used`-style aggregates and `node_fill` walk the hot column
//! without touching the node structs at all. The single write path is
//! [`NodeArena::sync_hot`], called by every cluster mutation that can
//! change a node's fill or eligibility; [`crate::Cluster::audit`]
//! recomputes the columns from the node structs and fails on drift.
//!
//! Iteration order over either table is ascending id order — exactly the
//! order the former `BTreeMap`s produced — so every determinism contract
//! (canonical views, balancer planning, same-seed byte-identical reports)
//! survives the layout change bit-identically. Slot indices for ids that
//! belong to the *other* table (management ids in the storage arena) stay
//! `None`/unset; with 2–5 management nodes per cluster the holes are
//! noise.
//!
//! Id stability across churn: removing a node or volume never compacts
//! the arena — the slot empties and the id is retired forever (the
//! counters only grow). Checkpoints clone the arenas wholesale exactly as
//! they cloned the maps, so fork/restore and `mark_base`/`restore_to_base`
//! see identical semantics.

use crate::node::StorageNode;
use crate::types::{Bytes, NodeId, VolumeId};

/// Sentinel owner meaning "no such volume". Node ids are allocated by an
/// incrementing counter starting at 0, so `u32::MAX` is unreachable.
const NO_OWNER: NodeId = NodeId(u32::MAX);

/// The hot per-node columns read by placement scoring, totals, and
/// variance maintenance. One row per arena slot, kept in sync with the
/// cold node struct by [`NodeArena::sync_hot`]. Empty slots hold the
/// default row (`online: false`), so online-filtered scans skip them for
/// free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeHot {
    /// Whether the node is online (false for empty slots).
    pub online: bool,
    /// Number of attached volumes (0 for diskless nodes and empty slots).
    pub volumes: u32,
    /// Bytes stored across all volumes.
    pub used: Bytes,
    /// Total capacity across all volumes.
    pub capacity: Bytes,
}

impl NodeHot {
    /// The hot row a node struct should currently map to (the auditor
    /// recomputes rows through this and fails on drift).
    pub fn of(node: &StorageNode) -> NodeHot {
        NodeHot {
            online: node.online,
            volumes: node.volumes.len() as u32,
            used: node.used(),
            capacity: node.capacity(),
        }
    }
}

/// Dense storage-node table indexed by raw node id, with SoA hot columns.
///
/// The API mirrors the `BTreeMap<NodeId, StorageNode>` it replaced
/// (`get`/`get_mut`/`insert`/`remove`/`values`/`keys`/iteration in id
/// order), so call sites read unchanged.
#[derive(Debug, Clone, Default)]
pub struct NodeArena {
    /// Cold node state, one slot per allocated id (`None` = not a storage
    /// node: removed, or an id belonging to the management table).
    slots: Vec<Option<StorageNode>>,
    /// Parallel hot columns (same indexing as `slots`).
    hot: Vec<NodeHot>,
    /// Number of occupied slots.
    live: usize,
}

impl NodeArena {
    /// Number of storage nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the arena holds no storage nodes.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Shared access to a node.
    pub fn get(&self, id: &NodeId) -> Option<&StorageNode> {
        self.slots.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    /// Mutable access to a node. Callers that change fill or eligibility
    /// must follow up with [`NodeArena::sync_hot`] (the cluster's
    /// `refresh_node_stats` does both).
    pub fn get_mut(&mut self, id: &NodeId) -> Option<&mut StorageNode> {
        self.slots.get_mut(id.0 as usize).and_then(|s| s.as_mut())
    }

    /// Whether a node with this id exists.
    pub fn contains_key(&self, id: &NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts a node at its id's slot, growing the arena as needed.
    pub fn insert(&mut self, id: NodeId, node: StorageNode) -> Option<StorageNode> {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
            self.hot.resize(idx + 1, NodeHot::default());
        }
        self.hot[idx] = NodeHot::of(&node);
        let old = self.slots[idx].replace(node);
        if old.is_none() {
            self.live += 1;
        }
        old
    }

    /// Removes a node, emptying its slot (the id is never reused).
    pub fn remove(&mut self, id: &NodeId) -> Option<StorageNode> {
        let old = self.slots.get_mut(id.0 as usize).and_then(|s| s.take());
        if old.is_some() {
            self.live -= 1;
            self.hot[id.0 as usize] = NodeHot::default();
        }
        old
    }

    /// Recomputes the hot row for `id` from its node struct. The single
    /// write path for the hot columns; a no-op for absent ids.
    pub fn sync_hot(&mut self, id: NodeId) {
        let idx = id.0 as usize;
        if let Some(Some(node)) = self.slots.get(idx) {
            self.hot[idx] = NodeHot::of(node);
        }
    }

    /// The hot columns, indexed like the arena. Empty slots hold the
    /// default (offline) row.
    pub fn hot_rows(&self) -> &[NodeHot] {
        &self.hot
    }

    /// `(id, hot row)` for every storage node, in id order.
    pub fn hot_iter(&self) -> impl Iterator<Item = (NodeId, &NodeHot)> + '_ {
        self.slots
            .iter()
            .zip(self.hot.iter())
            .enumerate()
            .filter(|(_, (slot, _))| slot.is_some())
            .map(|(i, (_, hot))| (NodeId(i as u32), hot))
    }

    /// Nodes in id order.
    pub fn values(&self) -> impl Iterator<Item = &StorageNode> + '_ {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Mutable nodes in id order. Fill/eligibility mutations must be
    /// followed by [`NodeArena::sync_hot`].
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut StorageNode> + '_ {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Node ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &NodeId> + '_ {
        self.values().map(|n| &n.id)
    }

    /// `(&id, &node)` in id order — the shape BTreeMap iteration had.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &StorageNode)> + '_ {
        self.values().map(|n| (&n.id, n))
    }
}

impl<'a> IntoIterator for &'a NodeArena {
    type Item = (&'a NodeId, &'a StorageNode);
    type IntoIter = Box<dyn Iterator<Item = (&'a NodeId, &'a StorageNode)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl std::ops::Index<&NodeId> for NodeArena {
    type Output = StorageNode;
    fn index(&self, id: &NodeId) -> &StorageNode {
        self.get(id).expect("no such storage node")
    }
}

/// Dense volume→owner directory indexed by raw volume id.
///
/// Replaces `BTreeMap<VolumeId, NodeId>`: `get` returns `Option<&NodeId>`
/// like the map did, `keys()` yields live volume ids in ascending order
/// (by value — they are copies of the index, not references into the
/// table).
#[derive(Debug, Clone, Default)]
pub struct VolumeDirectory {
    /// Owner per volume id slot; [`NO_OWNER`] marks dead/unallocated ids.
    owner: Vec<NodeId>,
    /// Number of live volumes.
    live: usize,
}

impl VolumeDirectory {
    /// Number of live volumes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no volumes are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The owner of `vol`, if the volume is live.
    pub fn get(&self, vol: &VolumeId) -> Option<&NodeId> {
        self.owner
            .get(vol.0 as usize)
            .filter(|&&owner| owner != NO_OWNER)
    }

    /// Whether `vol` is live.
    pub fn contains_key(&self, vol: &VolumeId) -> bool {
        self.get(vol).is_some()
    }

    /// Records `vol` as owned by `node`.
    pub fn insert(&mut self, vol: VolumeId, node: NodeId) -> Option<NodeId> {
        debug_assert_ne!(node, NO_OWNER, "owner id collides with the sentinel");
        let idx = vol.0 as usize;
        if idx >= self.owner.len() {
            self.owner.resize(idx + 1, NO_OWNER);
        }
        let old = std::mem::replace(&mut self.owner[idx], node);
        if old == NO_OWNER {
            self.live += 1;
            None
        } else {
            Some(old)
        }
    }

    /// Drops `vol` from the directory, returning its former owner.
    pub fn remove(&mut self, vol: &VolumeId) -> Option<NodeId> {
        let slot = self.owner.get_mut(vol.0 as usize)?;
        let old = std::mem::replace(slot, NO_OWNER);
        if old == NO_OWNER {
            None
        } else {
            self.live -= 1;
            Some(old)
        }
    }

    /// Live volume ids in ascending order, by value.
    pub fn keys(&self) -> impl Iterator<Item = VolumeId> + '_ {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, &owner)| owner != NO_OWNER)
            .map(|(i, _)| VolumeId(i as u32))
    }
}

impl std::ops::Index<&VolumeId> for VolumeDirectory {
    type Output = NodeId;
    fn index(&self, vol: &VolumeId) -> &NodeId {
        self.get(vol).expect("no such volume")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::NodeLoadAccount;
    use crate::node::Volume;
    use crate::types::SimTime;

    fn node(id: u32, online: bool, vols: &[(u32, Bytes, Bytes)]) -> StorageNode {
        StorageNode {
            id: NodeId(id),
            online,
            volumes: vols
                .iter()
                .map(|&(v, capacity, used)| Volume {
                    id: VolumeId(v),
                    capacity,
                    used,
                })
                .collect(),
            load: NodeLoadAccount::default(),
            joined: SimTime::ZERO,
        }
    }

    #[test]
    fn arena_iterates_in_id_order_with_holes() {
        let mut a = NodeArena::default();
        a.insert(NodeId(5), node(5, true, &[(0, 100, 10)]));
        a.insert(NodeId(1), node(1, true, &[(1, 100, 20)]));
        a.insert(NodeId(3), node(3, false, &[]));
        assert_eq!(a.len(), 3);
        let ids: Vec<u32> = a.keys().map(|n| n.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        let pairs: Vec<u32> = a
            .iter()
            .map(|(id, n)| {
                assert_eq!(*id, n.id);
                id.0
            })
            .collect();
        assert_eq!(pairs, vec![1, 3, 5]);
        assert!(a.contains_key(&NodeId(3)));
        assert!(!a.contains_key(&NodeId(2)));
        assert_eq!(a[&NodeId(5)].id, NodeId(5));
    }

    #[test]
    fn arena_remove_retires_the_slot() {
        let mut a = NodeArena::default();
        a.insert(NodeId(0), node(0, true, &[(0, 100, 0)]));
        a.insert(NodeId(1), node(1, true, &[(1, 100, 0)]));
        assert!(a.remove(&NodeId(0)).is_some());
        assert!(a.remove(&NodeId(0)).is_none(), "double remove is a no-op");
        assert_eq!(a.len(), 1);
        assert_eq!(a.hot_rows()[0], NodeHot::default());
        let ids: Vec<u32> = a.keys().map(|n| n.0).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn hot_rows_track_sync() {
        let mut a = NodeArena::default();
        a.insert(NodeId(2), node(2, true, &[(0, 100, 10), (1, 50, 5)]));
        assert_eq!(
            a.hot_rows()[2],
            NodeHot {
                online: true,
                volumes: 2,
                used: 15,
                capacity: 150
            }
        );
        a.get_mut(&NodeId(2)).unwrap().volumes[0].used = 40;
        assert_eq!(a.hot_rows()[2].used, 15, "stale until synced");
        a.sync_hot(NodeId(2));
        assert_eq!(a.hot_rows()[2].used, 45);
        let hot: Vec<(u32, Bytes)> = a.hot_iter().map(|(id, h)| (id.0, h.used)).collect();
        assert_eq!(hot, vec![(2, 45)]);
    }

    #[test]
    fn directory_tracks_live_volumes() {
        let mut d = VolumeDirectory::default();
        assert!(d.is_empty());
        d.insert(VolumeId(4), NodeId(1));
        d.insert(VolumeId(0), NodeId(2));
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(&VolumeId(4)), Some(&NodeId(1)));
        assert_eq!(d[&VolumeId(0)], NodeId(2));
        assert_eq!(d.get(&VolumeId(2)), None);
        let keys: Vec<u32> = d.keys().map(|v| v.0).collect();
        assert_eq!(keys, vec![0, 4]);
        assert_eq!(d.remove(&VolumeId(4)), Some(NodeId(1)));
        assert_eq!(d.remove(&VolumeId(4)), None);
        assert_eq!(d.len(), 1);
        assert!(!d.contains_key(&VolumeId(4)));
    }
}
