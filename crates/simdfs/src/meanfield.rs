//! Mean-field cross-check for large-cluster load trajectories.
//!
//! Mean-field analyses of replication in large storage systems (Sun et
//! al., see PAPERS.md) show that as the cluster grows, the *mean* load
//! trajectory converges to a deterministic analytic limit: under
//! homogeneous capacities, the expected mean utilization after ingesting
//! `L` logical bytes at replication factor `r` onto base load `B` over
//! total capacity `C` is simply `(B + L·r)/C`, independent of placement
//! details. Per-node fluctuations shrink as O(1/√n), so at 1k–10k nodes
//! the simulated mean must track the analytic curve tightly.
//!
//! [`MeanFieldModel`] implements that limit as an *independent* detector
//! signal: it is fed only the workload's logical byte flow (never cluster
//! state), and campaigns compare its prediction against the observed mean
//! utilization from the streaming tracker. A persistent gap means replicas
//! were lost, over-created, or mis-accounted — exactly the class of
//! failures the load variance model hunts, caught from the opposite
//! direction (mean drift instead of spread).

use crate::types::Bytes;

/// Analytic mean-load predictor, driven by logical workload bytes only.
#[derive(Debug, Clone)]
pub struct MeanFieldModel {
    /// Physical bytes resident before the workload started (preload).
    base_used: Bytes,
    /// Total capacity of the storage fleet at model start.
    total_capacity: Bytes,
    /// Replication factor applied to logical bytes.
    replicas: u32,
    /// Net logical bytes the workload believes are live (creates + grows
    /// minus deletes + shrinks). Signed: a workload may delete preloaded
    /// state it did not create.
    logical_live: i128,
    /// Largest |observed − predicted| mean utilization seen so far.
    max_abs_deviation: f64,
    /// Number of observations compared.
    samples: u64,
}

impl MeanFieldModel {
    /// Builds the model from the cluster's starting footprint.
    pub fn new(base_used: Bytes, total_capacity: Bytes, replicas: u32) -> Self {
        Self {
            base_used,
            total_capacity,
            replicas,
            logical_live: 0,
            max_abs_deviation: 0.0,
            samples: 0,
        }
    }

    /// Records `bytes` of new logical data entering the system.
    pub fn ingest(&mut self, bytes: Bytes) {
        self.logical_live += bytes as i128;
    }

    /// Records `bytes` of logical data leaving the system.
    pub fn remove(&mut self, bytes: Bytes) {
        self.logical_live -= bytes as i128;
    }

    /// The analytic mean utilization `(B + L·r)/C` as a fraction.
    pub fn predicted_mean(&self) -> f64 {
        if self.total_capacity == 0 {
            return 0.0;
        }
        let physical = self.base_used as i128 + self.logical_live * self.replicas as i128;
        (physical.max(0) as f64) / self.total_capacity as f64
    }

    /// Compares an observed mean utilization against the prediction,
    /// returning the signed deviation `observed − predicted` and folding
    /// its magnitude into [`MeanFieldModel::max_deviation`].
    pub fn observe(&mut self, observed_mean: f64) -> f64 {
        let dev = observed_mean - self.predicted_mean();
        if dev.abs() > self.max_abs_deviation {
            self.max_abs_deviation = dev.abs();
        }
        self.samples += 1;
        dev
    }

    /// Largest |deviation| across all observations.
    pub fn max_deviation(&self) -> f64 {
        self.max_abs_deviation
    }

    /// Number of observations folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GIB;

    #[test]
    fn prediction_follows_logical_flow() {
        let mut m = MeanFieldModel::new(10 * GIB, 100 * GIB, 3);
        assert!((m.predicted_mean() - 0.10).abs() < 1e-12);
        m.ingest(10 * GIB);
        assert!((m.predicted_mean() - 0.40).abs() < 1e-12);
        m.remove(5 * GIB);
        assert!((m.predicted_mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn net_negative_flow_clamps_at_zero() {
        let mut m = MeanFieldModel::new(GIB, 100 * GIB, 2);
        m.remove(10 * GIB);
        assert_eq!(m.predicted_mean(), 0.0);
    }

    #[test]
    fn observe_tracks_worst_deviation() {
        let mut m = MeanFieldModel::new(0, 100 * GIB, 1);
        m.ingest(50 * GIB);
        let d1 = m.observe(0.5);
        assert!(d1.abs() < 1e-12);
        let d2 = m.observe(0.6);
        assert!((d2 - 0.1).abs() < 1e-12);
        let _ = m.observe(0.45);
        assert!((m.max_deviation() - 0.1).abs() < 1e-12);
        assert_eq!(m.samples(), 3);
    }

    #[test]
    fn zero_capacity_predicts_zero() {
        let mut m = MeanFieldModel::new(0, 0, 3);
        m.ingest(GIB);
        assert_eq!(m.predicted_mean(), 0.0);
    }
}
