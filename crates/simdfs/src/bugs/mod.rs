//! Latent imbalance failures: specifications, trigger engine and effects.
//!
//! Bugs are *armed* when the simulator is constructed (by version: the
//! "latest" versions carry the paper's 10 new bugs, the "historical"
//! versions carry the 53 studied failures). Each bug has a [`Trigger`]
//! predicate; once it fires, the bug's [`Effect`] corrupts the simulated
//! DFS's load-balancing behaviour persistently — the system cannot return
//! to a balanced state on its own, which is exactly the paper's definition
//! of an imbalance failure (Section 2.2).

pub mod catalog;
pub mod trigger;

pub use trigger::{Metric, SimEvent, Trigger, TriggerState};

use crate::flavor::Flavor;
use crate::types::{NodeId, SimTime};

/// Failure type taxonomy from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Uneven data distribution across storage nodes ("hotspots").
    ImbalancedStorage,
    /// Uneven CPU usage across management nodes.
    ImbalancedCpu,
    /// Uneven request/network handling across management nodes.
    ImbalancedNetwork,
    /// Node crash that the cluster cannot recover from.
    Crash,
    /// Data loss caused by the balancing mechanism.
    DataLoss,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::ImbalancedStorage => write!(f, "Imbalanced Storage"),
            FailureKind::ImbalancedCpu => write!(f, "Imbalanced CPU"),
            FailureKind::ImbalancedNetwork => write!(f, "Imbalanced Network"),
            FailureKind::Crash => write!(f, "Crash"),
            FailureKind::DataLoss => write!(f, "Data Loss"),
        }
    }
}

/// Environment gate for failures this testbed cannot reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Reproducible on this (Linux-like) testbed.
    None,
    /// Occurs only on Windows (CephFS #41935, HDFS #4261).
    WindowsOnly,
    /// Requires specific hardware faults (HDD/SSD mix, encryption units).
    HardwareFault,
}

/// How a triggered bug corrupts the simulated DFS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// New data placement funnels `pct`% of writes onto the victim node,
    /// and the same wrong calculation keeps the migration planner from
    /// draining it — the node becomes a growing hotspot.
    HotspotPlacement {
        /// Percentage of new placements redirected.
        pct: u8,
    },
    /// The migration planner silently drops moves whose source is the most
    /// loaded node, so rebalancing never drains the hotspot.
    SkipMigrationFromHot,
    /// Migration deletes the moved replica instead of storing it at the
    /// destination (the GlusterFS linkfile-unlink data-loss path).
    DeleteMigratedData {
        /// Percentage of moved bytes lost per migration.
        pct: u8,
    },
    /// The victim management node's CPU is spun by a hot loop.
    CpuSpin,
    /// All client requests are routed to the victim management node.
    NetFunnel,
    /// `count` storage nodes crash and stay down.
    CrashNodes {
        /// Number of nodes crashed.
        count: u8,
    },
    /// The rebalance API reports success without moving any data.
    MisreportRebalance,
    /// No behavioural effect; used by trigger-calibration harnesses to
    /// measure reachability without corrupting the system under test.
    Inert,
}

/// Static description of one latent failure.
#[derive(Debug, Clone)]
pub struct BugSpec {
    /// Tracker-style identifier (e.g. `Bug#S24387`).
    pub id: &'static str,
    /// The DFS the bug lives in.
    pub platform: Flavor,
    /// Failure type.
    pub kind: FailureKind,
    /// One-line root-cause description.
    pub title: &'static str,
    /// Firing condition.
    pub trigger: Trigger,
    /// Behavioural corruption once fired.
    pub effect: Effect,
    /// Environment gate.
    pub gate: Gate,
    /// Whether this is one of the 10 previously unknown failures (Table 2)
    /// as opposed to the 53 historical study failures (Table 1).
    pub is_new: bool,
}

impl BugSpec {
    /// Whether the bug can fire on this testbed at all.
    pub fn reproducible(&self) -> bool {
        self.gate == Gate::None
    }
}

/// Runtime state of one armed bug.
#[derive(Debug, Clone)]
pub struct BugRuntime {
    /// The spec.
    pub spec: BugSpec,
    /// Live trigger state (cloned from the spec at arm time).
    trigger: Trigger,
    /// When the bug fired, if it has.
    pub triggered_at: Option<SimTime>,
    /// Node chosen as the effect's victim at fire time.
    pub victim: Option<NodeId>,
}

/// The set of armed bugs for one simulator instance, fed every event.
#[derive(Debug, Clone, Default)]
pub struct BugEngine {
    bugs: Vec<BugRuntime>,
}

/// A saved runtime state of a [`BugEngine`]: per-bug trigger progress plus
/// fire bookkeeping, positionally matched to the engine's roster. Created
/// by [`BugEngine::checkpoint`], consumed by [`BugEngine::restore`].
#[derive(Debug, Clone)]
pub struct BugEngineCheckpoint {
    states: Vec<(TriggerState, Option<SimTime>, Option<NodeId>)>,
}

impl BugEngine {
    /// Arms the given bug specs.
    pub fn new(specs: Vec<BugSpec>) -> Self {
        let bugs = specs
            .into_iter()
            .map(|spec| BugRuntime {
                trigger: spec.trigger.clone(),
                spec,
                triggered_at: None,
                victim: None,
            })
            .collect();
        BugEngine { bugs }
    }

    /// Feeds an event to every armed, not-yet-fired, reproducible bug.
    ///
    /// Returns the indices of bugs that fired on this event; the caller
    /// (the simulator) then assigns victims via [`BugEngine::set_victim`].
    pub fn observe(&mut self, now: SimTime, ev: &SimEvent) -> Vec<usize> {
        let mut fired = Vec::new();
        for (i, bug) in self.bugs.iter_mut().enumerate() {
            if bug.triggered_at.is_none() && bug.spec.reproducible() && bug.trigger.observe(now, ev)
            {
                bug.triggered_at = Some(now);
                fired.push(i);
            }
        }
        fired
    }

    /// Assigns the victim node for a fired bug.
    pub fn set_victim(&mut self, idx: usize, victim: NodeId) {
        self.bugs[idx].victim = Some(victim);
    }

    /// All armed bugs.
    pub fn bugs(&self) -> &[BugRuntime] {
        &self.bugs
    }

    /// Effects of all fired bugs, with their victims.
    pub fn active_effects(&self) -> impl Iterator<Item = (&BugSpec, Option<NodeId>)> {
        self.bugs
            .iter()
            .filter(|b| b.triggered_at.is_some())
            .map(|b| (&b.spec, b.victim))
    }

    /// Whether any fired bug has the given effect discriminant active.
    pub fn any_active(&self, pred: impl Fn(&Effect) -> bool) -> bool {
        self.active_effects().any(|(s, _)| pred(&s.effect))
    }

    /// Ids of fired bugs (the simulator's ground-truth oracle).
    pub fn triggered_ids(&self) -> Vec<&'static str> {
        self.bugs
            .iter()
            .filter(|b| b.triggered_at.is_some())
            .map(|b| b.spec.id)
            .collect()
    }

    /// Re-arms every bug: triggers and fire state reset (used when the
    /// campaign resets the DFS to its initial state).
    pub fn rearm(&mut self) {
        for bug in &mut self.bugs {
            bug.trigger = bug.spec.trigger.clone();
            bug.triggered_at = None;
            bug.victim = None;
        }
    }

    /// Captures the runtime state of every armed bug: live trigger
    /// progress, fire time and victim. This is what a fork mark stores —
    /// the immutable [`BugSpec`]s stay with the engine, so a checkpoint
    /// costs O(trigger progress), not a deep clone of every pattern.
    pub fn checkpoint(&self) -> BugEngineCheckpoint {
        BugEngineCheckpoint {
            states: self
                .bugs
                .iter()
                .map(|b| (b.trigger.save_state(), b.triggered_at, b.victim))
                .collect(),
        }
    }

    /// Rewinds every armed bug to a checkpoint taken from this engine.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from an engine with a different bug
    /// roster (the fork machinery only ever pairs a sim with its own
    /// marks).
    pub fn restore(&mut self, ck: &BugEngineCheckpoint) {
        assert_eq!(
            self.bugs.len(),
            ck.states.len(),
            "bug checkpoint is from a different roster"
        );
        for (bug, (state, triggered_at, victim)) in self.bugs.iter_mut().zip(&ck.states) {
            bug.trigger.load_state(state);
            bug.triggered_at = *triggered_at;
            bug.victim = *victim;
        }
    }

    /// Number of armed bugs.
    pub fn len(&self) -> usize {
        self.bugs.len()
    }

    /// Whether no bugs are armed.
    pub fn is_empty(&self) -> bool {
        self.bugs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::OpClass;

    fn spec(id: &'static str, trigger: Trigger, gate: Gate) -> BugSpec {
        BugSpec {
            id,
            platform: Flavor::Hdfs,
            kind: FailureKind::ImbalancedStorage,
            title: "test bug",
            trigger,
            effect: Effect::SkipMigrationFromHot,
            gate,
            is_new: true,
        }
    }

    fn op_event() -> SimEvent {
        SimEvent::Op {
            class: OpClass::Create,
            ok: true,
            size: 0,
        }
    }

    #[test]
    fn engine_fires_and_reports_oracle() {
        let mut eng = BugEngine::new(vec![spec(
            "B1",
            Trigger::subseq(vec![OpClass::Create], 4),
            Gate::None,
        )]);
        assert!(eng.triggered_ids().is_empty());
        let fired = eng.observe(SimTime(5), &op_event());
        assert_eq!(fired, vec![0]);
        eng.set_victim(0, NodeId(3));
        assert_eq!(eng.triggered_ids(), vec!["B1"]);
        let active: Vec<_> = eng.active_effects().collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].1, Some(NodeId(3)));
    }

    #[test]
    fn fired_bugs_do_not_refire() {
        let mut eng = BugEngine::new(vec![spec(
            "B1",
            Trigger::subseq(vec![OpClass::Create], 4),
            Gate::None,
        )]);
        assert_eq!(eng.observe(SimTime(1), &op_event()), vec![0]);
        assert!(eng.observe(SimTime(2), &op_event()).is_empty());
    }

    #[test]
    fn checkpoint_restore_rewinds_trigger_progress_and_fire_state() {
        // Two-step pattern: one Create leaves the trigger half-armed.
        let mut eng = BugEngine::new(vec![spec(
            "B1",
            Trigger::subseq(vec![OpClass::Create, OpClass::Create], 4),
            Gate::None,
        )]);
        let fresh = eng.checkpoint();
        assert!(eng.observe(SimTime(1), &op_event()).is_empty());
        let half = eng.checkpoint();

        // Fire, then rewind to the half-armed point: one more Create must
        // complete the pattern again.
        assert_eq!(eng.observe(SimTime(2), &op_event()), vec![0]);
        eng.set_victim(0, NodeId(7));
        eng.restore(&half);
        assert!(eng.triggered_ids().is_empty());
        assert_eq!(eng.bugs()[0].victim, None);
        assert_eq!(eng.observe(SimTime(3), &op_event()), vec![0]);

        // Rewind to the pristine point: the full pattern is needed again.
        eng.restore(&fresh);
        assert!(eng.observe(SimTime(4), &op_event()).is_empty());
        assert_eq!(eng.observe(SimTime(5), &op_event()), vec![0]);
    }

    #[test]
    #[should_panic(expected = "different roster")]
    fn checkpoint_from_another_roster_is_rejected() {
        let eng = BugEngine::new(vec![spec(
            "B1",
            Trigger::subseq(vec![OpClass::Create], 4),
            Gate::None,
        )]);
        let ck = eng.checkpoint();
        let mut other = BugEngine::new(vec![]);
        other.restore(&ck);
    }

    #[test]
    fn gated_bugs_never_fire() {
        let mut eng = BugEngine::new(vec![spec(
            "W1",
            Trigger::subseq(vec![OpClass::Create], 4),
            Gate::WindowsOnly,
        )]);
        for _ in 0..10 {
            assert!(eng.observe(SimTime(1), &op_event()).is_empty());
        }
        assert!(eng.triggered_ids().is_empty());
    }

    #[test]
    fn rearm_resets_everything() {
        let mut eng = BugEngine::new(vec![spec(
            "B1",
            Trigger::subseq(vec![OpClass::Create], 4),
            Gate::None,
        )]);
        eng.observe(SimTime(1), &op_event());
        assert_eq!(eng.triggered_ids().len(), 1);
        eng.rearm();
        assert!(eng.triggered_ids().is_empty());
        // Fires again after rearm.
        assert_eq!(eng.observe(SimTime(2), &op_event()), vec![0]);
    }

    #[test]
    fn any_active_matches_effect() {
        let mut eng = BugEngine::new(vec![spec(
            "B1",
            Trigger::subseq(vec![OpClass::Create], 4),
            Gate::None,
        )]);
        assert!(!eng.any_active(|e| matches!(e, Effect::SkipMigrationFromHot)));
        eng.observe(SimTime(1), &op_event());
        assert!(eng.any_active(|e| matches!(e, Effect::SkipMigrationFromHot)));
        assert!(!eng.any_active(|e| matches!(e, Effect::CpuSpin)));
    }

    #[test]
    fn failure_kind_display() {
        assert_eq!(FailureKind::DataLoss.to_string(), "Data Loss");
        assert_eq!(FailureKind::ImbalancedCpu.to_string(), "Imbalanced CPU");
    }
}
