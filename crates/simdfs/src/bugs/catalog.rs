//! The bug catalog: 10 previously unknown failures (Table 2) and the 53
//! historical failures from the motivation study (Table 1 / Table 4).
//!
//! New bugs are wired to mechanistic trigger conditions in the simulated
//! balancer code paths. Historical bugs are organized in tiers that encode
//! the study's findings: 7 request-only (13%), 2 configuration-only (4%),
//! 44 requiring both input spaces (83%); 35 triggerable in ≤5 steps (66%),
//! 18 needing 6–8 steps (34%); 5 gated on Windows/hardware environments
//! this testbed (like the paper's) cannot reproduce.

use super::trigger::{Metric, Trigger};
use super::{BugSpec, Effect, FailureKind, Gate};
use crate::flavor::Flavor;
use crate::request::OpClass;

const MIB: u64 = 1024 * 1024;

/// The dense mixed-configuration window that gates the deep failures: many
/// storage-node *and* volume commands inside one short span of operations.
/// Load variance-guided fuzzing concentrates exactly this kind of pressure
/// (its seed pool is enriched in variance-raising configuration classes),
/// uniform random generation reaches it only as a far statistical tail,
/// and phase-separated or fix-one-space methods cannot produce it at all.
fn config_pressure_subs() -> Vec<Trigger> {
    vec![
        Trigger::op_count_timed(
            vec![OpClass::StorageAdd, OpClass::StorageRemove],
            6,
            25,
            120_000,
        ),
        Trigger::op_count_timed(
            vec![
                OpClass::VolumeAdd,
                OpClass::VolumeRemove,
                OpClass::VolumeExpand,
                OpClass::VolumeReduce,
            ],
            8,
            25,
            120_000,
        ),
    ]
}

/// The 10 previously unknown imbalance failures of Table 2.
pub fn new_bugs(platform: Flavor) -> Vec<BugSpec> {
    all_new_bugs()
        .into_iter()
        .filter(|b| b.platform == platform)
        .collect()
}

/// All 10 new bugs across the four flavors.
pub fn all_new_bugs() -> Vec<BugSpec> {
    vec![
        // #1 GlusterFS — linkfile deletion in dht.rebalancer (case study).
        BugSpec {
            id: "Bug#S24387",
            platform: Flavor::GlusterFs,
            kind: FailureKind::ImbalancedStorage,
            title: "load imbalance due to mistakenly removing plenty of file data in \
                    dht.rebalancer, causing serious data loss in GlusterFS",
            trigger: Trigger::within_timed(
                {
                    let mut subs = vec![
                        Trigger::CacheRemigration,
                        Trigger::op_count(vec![OpClass::Rename], 2, 80),
                    ];
                    subs.extend(config_pressure_subs());
                    subs
                },
                80,
                240_000,
            ),
            effect: Effect::DeleteMigratedData { pct: 60 },
            gate: Gate::None,
            is_new: true,
        },
        // #2 GlusterFS — mishandled file ops with large size differences.
        BugSpec {
            id: "Bug#S24389",
            platform: Flavor::GlusterFs,
            kind: FailureKind::ImbalancedStorage,
            title: "imbalanced storage distribution after mistakenly handling plenty of \
                    file operations with large size differences in gf.handler",
            trigger: Trigger::within(
                vec![
                    Trigger::size_spread(12, 48.0),
                    Trigger::rebalance_burst(1, 3_600_000),
                ],
                400,
            ),
            effect: Effect::SkipMigrationFromHot,
            gate: Gate::None,
            is_new: true,
        },
        // #3 GlusterFS — crash on frequent rebalance with null hashID.
        BugSpec {
            id: "Bug#S25081",
            platform: Flavor::GlusterFs,
            kind: FailureKind::Crash,
            title: "some nodes in the network crash down after frequently executing load \
                    rebalance commands due to a null-pointer hashID",
            trigger: Trigger::within(
                vec![
                    Trigger::rebalance_burst(4, 1_500_000),
                    Trigger::op_count(vec![OpClass::StorageAdd, OpClass::StorageRemove], 2, 60),
                    Trigger::size_spread(6, 16.0),
                ],
                250,
            ),
            effect: Effect::CrashNodes { count: 2 },
            gate: Gate::None,
            is_new: true,
        },
        // #4 GlusterFS — wrong assignment in gf_self_healing.
        BugSpec {
            id: "Bug#S25088",
            platform: Flavor::GlusterFs,
            kind: FailureKind::ImbalancedCpu,
            title: "imbalanced computation load caused by wrong assignment in \
                    gf_self_healing after nodes change and surge in client requests",
            trigger: Trigger::within_timed(
                {
                    let mut subs = vec![
                        Trigger::subseq(vec![OpClass::StorageRemove, OpClass::StorageAdd], 8),
                        Trigger::size_spread(8, 24.0),
                    ];
                    subs.extend(config_pressure_subs());
                    subs
                },
                80,
                240_000,
            ),
            effect: Effect::CpuSpin,
            gate: Gate::None,
            is_new: true,
        },
        // #5 LeoFS — wrong rebalance_list read.
        BugSpec {
            id: "Bug#S231116",
            platform: Flavor::LeoFs,
            kind: FailureKind::ImbalancedStorage,
            title: "storage distributes unevenly due to wrong rebalance_list read in \
                    leofs.cluster after constant file resizing and volume changing",
            trigger: Trigger::within(
                vec![
                    Trigger::op_count(vec![OpClass::Resize], 10, 60),
                    Trigger::op_count(
                        vec![
                            OpClass::VolumeAdd,
                            OpClass::VolumeRemove,
                            OpClass::VolumeExpand,
                            OpClass::VolumeReduce,
                        ],
                        2,
                        60,
                    ),
                ],
                300,
            ),
            effect: Effect::SkipMigrationFromHot,
            gate: Gate::None,
            is_new: true,
        },
        // #6 LeoFS — incorrect data sync in leofs.migration.
        BugSpec {
            id: "Bug#S231117",
            platform: Flavor::LeoFs,
            kind: FailureKind::ImbalancedStorage,
            title: "some nodes become 'hotspots' caused by incorrect data sync in \
                    leofs.migration after nodes enter and exit frequently",
            trigger: Trigger::within_timed(
                {
                    let mut subs = vec![
                        Trigger::membership_churn(6, 1_200_000),
                        Trigger::op_count(vec![OpClass::Create], 3, 60),
                    ];
                    subs.extend(config_pressure_subs());
                    subs
                },
                80,
                240_000,
            ),
            effect: Effect::HotspotPlacement { pct: 70 },
            gate: Gate::None,
            is_new: true,
        },
        // #7 LeoFS — wrong rebalance measuring between two LeoGateways.
        BugSpec {
            id: "Bug#S231137",
            platform: Flavor::LeoFs,
            kind: FailureKind::ImbalancedNetwork,
            title: "requests distributed imbalanced due to wrong rebalance measuring \
                    between two LeoGateways when two nodes happen to exit",
            trigger: Trigger::within_timed(
                {
                    let mut subs = vec![
                        Trigger::subseq(vec![OpClass::MgmtRemove, OpClass::MgmtRemove], 6),
                        Trigger::size_spread(8, 24.0),
                    ];
                    subs.extend(config_pressure_subs());
                    subs
                },
                80,
                240_000,
            ),
            effect: Effect::NetFunnel,
            gate: Gate::None,
            is_new: true,
        },
        // #8 CephFS — balancing IO hangs in replicas.
        BugSpec {
            id: "Bug#63890",
            platform: Flavor::CephFs,
            kind: FailureKind::ImbalancedStorage,
            title: "imbalanced storage where some storage devices are full while others \
                    only occupy 65% caused by balancing IO hangs in replicas",
            trigger: Trigger::within_timed(
                {
                    let mut subs = vec![
                        Trigger::size_spread(10, 32.0),
                        Trigger::op_count(vec![OpClass::Create, OpClass::Resize], 10, 45),
                    ];
                    subs.extend(config_pressure_subs());
                    subs
                },
                80,
                240_000,
            ),
            effect: Effect::MisreportRebalance,
            gate: Gate::None,
            is_new: true,
        },
        // #9 HDFS — Inode conflicts in balancing.
        BugSpec {
            id: "Bug#20240111",
            platform: Flavor::Hdfs,
            kind: FailureKind::ImbalancedStorage,
            title: "some disks become 'hotspots' due to Inode conflicts in balancing \
                    when executing many file operations within nodes scaling",
            trigger: Trigger::within(
                vec![
                    Trigger::op_count(vec![OpClass::Create], 8, 50),
                    Trigger::op_count(vec![OpClass::DirMeta], 3, 60),
                    Trigger::rebalance_burst(2, 2_400_000),
                ],
                300,
            ),
            effect: Effect::SkipMigrationFromHot,
            gate: Gate::None,
            is_new: true,
        },
        // #10 HDFS — NameNode traffic jams in checkpointSize.
        BugSpec {
            id: "Bug#20240126",
            platform: Flavor::Hdfs,
            kind: FailureKind::ImbalancedNetwork,
            title: "NameNodes traffic jams due to blocks in newly generated files in \
                    checkpointSize when some storage replicas went offline",
            trigger: Trigger::within_timed(
                {
                    let mut subs = vec![
                        Trigger::subseq(
                            vec![OpClass::StorageRemove, OpClass::Create, OpClass::Create],
                            6,
                        ),
                        Trigger::op_count(vec![OpClass::Rename], 2, 60),
                    ];
                    subs.extend(config_pressure_subs());
                    subs
                },
                80,
                240_000,
            ),
            effect: Effect::NetFunnel,
            gate: Gate::None,
            is_new: true,
        },
    ]
}

/// Shallow-both trigger profiles. Each profile differs in which strategies
/// can plausibly reach it (emergently — via input-space and window shape).
#[derive(Debug, Clone, Copy)]
enum ShallowProfile {
    /// Generic request side + membership churn, wide windows.
    EasyReqChurnWide,
    /// Generic request side + membership churn, tight windows.
    EasyReqChurnTight,
    /// Specific request pattern + self-triggerable rebalance side, wide.
    HardReqRebalanceWide,
    /// Specific request pattern + churn, tight windows.
    HardReqChurnTight,
    /// Variance-coupled: needs accumulated imbalance episodes.
    VarianceCoupled,
}

fn shallow_trigger(profile: ShallowProfile, variant: u64) -> Trigger {
    // Rotate concrete classes by variant for diversity.
    let easy_req = match variant % 3 {
        0 => Trigger::op_count(vec![OpClass::Create], 6, 250),
        1 => Trigger::op_count(vec![OpClass::Create, OpClass::Resize], 10, 250),
        _ => Trigger::op_count(vec![OpClass::Resize], 8, 250),
    };
    let hard_req = match variant % 4 {
        0 => Trigger::op_count(vec![OpClass::Rename], 3, 120),
        1 => Trigger::size_spread(8, 32.0),
        2 => Trigger::op_count(vec![OpClass::DirMeta], 6, 120),
        _ => Trigger::op_count(vec![OpClass::Delete], 5, 120),
    };
    let churn_wide = Trigger::membership_churn(2, 3_600_000);
    let churn_tight = Trigger::membership_churn(3, 900_000);
    let rebalance = Trigger::rebalance_burst(2, 2_400_000);
    match profile {
        ShallowProfile::EasyReqChurnWide => Trigger::within(vec![easy_req, churn_wide], 500),
        ShallowProfile::EasyReqChurnTight => Trigger::within(
            vec![
                match variant % 3 {
                    0 => Trigger::op_count(vec![OpClass::Create], 5, 40),
                    1 => Trigger::op_count(vec![OpClass::Create, OpClass::Resize], 9, 40),
                    _ => Trigger::op_count(vec![OpClass::Resize], 7, 40),
                },
                churn_tight,
            ],
            150,
        ),
        ShallowProfile::HardReqRebalanceWide => Trigger::within(vec![hard_req, rebalance], 500),
        ShallowProfile::HardReqChurnTight => Trigger::within(
            vec![
                match variant % 4 {
                    0 => Trigger::op_count(vec![OpClass::Rename], 3, 30),
                    1 => Trigger::size_spread(8, 32.0),
                    2 => Trigger::op_count(vec![OpClass::DirMeta], 4, 30),
                    _ => Trigger::op_count(vec![OpClass::Delete], 4, 30),
                },
                churn_tight,
            ],
            150,
        ),
        ShallowProfile::VarianceCoupled => Trigger::within(
            vec![
                easy_req,
                Trigger::membership_churn(2, 2_400_000),
                Trigger::variance_episodes(Metric::Storage, 1.15 + (variant % 3) as f64 * 0.04, 2),
            ],
            400,
        ),
    }
}

/// Deep-both trigger: a 6–8 class subsequence over both input spaces in a
/// tight window, plus accumulated variance episodes (Findings 5 and 6).
fn deep_trigger(variant: u64) -> Trigger {
    let patterns: [&[OpClass]; 4] = [
        &[
            OpClass::Create,
            OpClass::VolumeAdd,
            OpClass::DirMeta,
            OpClass::Create,
            OpClass::Delete,
            OpClass::StorageRemove,
        ],
        &[
            OpClass::Create,
            OpClass::Resize,
            OpClass::VolumeExpand,
            OpClass::Rename,
            OpClass::StorageAdd,
            OpClass::Delete,
            OpClass::Resize,
        ],
        &[
            OpClass::DirMeta,
            OpClass::Create,
            OpClass::VolumeReduce,
            OpClass::Create,
            OpClass::Read,
            OpClass::StorageRemove,
            OpClass::Create,
            OpClass::Delete,
        ],
        &[
            OpClass::Create,
            OpClass::StorageAdd,
            OpClass::Resize,
            OpClass::VolumeRemove,
            OpClass::Create,
            OpClass::Rename,
        ],
    ];
    let pat = patterns[(variant % 4) as usize].to_vec();
    let mut subs = vec![
        Trigger::subseq(pat, 10),
        Trigger::variance_episodes(Metric::Storage, 1.2 + (variant % 2) as f64 * 0.05, 2),
    ];
    subs.extend(config_pressure_subs());
    Trigger::within(subs, 100)
}

fn storage_effect(variant: u64) -> Effect {
    match variant % 3 {
        0 => Effect::SkipMigrationFromHot,
        1 => Effect::HotspotPlacement { pct: 55 },
        _ => Effect::MisreportRebalance,
    }
}

struct HistEntry {
    id: &'static str,
    title: &'static str,
    kind: FailureKind,
    tier: HistTier,
}

enum HistTier {
    ReqOnly,
    ConfOnly,
    Shallow(ShallowProfile),
    Deep,
    Gated(Gate),
}

fn hist_spec(platform: Flavor, variant: u64, e: HistEntry) -> BugSpec {
    let (trigger, gate) = match e.tier {
        HistTier::ReqOnly => {
            let t = match variant % 3 {
                0 => Trigger::size_spread(10, 48.0),
                1 => Trigger::op_count(vec![OpClass::Create, OpClass::Delete], 12, 60),
                _ => Trigger::within(
                    vec![
                        Trigger::op_count(vec![OpClass::Resize], 10, 60),
                        Trigger::variance_episodes(Metric::Storage, 1.12, 1),
                    ],
                    400,
                ),
            };
            (t, Gate::None)
        }
        HistTier::ConfOnly => (Trigger::membership_churn(3, 3_600_000), Gate::None),
        HistTier::Shallow(p) => (shallow_trigger(p, variant), Gate::None),
        HistTier::Deep => (deep_trigger(variant), Gate::None),
        HistTier::Gated(g) => (Trigger::Never, g),
    };
    let effect = match e.kind {
        FailureKind::ImbalancedStorage => storage_effect(variant),
        FailureKind::ImbalancedCpu => Effect::CpuSpin,
        FailureKind::ImbalancedNetwork => Effect::NetFunnel,
        FailureKind::Crash => Effect::CrashNodes { count: 1 },
        FailureKind::DataLoss => Effect::DeleteMigratedData { pct: 40 },
    };
    BugSpec {
        id: e.id,
        platform,
        kind: e.kind,
        title: e.title,
        trigger,
        effect,
        gate,
        is_new: false,
    }
}

/// The 53 historical imbalance failures of the motivation study.
pub fn all_historical_bugs() -> Vec<BugSpec> {
    use FailureKind::*;
    use HistTier::*;
    use ShallowProfile::*;
    let mut out = Vec::with_capacity(53);

    // HDFS: 18 failures (2 gated).
    let hdfs: Vec<HistEntry> = vec![
        HistEntry { id: "HDFS-13279", title: "DataNodes usage imbalanced when number of nodes per rack is unequal (stale clusterMap during migration)", kind: ImbalancedStorage, tier: Deep },
        HistEntry { id: "HDFS-4261", title: "timeouts in load-balancing process within MiniDFSCluster NodeGroup (Windows only)", kind: ImbalancedStorage, tier: Gated(Gate::WindowsOnly) },
        HistEntry { id: "HDFS-11741", title: "long running balancer fails due to expired DataEncryptionKey (encryption hardware)", kind: ImbalancedStorage, tier: Gated(Gate::HardwareFault) },
        HistEntry { id: "HDFS-13331", title: "block placement skew under bursty small-file creation", kind: ImbalancedStorage, tier: ReqOnly },
        HistEntry { id: "HDFS-14186", title: "hot directory reads overload a single NameNode", kind: ImbalancedNetwork, tier: ReqOnly },
        HistEntry { id: "HDFS-12456", title: "decommission storm leaves balancer plan stale", kind: ImbalancedStorage, tier: ConfOnly },
        HistEntry { id: "HDFS-13541", title: "balancer ignores newly added volumes in the same round", kind: ImbalancedStorage, tier: Shallow(EasyReqChurnWide) },
        HistEntry { id: "HDFS-14020", title: "disk usage skew after volume add during write burst", kind: ImbalancedStorage, tier: Shallow(EasyReqChurnTight) },
        HistEntry { id: "HDFS-13807", title: "rename-heavy workloads confuse the block map during scaling", kind: ImbalancedStorage, tier: Shallow(HardReqChurnTight) },
        HistEntry { id: "HDFS-14511", title: "balancer mis-sorts nodes with mixed file sizes", kind: ImbalancedStorage, tier: Shallow(HardReqRebalanceWide) },
        HistEntry { id: "HDFS-13977", title: "checkpoint thread pegs one NameNode CPU after node churn", kind: ImbalancedCpu, tier: Shallow(EasyReqChurnWide) },
        HistEntry { id: "HDFS-14313", title: "replication queue drains to a single DataNode", kind: ImbalancedStorage, tier: Shallow(VarianceCoupled) },
        HistEntry { id: "HDFS-13609", title: "slow disk heartbeats skew usage reports under load", kind: ImbalancedStorage, tier: Shallow(VarianceCoupled) },
        HistEntry { id: "HDFS-14782", title: "lease recovery floods one NameNode during membership change", kind: ImbalancedNetwork, tier: Shallow(HardReqChurnTight) },
        HistEntry { id: "HDFS-13168", title: "balancer moves blocks back and forth between two nodes (thrash)", kind: ImbalancedStorage, tier: Deep },
        HistEntry { id: "HDFS-14649", title: "storage policy mismatch strands blocks on one tier", kind: ImbalancedStorage, tier: Deep },
        HistEntry { id: "HDFS-13888", title: "snapshot deletes corrupt per-node usage accounting", kind: DataLoss, tier: Deep },
        HistEntry { id: "HDFS-14190", title: "append-after-scale loses balancer iterator position", kind: ImbalancedStorage, tier: Deep },
    ];
    for (i, e) in hdfs.into_iter().enumerate() {
        out.push(hist_spec(Flavor::Hdfs, i as u64, e));
    }

    // CephFS: 16 failures (2 gated).
    let ceph: Vec<HistEntry> = vec![
        HistEntry {
            id: "CEPH-64333",
            title: "PG autoscaler tuning causes catastrophic cluster crash",
            kind: Crash,
            tier: Deep,
        },
        HistEntry {
            id: "CEPH-41935",
            title: "MDSs keep crashing within the rebalance process (Windows only)",
            kind: Crash,
            tier: Gated(Gate::WindowsOnly),
        },
        HistEntry {
            id: "CEPH-55568",
            title: "CephPGImbalance alert inaccuracies under mixed HDD/SSD hardware",
            kind: ImbalancedStorage,
            tier: Gated(Gate::HardwareFault),
        },
        HistEntry {
            id: "CEPH-63014",
            title: "mclock scheduler latency imbalance under heavy writes after OSD restart",
            kind: ImbalancedNetwork,
            tier: Shallow(EasyReqChurnWide),
        },
        HistEntry {
            id: "CEPH-64611",
            title: "inconsistent return codes in MDS code base break load collection",
            kind: ImbalancedStorage,
            tier: Shallow(HardReqRebalanceWide),
        },
        HistEntry {
            id: "CEPH-65806",
            title: "IO hangs issuing balanced reads to replica OSDs while PG peering",
            kind: ImbalancedNetwork,
            tier: Shallow(HardReqChurnTight),
        },
        HistEntry {
            id: "CEPH-61520",
            title: "object size spread defeats straw2 weighting",
            kind: ImbalancedStorage,
            tier: ReqOnly,
        },
        HistEntry {
            id: "CEPH-59333",
            title: "subtree pinning overloads one MDS under deep mkdir trees",
            kind: ImbalancedCpu,
            tier: ReqOnly,
        },
        HistEntry {
            id: "CEPH-62214",
            title: "backfill reservation leak after OSD add under writes",
            kind: ImbalancedStorage,
            tier: Shallow(EasyReqChurnTight),
        },
        HistEntry {
            id: "CEPH-60625",
            title: "up:replay MDS consumes all CPU after gateway churn",
            kind: ImbalancedCpu,
            tier: Shallow(EasyReqChurnWide),
        },
        HistEntry {
            id: "CEPH-63790",
            title: "balancer upmap entries pile onto a single OSD",
            kind: ImbalancedStorage,
            tier: Shallow(VarianceCoupled),
        },
        HistEntry {
            id: "CEPH-64118",
            title: "degraded-ratio accounting drifts during overlapping rebalances",
            kind: ImbalancedStorage,
            tier: Shallow(VarianceCoupled),
        },
        HistEntry {
            id: "CEPH-62045",
            title: "MDS export_dir storm after double rank failure",
            kind: ImbalancedNetwork,
            tier: Deep,
        },
        HistEntry {
            id: "CEPH-63377",
            title: "pg_upmap_items survive OSD removal and strand data",
            kind: ImbalancedStorage,
            tier: Deep,
        },
        HistEntry {
            id: "CEPH-64901",
            title: "snap trim queue starves recovery on one OSD",
            kind: ImbalancedStorage,
            tier: Deep,
        },
        HistEntry {
            id: "CEPH-61782",
            title: "stray directory migration loses hardlinked inodes",
            kind: DataLoss,
            tier: Deep,
        },
    ];
    for (i, e) in ceph.into_iter().enumerate() {
        out.push(hist_spec(Flavor::CephFs, 100 + i as u64, e));
    }

    // GlusterFS: 12 failures (1 gated).
    let gluster: Vec<HistEntry> = vec![
        HistEntry {
            id: "GLUSTER-3356",
            title: "massive latency spikes requiring force-remount (hotspot accumulation)",
            kind: ImbalancedStorage,
            tier: Shallow(VarianceCoupled),
        },
        HistEntry {
            id: "GLUSTER-3513",
            title: "improper error handling during data migration causes data loss",
            kind: DataLoss,
            tier: Shallow(HardReqRebalanceWide),
        },
        HistEntry {
            id: "GLUSTER-1699",
            title: "brick offline with signal 11 during rebalance healing (hardware)",
            kind: Crash,
            tier: Gated(Gate::HardwareFault),
        },
        HistEntry {
            id: "GLUSTER-1245142",
            title: "rebalance hangs on distribute volume when glusterd stopped on peer",
            kind: ImbalancedStorage,
            tier: Deep,
        },
        HistEntry {
            id: "GLUSTER-2816",
            title: "small-file create storms skew the DHT layout",
            kind: ImbalancedStorage,
            tier: ReqOnly,
        },
        HistEntry {
            id: "GLUSTER-3153",
            title: "overwrite bursts leave sparse bricks unbalanced",
            kind: ImbalancedStorage,
            tier: ReqOnly,
        },
        HistEntry {
            id: "GLUSTER-2430",
            title: "fix-layout misses bricks added mid-round",
            kind: ImbalancedStorage,
            tier: Shallow(EasyReqChurnWide),
        },
        HistEntry {
            id: "GLUSTER-3088",
            title: "rebalance status stuck after brick replace under writes",
            kind: ImbalancedStorage,
            tier: Shallow(EasyReqChurnTight),
        },
        HistEntry {
            id: "GLUSTER-2644",
            title: "rename during migration leaves stale linkfiles",
            kind: ImbalancedStorage,
            tier: Shallow(HardReqChurnTight),
        },
        HistEntry {
            id: "GLUSTER-3201",
            title: "self-heal daemon pegs CPU after volume expand under load",
            kind: ImbalancedCpu,
            tier: Shallow(EasyReqChurnWide),
        },
        HistEntry {
            id: "GLUSTER-2977",
            title: "quota accounting drifts across bricks during periodic rebalance",
            kind: ImbalancedStorage,
            tier: Shallow(HardReqRebalanceWide),
        },
        HistEntry {
            id: "GLUSTER-3312",
            title: "dht layout anomaly after overlapping remove-brick operations",
            kind: ImbalancedStorage,
            tier: Deep,
        },
    ];
    for (i, e) in gluster.into_iter().enumerate() {
        out.push(hist_spec(Flavor::GlusterFs, 200 + i as u64, e));
    }

    // LeoFS: 7 failures (0 gated).
    let leofs: Vec<HistEntry> = vec![
        HistEntry {
            id: "LEOFS-1115",
            title: "deleting a storage node causes data loss",
            kind: DataLoss,
            tier: ConfOnly,
        },
        HistEntry {
            id: "LEOFS-987",
            title: "multipart upload bursts skew the ring",
            kind: ImbalancedStorage,
            tier: ReqOnly,
        },
        HistEntry {
            id: "LEOFS-1042",
            title: "gateway cache misses pile requests on one node after scale-out",
            kind: ImbalancedNetwork,
            tier: Shallow(EasyReqChurnWide),
        },
        HistEntry {
            id: "LEOFS-1077",
            title: "rebalance queue starves under concurrent writes and node swap",
            kind: ImbalancedStorage,
            tier: Shallow(EasyReqChurnTight),
        },
        HistEntry {
            id: "LEOFS-1101",
            title: "delete-heavy workloads corrupt per-node usage during churn",
            kind: ImbalancedStorage,
            tier: Shallow(HardReqChurnTight),
        },
        HistEntry {
            id: "LEOFS-1089",
            title: "ring checksum mismatch leaves vnode arcs unbalanced",
            kind: ImbalancedStorage,
            tier: Shallow(VarianceCoupled),
        },
        HistEntry {
            id: "LEOFS-1123",
            title: "compaction after resize storm strands objects on one node",
            kind: ImbalancedStorage,
            tier: Deep,
        },
    ];
    for (i, e) in leofs.into_iter().enumerate() {
        out.push(hist_spec(Flavor::LeoFs, 300 + i as u64, e));
    }

    debug_assert_eq!(out.len(), 53);
    out
}

/// Historical failures for one platform.
pub fn historical_bugs(platform: Flavor) -> Vec<BugSpec> {
    all_historical_bugs()
        .into_iter()
        .filter(|b| b.platform == platform)
        .collect()
}

/// Table 1 of the paper: number of studied failures per platform.
pub fn table1_counts() -> Vec<(Flavor, usize)> {
    Flavor::all()
        .iter()
        .map(|&f| (f, historical_bugs(f).len()))
        .collect()
}

/// A scripted reproduction support: the trigger parameters for the bug
/// whose reproduction Figure 2 plots (GLUSTER-3356 storage accumulation).
pub fn figure2_bug_id() -> &'static str {
    "GLUSTER-3356"
}

/// Large size used by tests and workloads as a "big file" (256 MiB).
pub fn big_file() -> u64 {
    256 * MIB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_match_paper() {
        let counts = table1_counts();
        let get = |f: Flavor| {
            counts
                .iter()
                .find(|(p, _)| *p == f)
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert_eq!(get(Flavor::Hdfs), 18);
        assert_eq!(get(Flavor::CephFs), 16);
        assert_eq!(get(Flavor::GlusterFs), 12);
        assert_eq!(get(Flavor::LeoFs), 7);
        assert_eq!(all_historical_bugs().len(), 53);
    }

    #[test]
    fn new_bug_counts_match_table2() {
        assert_eq!(new_bugs(Flavor::GlusterFs).len(), 4);
        assert_eq!(new_bugs(Flavor::LeoFs).len(), 3);
        assert_eq!(new_bugs(Flavor::CephFs).len(), 1);
        assert_eq!(new_bugs(Flavor::Hdfs).len(), 2);
        assert_eq!(all_new_bugs().len(), 10);
        assert!(all_new_bugs().iter().all(|b| b.is_new && b.reproducible()));
    }

    #[test]
    fn bug_ids_are_unique() {
        let mut ids: Vec<&str> = all_new_bugs().iter().map(|b| b.id).collect();
        ids.extend(all_historical_bugs().iter().map(|b| b.id));
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn exactly_five_bugs_are_gated() {
        let gated: Vec<_> = all_historical_bugs()
            .into_iter()
            .filter(|b| !b.reproducible())
            .collect();
        assert_eq!(gated.len(), 5);
        let windows = gated.iter().filter(|b| b.gate == Gate::WindowsOnly).count();
        assert_eq!(windows, 2);
    }

    #[test]
    fn input_space_distribution_matches_finding4() {
        let bugs = all_historical_bugs();
        let live: Vec<_> = bugs.iter().filter(|b| b.reproducible()).collect();
        let req_only = live
            .iter()
            .filter(|b| b.trigger.needs_requests() && !b.trigger.needs_configs());
        let conf_only = live
            .iter()
            .filter(|b| !b.trigger.needs_requests() && b.trigger.needs_configs());
        // 7 request-only (13% of 53) and 2 config-only (4%); note some
        // "both" triggers include a rebalance-burst side, which is not a
        // config op, so needs_configs may be false for those — we check
        // only the strict one-space tiers here.
        assert_eq!(
            req_only.count(),
            7 + 4,
            "req-only tier plus rebalance-side shallows"
        );
        assert_eq!(conf_only.count(), 2);
    }

    #[test]
    fn deep_bugs_need_six_to_eight_steps() {
        for b in all_historical_bugs() {
            if b.reproducible() {
                let d = b.trigger.depth();
                assert!((1..=12).contains(&d), "{} depth {}", b.id, d);
            }
        }
    }

    #[test]
    fn figure2_bug_exists() {
        assert!(all_historical_bugs()
            .iter()
            .any(|b| b.id == figure2_bug_id()));
    }

    #[test]
    fn gluster_case_study_is_cache_remigration() {
        let b = all_new_bugs()
            .into_iter()
            .find(|b| b.id == "Bug#S24387")
            .unwrap();
        let has_cache = match &b.trigger {
            Trigger::All { subs, .. } | Trigger::Within { subs, .. } => {
                subs.iter().any(|t| matches!(t, Trigger::CacheRemigration))
            }
            t => matches!(t, Trigger::CacheRemigration),
        };
        assert!(
            has_cache,
            "case study must hinge on the cache-remigration path"
        );
        assert!(matches!(b.effect, Effect::DeleteMigratedData { .. }));
        assert_eq!(b.platform, Flavor::GlusterFs);
    }
}
