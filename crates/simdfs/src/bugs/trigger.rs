//! Trigger predicates for latent imbalance failures.
//!
//! A trigger is a small state machine observing the stream of simulator
//! events (operations, balancer activity, load-variance samples). When its
//! condition is met the bug *fires*: its effect is armed and the simulated
//! DFS starts misbehaving, exactly like tripping the faulty code path in a
//! real system. Trigger structure encodes the paper's study findings:
//! input-space requirements (Finding 4), bounded trigger depth (Finding 5)
//! and gradual variance accumulation (Finding 6).

use crate::request::OpClass;
use crate::types::{Bytes, SimTime};
use std::collections::VecDeque;

/// Which load metric a variance-based trigger observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Bytes stored per storage node.
    Storage,
    /// CPU utilization per management node.
    Cpu,
    /// Requests + IO per management node.
    Network,
}

/// An event emitted by the simulator and fed to every armed trigger.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A request finished executing.
    Op {
        /// The request's class.
        class: OpClass,
        /// Whether it succeeded.
        ok: bool,
        /// Bytes written/moved by the request.
        size: Bytes,
    },
    /// The storage balancer started a rebalance round.
    RebalanceStart,
    /// A rebalance round completed.
    RebalanceDone {
        /// Number of file moves the round performed.
        moves: usize,
    },
    /// One file migration was executed by the balancer.
    MigrationStep {
        /// The file's hashed id was still in the DHT migration cache.
        cache_hit: bool,
        /// The file had an associated linkfile at its hash location.
        had_link: bool,
    },
    /// Cluster membership changed (node or volume topology).
    MembershipChange {
        /// The configuration class that changed membership.
        class: OpClass,
    },
    /// A load-variance sample taken after request execution.
    Variance {
        /// Storage max/mean ratio across storage nodes.
        storage: f64,
        /// CPU max/mean ratio across management nodes.
        cpu: f64,
        /// Network max/mean ratio across management nodes.
        network: f64,
    },
}

/// A stateful trigger predicate.
///
/// `observe` consumes events; it returns `true` exactly once, on the event
/// that completes the condition. Callers stop feeding a trigger after it
/// fires.
#[derive(Debug, Clone)]
pub enum Trigger {
    /// Match `classes` as a subsequence of executed operations, where
    /// consecutive matches must occur within `window` operations of each
    /// other (a "short sequence executed over a short duration").
    Subseq {
        /// The class pattern, in order.
        classes: Vec<OpClass>,
        /// Max operations between consecutive pattern advances.
        window: usize,
        /// Progress through `classes` (internal).
        progress: usize,
        /// Ops since the last advance (internal).
        since: usize,
    },
    /// At least `count` operations whose class is in `classes` within the
    /// last `window` operations — and, when `max_span_ms` is nonzero, all
    /// hits must also fall within that much virtual time (so idle gaps
    /// between bursts do not count as one burst).
    OpCount {
        /// Accepted classes.
        classes: Vec<OpClass>,
        /// Required hits.
        count: usize,
        /// Sliding window length in operations.
        window: usize,
        /// Maximum virtual-time span of the hits (0 = unlimited).
        max_span_ms: u64,
        /// Op indices and times of hits (internal).
        hits: VecDeque<(usize, u64)>,
        /// Total ops observed (internal).
        opno: usize,
    },
    /// Within the last `n` size-carrying writes, max/min size ratio reaches
    /// `ratio` (mishandling of wildly different file sizes).
    SizeSpread {
        /// Number of recent writes considered.
        n: usize,
        /// Required max/min ratio.
        ratio: f64,
        /// Recent write sizes (internal).
        sizes: VecDeque<Bytes>,
    },
    /// The load-variance ratio for `metric` crosses above `ratio` at least
    /// `needed` distinct times (rising edges) — the paper's accumulation of
    /// minor imbalances (Finding 6).
    VarianceEpisodes {
        /// Observed metric.
        metric: Metric,
        /// Ratio that counts as an episode (e.g. 1.15 = 15% over mean).
        ratio: f64,
        /// Episodes required.
        needed: u32,
        /// Episodes seen (internal).
        seen: u32,
        /// Currently above the ratio (internal, for edge detection).
        above: bool,
    },
    /// At least `count` rebalance rounds started within `window_ms` of
    /// virtual time.
    RebalanceBurst {
        /// Required round count.
        count: u32,
        /// Window in virtual milliseconds.
        window_ms: u64,
        /// Start times of recent rounds (internal).
        times: VecDeque<u64>,
    },
    /// A migration step hit the DHT hash cache for a file that has a
    /// linkfile (the GlusterFS dht-rebalance double-migration path).
    CacheRemigration,
    /// At least `count` membership changes within `window_ms`.
    MembershipChurn {
        /// Required changes.
        count: u32,
        /// Window in virtual milliseconds.
        window_ms: u64,
        /// Times of recent changes (internal).
        times: VecDeque<u64>,
    },
    /// A membership change occurred while a rebalance round was in flight
    /// (the HDFS-13279 stale-clusterMap scenario).
    OfflineDuringRebalance {
        /// Rebalance in flight (internal).
        running: bool,
    },
    /// At least `count` client-request operations executed while a
    /// rebalance round was in flight.
    RequestsDuringRebalance {
        /// Required requests.
        count: usize,
        /// Requests seen during rebalances (internal).
        seen: usize,
        /// Rebalance in flight (internal).
        running: bool,
    },
    /// The load-variance ratio for `metric` stays at or above `ratio` for
    /// `samples` consecutive variance samples — the accumulated steady
    /// imbalance of Finding 6, which the balancer does not fight (the
    /// ratio sits below its activation threshold) and which transient
    /// random churn does not sustain.
    SustainedVariance {
        /// Observed metric.
        metric: Metric,
        /// Ratio that must be sustained.
        ratio: f64,
        /// Consecutive samples required.
        samples: u32,
        /// Current run length (internal).
        run: u32,
    },
    /// The operation stream contains `repeats` consecutive non-overlapping
    /// chunks of `len` operations whose class multisets are near-identical
    /// (at most `tol` differing elements) and mix both input spaces.
    ///
    /// This is Finding 5's triggering shape: distributed nodes "repeatedly
    /// executing short sequences of up to 8 operations, with gradual
    /// variation in the operation sequences as they are repeated" — the
    /// signature of seed-pool fuzzing over the unified sequence space, and
    /// exactly what independent random generation does not produce.
    EchoedMix {
        /// Chunk length in operations.
        len: usize,
        /// Consecutive similar chunks required.
        repeats: u32,
        /// Maximum multiset distance between consecutive chunks.
        tol: usize,
        /// Classes of the current chunk (internal).
        chunk: Vec<OpClass>,
        /// Previous chunk's class multiset (internal).
        prev: Vec<OpClass>,
        /// Current run of similar chunks (internal).
        run: u32,
    },
    /// All sub-triggers must fire (each fires stickily, in any order).
    All {
        /// Sub-triggers.
        subs: Vec<Trigger>,
        /// Which sub-triggers already fired (internal).
        fired: Vec<bool>,
    },
    /// All sub-triggers must fire within a bounded horizon of each other:
    /// each sub-fire is remembered for `horizon` operations and expires
    /// afterwards. This is the co-occurrence form of a deep condition —
    /// the coordinated circumstances must hold over one short stretch of
    /// execution, not merely each happen once somewhere in a 24-hour run.
    Within {
        /// Sub-triggers.
        subs: Vec<Trigger>,
        /// Horizon in operations within which all sub-fires must land.
        horizon: usize,
        /// Horizon in virtual milliseconds (0 = unlimited).
        horizon_ms: u64,
        /// Operation index and time of each sub's most recent fire
        /// (internal).
        stamps: Vec<Option<(usize, u64)>>,
        /// Operations observed (internal).
        opno: usize,
    },
    /// Never fires: the bug is gated on an environment this reproduction
    /// (like the paper's Linux testbed) cannot provide.
    Never,
}

impl Trigger {
    /// Builds a subsequence trigger.
    pub fn subseq(classes: Vec<OpClass>, window: usize) -> Trigger {
        Trigger::Subseq {
            classes,
            window,
            progress: 0,
            since: 0,
        }
    }

    /// Builds an operation-count trigger (no time bound).
    pub fn op_count(classes: Vec<OpClass>, count: usize, window: usize) -> Trigger {
        Trigger::OpCount {
            classes,
            count,
            window,
            max_span_ms: 0,
            hits: VecDeque::new(),
            opno: 0,
        }
    }

    /// Builds an operation-count trigger whose hits must also fall within
    /// `max_span_ms` of virtual time.
    pub fn op_count_timed(
        classes: Vec<OpClass>,
        count: usize,
        window: usize,
        max_span_ms: u64,
    ) -> Trigger {
        Trigger::OpCount {
            classes,
            count,
            window,
            max_span_ms,
            hits: VecDeque::new(),
            opno: 0,
        }
    }

    /// Builds a size-spread trigger.
    pub fn size_spread(n: usize, ratio: f64) -> Trigger {
        Trigger::SizeSpread {
            n,
            ratio,
            sizes: VecDeque::new(),
        }
    }

    /// Builds a variance-episode trigger.
    pub fn variance_episodes(metric: Metric, ratio: f64, needed: u32) -> Trigger {
        Trigger::VarianceEpisodes {
            metric,
            ratio,
            needed,
            seen: 0,
            above: false,
        }
    }

    /// Builds a rebalance-burst trigger.
    pub fn rebalance_burst(count: u32, window_ms: u64) -> Trigger {
        Trigger::RebalanceBurst {
            count,
            window_ms,
            times: VecDeque::new(),
        }
    }

    /// Builds a membership-churn trigger.
    pub fn membership_churn(count: u32, window_ms: u64) -> Trigger {
        Trigger::MembershipChurn {
            count,
            window_ms,
            times: VecDeque::new(),
        }
    }

    /// Builds an offline-during-rebalance trigger.
    pub fn offline_during_rebalance() -> Trigger {
        Trigger::OfflineDuringRebalance { running: false }
    }

    /// Builds a requests-during-rebalance trigger.
    pub fn requests_during_rebalance(count: usize) -> Trigger {
        Trigger::RequestsDuringRebalance {
            count,
            seen: 0,
            running: false,
        }
    }

    /// Builds a sustained-variance trigger.
    pub fn sustained_variance(metric: Metric, ratio: f64, samples: u32) -> Trigger {
        Trigger::SustainedVariance {
            metric,
            ratio,
            samples,
            run: 0,
        }
    }

    /// Builds an echoed-mix trigger.
    pub fn echoed_mix(len: usize, repeats: u32, tol: usize) -> Trigger {
        Trigger::EchoedMix {
            len,
            repeats,
            tol,
            chunk: Vec::new(),
            prev: Vec::new(),
            run: 0,
        }
    }

    /// Builds a conjunction.
    pub fn all(subs: Vec<Trigger>) -> Trigger {
        let fired = vec![false; subs.len()];
        Trigger::All { subs, fired }
    }

    /// Builds a bounded-horizon conjunction (operation-count horizon only).
    pub fn within(subs: Vec<Trigger>, horizon: usize) -> Trigger {
        Self::within_timed(subs, horizon, 0)
    }

    /// Builds a bounded-horizon conjunction with both an operation-count
    /// and a virtual-time horizon.
    pub fn within_timed(subs: Vec<Trigger>, horizon: usize, horizon_ms: u64) -> Trigger {
        let stamps = vec![None; subs.len()];
        Trigger::Within {
            subs,
            horizon,
            horizon_ms,
            stamps,
            opno: 0,
        }
    }

    /// The number of "steps" (operation classes) a tester must coordinate
    /// to fire this trigger — the paper's trigger-depth notion (Finding 5).
    pub fn depth(&self) -> usize {
        match self {
            Trigger::Subseq { classes, .. } => classes.len(),
            Trigger::OpCount { .. } => 1,
            Trigger::SizeSpread { .. } => 1,
            Trigger::VarianceEpisodes { .. } => 1,
            Trigger::SustainedVariance { .. } => 1,
            Trigger::EchoedMix { len, .. } => *len,
            Trigger::RebalanceBurst { .. } => 1,
            Trigger::CacheRemigration => 2,
            Trigger::MembershipChurn { .. } => 1,
            Trigger::OfflineDuringRebalance { .. } => 2,
            Trigger::RequestsDuringRebalance { .. } => 2,
            Trigger::All { subs, .. } => subs.iter().map(Trigger::depth).sum(),
            Trigger::Within { subs, .. } => subs.iter().map(Trigger::depth).sum(),
            Trigger::Never => usize::MAX,
        }
    }

    /// Whether firing requires client-request operations.
    pub fn needs_requests(&self) -> bool {
        match self {
            Trigger::Subseq { classes, .. } => classes.iter().any(|c| c.is_request()),
            Trigger::OpCount { classes, .. } => classes.iter().all(|c| c.is_request()),
            Trigger::SizeSpread { .. } => true,
            Trigger::RequestsDuringRebalance { .. } => true,
            Trigger::All { subs, .. } => subs.iter().any(Trigger::needs_requests),
            Trigger::Within { subs, .. } => subs.iter().any(Trigger::needs_requests),
            _ => false,
        }
    }

    /// Whether firing requires configuration operations.
    pub fn needs_configs(&self) -> bool {
        match self {
            Trigger::Subseq { classes, .. } => classes.iter().any(|c| c.is_config()),
            Trigger::OpCount { classes, .. } => classes.iter().all(|c| c.is_config()),
            Trigger::MembershipChurn { .. } => true,
            Trigger::OfflineDuringRebalance { .. } => true,
            Trigger::All { subs, .. } => subs.iter().any(Trigger::needs_configs),
            Trigger::Within { subs, .. } => subs.iter().any(Trigger::needs_configs),
            _ => false,
        }
    }

    /// Feeds one event; returns `true` when the trigger fires on it.
    pub fn observe(&mut self, now: SimTime, ev: &SimEvent) -> bool {
        match self {
            Trigger::Subseq {
                classes,
                window,
                progress,
                since,
            } => {
                if let SimEvent::Op {
                    class, ok: true, ..
                } = ev
                {
                    if *progress > 0 {
                        *since += 1;
                        if *since > *window {
                            *progress = 0;
                            *since = 0;
                        }
                    }
                    if *progress < classes.len() && *class == classes[*progress] {
                        *progress += 1;
                        *since = 0;
                        if *progress == classes.len() {
                            *progress = 0;
                            return true;
                        }
                    }
                }
                false
            }
            Trigger::OpCount {
                classes,
                count,
                window,
                max_span_ms,
                hits,
                opno,
            } => {
                if let SimEvent::Op {
                    class, ok: true, ..
                } = ev
                {
                    *opno += 1;
                    if classes.contains(class) {
                        hits.push_back((*opno, now.as_millis()));
                    }
                    while hits.front().is_some_and(|&(h, _)| *opno - h >= *window) {
                        hits.pop_front();
                    }
                    if *max_span_ms > 0 {
                        while hits
                            .front()
                            .is_some_and(|&(_, t)| now.as_millis().saturating_sub(t) > *max_span_ms)
                        {
                            hits.pop_front();
                        }
                    }
                    return hits.len() >= *count;
                }
                false
            }
            Trigger::SizeSpread { n, ratio, sizes } => {
                if let SimEvent::Op {
                    class,
                    ok: true,
                    size,
                } = ev
                {
                    if matches!(class, OpClass::Create | OpClass::Resize) && *size > 0 {
                        sizes.push_back(*size);
                        if sizes.len() > *n {
                            sizes.pop_front();
                        }
                        if sizes.len() == *n {
                            let min = *sizes.iter().min().expect("nonempty");
                            let max = *sizes.iter().max().expect("nonempty");
                            return max as f64 / min.max(1) as f64 >= *ratio;
                        }
                    }
                }
                false
            }
            Trigger::VarianceEpisodes {
                metric,
                ratio,
                needed,
                seen,
                above,
            } => {
                if let SimEvent::Variance {
                    storage,
                    cpu,
                    network,
                } = ev
                {
                    let v = match metric {
                        Metric::Storage => *storage,
                        Metric::Cpu => *cpu,
                        Metric::Network => *network,
                    };
                    let is_above = v >= *ratio;
                    if is_above && !*above {
                        *seen += 1;
                        if *seen >= *needed {
                            *above = is_above;
                            return true;
                        }
                    }
                    *above = is_above;
                }
                false
            }
            Trigger::RebalanceBurst {
                count,
                window_ms,
                times,
            } => {
                if matches!(ev, SimEvent::RebalanceStart) {
                    times.push_back(now.as_millis());
                    while times
                        .front()
                        .is_some_and(|&t| now.as_millis().saturating_sub(t) > *window_ms)
                    {
                        times.pop_front();
                    }
                    return times.len() as u32 >= *count;
                }
                false
            }
            Trigger::CacheRemigration => {
                matches!(
                    ev,
                    SimEvent::MigrationStep {
                        cache_hit: true,
                        had_link: true
                    }
                )
            }
            Trigger::MembershipChurn {
                count,
                window_ms,
                times,
            } => {
                if matches!(ev, SimEvent::MembershipChange { .. }) {
                    times.push_back(now.as_millis());
                    while times
                        .front()
                        .is_some_and(|&t| now.as_millis().saturating_sub(t) > *window_ms)
                    {
                        times.pop_front();
                    }
                    return times.len() as u32 >= *count;
                }
                false
            }
            Trigger::OfflineDuringRebalance { running } => match ev {
                SimEvent::RebalanceStart => {
                    *running = true;
                    false
                }
                SimEvent::RebalanceDone { .. } => {
                    *running = false;
                    false
                }
                SimEvent::MembershipChange { class } => {
                    *running
                        && matches!(
                            class,
                            OpClass::StorageRemove | OpClass::MgmtRemove | OpClass::VolumeRemove
                        )
                }
                _ => false,
            },
            Trigger::RequestsDuringRebalance {
                count,
                seen,
                running,
            } => match ev {
                SimEvent::RebalanceStart => {
                    *running = true;
                    false
                }
                SimEvent::RebalanceDone { .. } => {
                    *running = false;
                    false
                }
                SimEvent::Op {
                    class, ok: true, ..
                } if class.is_request() => {
                    if *running {
                        *seen += 1;
                    }
                    *seen >= *count
                }
                _ => false,
            },
            Trigger::SustainedVariance {
                metric,
                ratio,
                samples,
                run,
            } => {
                if let SimEvent::Variance {
                    storage,
                    cpu,
                    network,
                } = ev
                {
                    let v = match metric {
                        Metric::Storage => *storage,
                        Metric::Cpu => *cpu,
                        Metric::Network => *network,
                    };
                    if v >= *ratio {
                        *run += 1;
                        return *run >= *samples;
                    }
                    *run = 0;
                }
                false
            }
            Trigger::EchoedMix {
                len,
                repeats,
                tol,
                chunk,
                prev,
                run,
            } => {
                if let SimEvent::Op {
                    class, ok: true, ..
                } = ev
                {
                    chunk.push(*class);
                    if chunk.len() == *len {
                        let mut cur = std::mem::take(chunk);
                        cur.sort_by_key(|c| c.index());
                        let mixed =
                            cur.iter().any(|c| c.is_request()) && cur.iter().any(|c| c.is_config());
                        // Multiset distance: elements of `cur` not matched
                        // in `prev` (symmetric because lengths are equal).
                        let mut rest = prev.clone();
                        let mut diff = 0usize;
                        for c in &cur {
                            if let Some(i) = rest.iter().position(|p| p == c) {
                                rest.swap_remove(i);
                            } else {
                                diff += 1;
                            }
                        }
                        let similar = !prev.is_empty() && diff <= *tol;
                        *prev = cur;
                        if similar && mixed {
                            *run += 1;
                            if *run + 1 >= *repeats {
                                return true;
                            }
                        } else {
                            *run = 0;
                        }
                    }
                }
                false
            }
            Trigger::All { subs, fired } => {
                let mut all = true;
                for (sub, f) in subs.iter_mut().zip(fired.iter_mut()) {
                    if !*f && sub.observe(now, ev) {
                        *f = true;
                    }
                    all &= *f;
                }
                all
            }
            Trigger::Within {
                subs,
                horizon,
                horizon_ms,
                stamps,
                opno,
            } => {
                if matches!(ev, SimEvent::Op { ok: true, .. }) {
                    *opno += 1;
                }
                let now_op = *opno;
                let now_ms = now.as_millis();
                for (sub, stamp) in subs.iter_mut().zip(stamps.iter_mut()) {
                    if sub.observe(now, ev) {
                        *stamp = Some((now_op, now_ms));
                        // Re-arm the sub so it can fire again in a later
                        // stretch after this one expires.
                        *sub = rearmed(sub);
                    }
                }
                stamps.iter().all(|s| {
                    s.is_some_and(|(at_op, at_ms)| {
                        now_op.saturating_sub(at_op) <= *horizon
                            && (*horizon_ms == 0 || now_ms.saturating_sub(at_ms) <= *horizon_ms)
                    })
                })
            }
            Trigger::Never => false,
        }
    }
}

/// A fresh copy of a trigger with its internal state reset, preserving its
/// parameters (used by [`Trigger::Within`] to re-arm expired sub-fires).
fn rearmed(t: &Trigger) -> Trigger {
    match t {
        Trigger::Subseq {
            classes, window, ..
        } => Trigger::subseq(classes.clone(), *window),
        Trigger::OpCount {
            classes,
            count,
            window,
            max_span_ms,
            ..
        } => Trigger::op_count_timed(classes.clone(), *count, *window, *max_span_ms),
        Trigger::SizeSpread { n, ratio, .. } => Trigger::size_spread(*n, *ratio),
        Trigger::VarianceEpisodes {
            metric,
            ratio,
            needed,
            ..
        } => Trigger::variance_episodes(*metric, *ratio, *needed),
        Trigger::RebalanceBurst {
            count, window_ms, ..
        } => Trigger::rebalance_burst(*count, *window_ms),
        Trigger::CacheRemigration => Trigger::CacheRemigration,
        Trigger::MembershipChurn {
            count, window_ms, ..
        } => Trigger::membership_churn(*count, *window_ms),
        Trigger::OfflineDuringRebalance { .. } => Trigger::offline_during_rebalance(),
        Trigger::RequestsDuringRebalance { count, .. } => {
            Trigger::requests_during_rebalance(*count)
        }
        Trigger::SustainedVariance {
            metric,
            ratio,
            samples,
            ..
        } => Trigger::sustained_variance(*metric, *ratio, *samples),
        Trigger::EchoedMix {
            len, repeats, tol, ..
        } => Trigger::echoed_mix(*len, *repeats, *tol),
        Trigger::All { subs, .. } => Trigger::all(subs.iter().map(rearmed).collect()),
        Trigger::Within {
            subs,
            horizon,
            horizon_ms,
            ..
        } => Trigger::within_timed(subs.iter().map(rearmed).collect(), *horizon, *horizon_ms),
        Trigger::Never => Trigger::Never,
    }
}

/// The mutable progress of a [`Trigger`], detached from its (often much
/// larger) immutable configuration — pattern vectors, thresholds, windows
/// stay with the live trigger. The snapshot-fork engine checkpoints armed
/// bugs through this so a fork mark costs O(live state), not a deep clone
/// of every spec.
///
/// A state only makes sense next to the trigger it was saved from:
/// [`Trigger::load_state`] pairs variants positionally and panics on a
/// shape mismatch, which can only happen if a checkpoint outlives the
/// engine it came from.
#[derive(Debug, Clone)]
pub enum TriggerState {
    /// Variants with no mutable state (`CacheRemigration`, `Never`).
    Inert,
    /// [`Trigger::Subseq`] progress.
    Subseq {
        /// Progress through the pattern.
        progress: usize,
        /// Ops since the last advance.
        since: usize,
    },
    /// [`Trigger::OpCount`] progress.
    OpCount {
        /// Op indices and times of hits.
        hits: VecDeque<(usize, u64)>,
        /// Total ops observed.
        opno: usize,
    },
    /// [`Trigger::SizeSpread`] progress.
    SizeSpread {
        /// Recent write sizes.
        sizes: VecDeque<Bytes>,
    },
    /// [`Trigger::VarianceEpisodes`] progress.
    VarianceEpisodes {
        /// Episodes seen.
        seen: u32,
        /// Currently above the ratio.
        above: bool,
    },
    /// [`Trigger::RebalanceBurst`] / [`Trigger::MembershipChurn`] progress.
    Times {
        /// Times of recent rounds/changes.
        times: VecDeque<u64>,
    },
    /// [`Trigger::OfflineDuringRebalance`] progress.
    OfflineDuringRebalance {
        /// Rebalance in flight.
        running: bool,
    },
    /// [`Trigger::RequestsDuringRebalance`] progress.
    RequestsDuringRebalance {
        /// Requests seen during rebalances.
        seen: usize,
        /// Rebalance in flight.
        running: bool,
    },
    /// [`Trigger::SustainedVariance`] progress.
    SustainedVariance {
        /// Current run length.
        run: u32,
    },
    /// [`Trigger::EchoedMix`] progress.
    EchoedMix {
        /// Classes of the current chunk.
        chunk: Vec<OpClass>,
        /// Previous chunk's class multiset.
        prev: Vec<OpClass>,
        /// Current run of similar chunks.
        run: u32,
    },
    /// [`Trigger::All`] progress.
    All {
        /// Sub-trigger states, positionally.
        subs: Vec<TriggerState>,
        /// Which sub-triggers already fired.
        fired: Vec<bool>,
    },
    /// [`Trigger::Within`] progress.
    Within {
        /// Sub-trigger states, positionally. `Within` re-arms a sub when
        /// it fires, but re-arming only resets state — the configuration
        /// is preserved — so positional pairing stays valid.
        subs: Vec<TriggerState>,
        /// Most recent fire stamp per sub.
        stamps: Vec<Option<(usize, u64)>>,
        /// Operations observed.
        opno: usize,
    },
}

impl Trigger {
    /// Captures this trigger's mutable progress (see [`TriggerState`]).
    pub fn save_state(&self) -> TriggerState {
        match self {
            Trigger::Subseq {
                progress, since, ..
            } => TriggerState::Subseq {
                progress: *progress,
                since: *since,
            },
            Trigger::OpCount { hits, opno, .. } => TriggerState::OpCount {
                hits: hits.clone(),
                opno: *opno,
            },
            Trigger::SizeSpread { sizes, .. } => TriggerState::SizeSpread {
                sizes: sizes.clone(),
            },
            Trigger::VarianceEpisodes { seen, above, .. } => TriggerState::VarianceEpisodes {
                seen: *seen,
                above: *above,
            },
            Trigger::RebalanceBurst { times, .. } | Trigger::MembershipChurn { times, .. } => {
                TriggerState::Times {
                    times: times.clone(),
                }
            }
            Trigger::OfflineDuringRebalance { running } => {
                TriggerState::OfflineDuringRebalance { running: *running }
            }
            Trigger::RequestsDuringRebalance { seen, running, .. } => {
                TriggerState::RequestsDuringRebalance {
                    seen: *seen,
                    running: *running,
                }
            }
            Trigger::SustainedVariance { run, .. } => TriggerState::SustainedVariance { run: *run },
            Trigger::EchoedMix {
                chunk, prev, run, ..
            } => TriggerState::EchoedMix {
                chunk: chunk.clone(),
                prev: prev.clone(),
                run: *run,
            },
            Trigger::All { subs, fired } => TriggerState::All {
                subs: subs.iter().map(Trigger::save_state).collect(),
                fired: fired.clone(),
            },
            Trigger::Within {
                subs, stamps, opno, ..
            } => TriggerState::Within {
                subs: subs.iter().map(Trigger::save_state).collect(),
                stamps: stamps.clone(),
                opno: *opno,
            },
            Trigger::CacheRemigration | Trigger::Never => TriggerState::Inert,
        }
    }

    /// Rewinds this trigger's mutable progress to a previously saved
    /// state, reusing the live trigger's allocations where possible.
    ///
    /// # Panics
    ///
    /// Panics if `state` was not saved from a trigger of this shape.
    pub fn load_state(&mut self, state: &TriggerState) {
        match (self, state) {
            (
                Trigger::Subseq {
                    progress, since, ..
                },
                TriggerState::Subseq {
                    progress: p,
                    since: s,
                },
            ) => {
                *progress = *p;
                *since = *s;
            }
            (Trigger::OpCount { hits, opno, .. }, TriggerState::OpCount { hits: h, opno: o }) => {
                hits.clone_from(h);
                *opno = *o;
            }
            (Trigger::SizeSpread { sizes, .. }, TriggerState::SizeSpread { sizes: s }) => {
                sizes.clone_from(s);
            }
            (
                Trigger::VarianceEpisodes { seen, above, .. },
                TriggerState::VarianceEpisodes { seen: s, above: a },
            ) => {
                *seen = *s;
                *above = *a;
            }
            (
                Trigger::RebalanceBurst { times, .. } | Trigger::MembershipChurn { times, .. },
                TriggerState::Times { times: t },
            ) => {
                times.clone_from(t);
            }
            (
                Trigger::OfflineDuringRebalance { running },
                TriggerState::OfflineDuringRebalance { running: r },
            ) => {
                *running = *r;
            }
            (
                Trigger::RequestsDuringRebalance { seen, running, .. },
                TriggerState::RequestsDuringRebalance {
                    seen: s,
                    running: r,
                },
            ) => {
                *seen = *s;
                *running = *r;
            }
            (
                Trigger::SustainedVariance { run, .. },
                TriggerState::SustainedVariance { run: r },
            ) => {
                *run = *r;
            }
            (
                Trigger::EchoedMix {
                    chunk, prev, run, ..
                },
                TriggerState::EchoedMix {
                    chunk: c,
                    prev: p,
                    run: r,
                },
            ) => {
                chunk.clone_from(c);
                prev.clone_from(p);
                *run = *r;
            }
            (Trigger::All { subs, fired }, TriggerState::All { subs: s, fired: f }) => {
                for (sub, st) in subs.iter_mut().zip(s) {
                    sub.load_state(st);
                }
                fired.clone_from(f);
            }
            (
                Trigger::Within {
                    subs, stamps, opno, ..
                },
                TriggerState::Within {
                    subs: s,
                    stamps: st,
                    opno: o,
                },
            ) => {
                for (sub, sst) in subs.iter_mut().zip(s) {
                    sub.load_state(sst);
                }
                stamps.clone_from(st);
                *opno = *o;
            }
            (Trigger::CacheRemigration | Trigger::Never, TriggerState::Inert) => {}
            (live, saved) => panic!("trigger/state shape mismatch: {live:?} cannot load {saved:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(class: OpClass) -> SimEvent {
        SimEvent::Op {
            class,
            ok: true,
            size: 0,
        }
    }

    fn write(size: Bytes) -> SimEvent {
        SimEvent::Op {
            class: OpClass::Create,
            ok: true,
            size,
        }
    }

    #[test]
    fn subseq_fires_in_order_within_window() {
        let mut t = Trigger::subseq(
            vec![OpClass::Create, OpClass::VolumeAdd, OpClass::Delete],
            2,
        );
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create)));
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Read)));
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::VolumeAdd)));
        assert!(t.observe(SimTime::ZERO, &op(OpClass::Delete)));
    }

    #[test]
    fn subseq_resets_when_window_exceeded() {
        let mut t = Trigger::subseq(vec![OpClass::Create, OpClass::Delete], 1);
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create)));
        // Two unrelated ops exceed the window of 1.
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Read)));
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Read)));
        assert!(
            !t.observe(SimTime::ZERO, &op(OpClass::Delete)),
            "progress must have reset"
        );
    }

    #[test]
    fn subseq_ignores_failed_ops() {
        let mut t = Trigger::subseq(vec![OpClass::Create], 4);
        let failed = SimEvent::Op {
            class: OpClass::Create,
            ok: false,
            size: 0,
        };
        assert!(!t.observe(SimTime::ZERO, &failed));
        assert!(t.observe(SimTime::ZERO, &op(OpClass::Create)));
    }

    #[test]
    fn op_count_sliding_window() {
        let mut t = Trigger::op_count(vec![OpClass::Create], 2, 3);
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create))); // op 1
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Read))); // op 2
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Read))); // op 3
                                                                // Op 4: the create at op 1 has slid out of the window of 3.
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create)));
        // Op 5: creates at ops 4 and 5 are both inside the window.
        assert!(t.observe(SimTime::ZERO, &op(OpClass::Create)));
    }

    #[test]
    fn size_spread_requires_ratio() {
        let mut t = Trigger::size_spread(3, 10.0);
        assert!(!t.observe(SimTime::ZERO, &write(100)));
        assert!(!t.observe(SimTime::ZERO, &write(150)));
        assert!(!t.observe(SimTime::ZERO, &write(200)));
        assert!(t.observe(SimTime::ZERO, &write(2_000)));
    }

    #[test]
    fn variance_episodes_counts_rising_edges() {
        let mut t = Trigger::variance_episodes(Metric::Storage, 1.3, 2);
        let hi = SimEvent::Variance {
            storage: 1.5,
            cpu: 1.0,
            network: 1.0,
        };
        let lo = SimEvent::Variance {
            storage: 1.0,
            cpu: 1.0,
            network: 1.0,
        };
        assert!(!t.observe(SimTime::ZERO, &hi)); // episode 1
        assert!(!t.observe(SimTime::ZERO, &hi)); // still above: same episode
        assert!(!t.observe(SimTime::ZERO, &lo));
        assert!(t.observe(SimTime::ZERO, &hi)); // episode 2 fires
    }

    #[test]
    fn variance_episodes_watches_selected_metric_only() {
        let mut t = Trigger::variance_episodes(Metric::Cpu, 1.3, 1);
        let storage_hi = SimEvent::Variance {
            storage: 9.0,
            cpu: 1.0,
            network: 1.0,
        };
        assert!(!t.observe(SimTime::ZERO, &storage_hi));
        let cpu_hi = SimEvent::Variance {
            storage: 1.0,
            cpu: 2.0,
            network: 1.0,
        };
        assert!(t.observe(SimTime::ZERO, &cpu_hi));
    }

    #[test]
    fn rebalance_burst_within_window() {
        let mut t = Trigger::rebalance_burst(2, 1_000);
        assert!(!t.observe(SimTime(0), &SimEvent::RebalanceStart));
        assert!(!t.observe(SimTime(2_000), &SimEvent::RebalanceStart));
        assert!(t.observe(SimTime(2_500), &SimEvent::RebalanceStart));
    }

    #[test]
    fn offline_during_rebalance_needs_active_round() {
        let mut t = Trigger::offline_during_rebalance();
        let remove = SimEvent::MembershipChange {
            class: OpClass::StorageRemove,
        };
        assert!(!t.observe(SimTime::ZERO, &remove));
        assert!(!t.observe(SimTime::ZERO, &SimEvent::RebalanceStart));
        assert!(t.observe(SimTime::ZERO, &remove));
    }

    #[test]
    fn offline_during_rebalance_ignores_additions() {
        let mut t = Trigger::offline_during_rebalance();
        t.observe(SimTime::ZERO, &SimEvent::RebalanceStart);
        let add = SimEvent::MembershipChange {
            class: OpClass::StorageAdd,
        };
        assert!(!t.observe(SimTime::ZERO, &add));
    }

    #[test]
    fn requests_during_rebalance_accumulates() {
        let mut t = Trigger::requests_during_rebalance(2);
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create)));
        t.observe(SimTime::ZERO, &SimEvent::RebalanceStart);
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create)));
        t.observe(SimTime::ZERO, &SimEvent::RebalanceDone { moves: 1 });
        t.observe(SimTime::ZERO, &SimEvent::RebalanceStart);
        assert!(t.observe(SimTime::ZERO, &op(OpClass::Read)));
    }

    #[test]
    fn all_requires_every_sub_trigger() {
        let mut t = Trigger::all(vec![
            Trigger::subseq(vec![OpClass::Create], 4),
            Trigger::rebalance_burst(1, 1_000),
        ]);
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create)));
        assert!(t.observe(SimTime::ZERO, &SimEvent::RebalanceStart));
    }

    #[test]
    fn all_sub_fires_are_sticky() {
        let mut t = Trigger::all(vec![
            Trigger::subseq(vec![OpClass::Create], 4),
            Trigger::subseq(vec![OpClass::VolumeAdd], 4),
        ]);
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create)));
        // Many unrelated ops later, the first sub-fire must persist.
        for _ in 0..20 {
            assert!(!t.observe(SimTime::ZERO, &op(OpClass::Read)));
        }
        assert!(t.observe(SimTime::ZERO, &op(OpClass::VolumeAdd)));
    }

    #[test]
    fn sustained_variance_requires_consecutive_samples() {
        let mut t = Trigger::sustained_variance(Metric::Storage, 1.1, 3);
        let hi = SimEvent::Variance {
            storage: 1.2,
            cpu: 1.0,
            network: 1.0,
        };
        let lo = SimEvent::Variance {
            storage: 1.0,
            cpu: 1.0,
            network: 1.0,
        };
        assert!(!t.observe(SimTime::ZERO, &hi));
        assert!(!t.observe(SimTime::ZERO, &hi));
        assert!(
            !t.observe(SimTime::ZERO, &lo),
            "run must reset on a low sample"
        );
        assert!(!t.observe(SimTime::ZERO, &hi));
        assert!(!t.observe(SimTime::ZERO, &hi));
        assert!(t.observe(SimTime::ZERO, &hi));
    }

    #[test]
    fn echoed_mix_fires_on_repeated_similar_mixed_chunks() {
        let mut t = Trigger::echoed_mix(3, 3, 1);
        // Three near-identical chunks mixing both spaces.
        let chunks = [
            [OpClass::Create, OpClass::VolumeAdd, OpClass::Delete],
            [OpClass::Create, OpClass::VolumeAdd, OpClass::Read], // 1 diff
            [OpClass::Create, OpClass::VolumeAdd, OpClass::Read],
        ];
        let mut fired = false;
        for chunk in chunks {
            for c in chunk {
                fired |= t.observe(SimTime::ZERO, &op(c));
            }
        }
        assert!(fired);
    }

    #[test]
    fn echoed_mix_requires_both_spaces() {
        let mut t = Trigger::echoed_mix(2, 3, 0);
        // Identical file-only chunks never fire.
        for _ in 0..20 {
            assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create)));
            assert!(!t.observe(SimTime::ZERO, &op(OpClass::Read)));
        }
    }

    #[test]
    fn echoed_mix_resets_on_dissimilar_chunk() {
        let mut t = Trigger::echoed_mix(2, 3, 0);
        let a = [OpClass::Create, OpClass::VolumeAdd];
        let b = [OpClass::Rename, OpClass::MgmtRemove];
        // Alternate dissimilar chunks: run never accumulates.
        for _ in 0..10 {
            for c in a {
                assert!(!t.observe(SimTime::ZERO, &op(c)));
            }
            for c in b {
                assert!(!t.observe(SimTime::ZERO, &op(c)));
            }
        }
    }

    #[test]
    fn within_requires_co_occurrence() {
        let mut t = Trigger::within(
            vec![
                Trigger::subseq(vec![OpClass::VolumeAdd], 4),
                Trigger::subseq(vec![OpClass::Create], 4),
            ],
            3,
        );
        // VolumeAdd fires, then far too many ops pass before Create.
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::VolumeAdd)));
        for _ in 0..10 {
            assert!(!t.observe(SimTime::ZERO, &op(OpClass::Read)));
        }
        assert!(
            !t.observe(SimTime::ZERO, &op(OpClass::Create)),
            "stale sub-fire must have expired"
        );
        // But close together, the conjunction fires.
        assert!(t.observe(SimTime::ZERO, &op(OpClass::VolumeAdd)));
    }

    #[test]
    fn within_subs_rearm_after_firing() {
        let mut t = Trigger::within(
            vec![
                Trigger::subseq(vec![OpClass::VolumeAdd], 4),
                Trigger::subseq(vec![OpClass::Create], 4),
            ],
            100,
        );
        assert!(!t.observe(SimTime::ZERO, &op(OpClass::VolumeAdd)));
        assert!(t.observe(SimTime::ZERO, &op(OpClass::Create)));
    }

    #[test]
    fn never_never_fires() {
        let mut t = Trigger::Never;
        for _ in 0..100 {
            assert!(!t.observe(SimTime::ZERO, &op(OpClass::Create)));
            assert!(!t.observe(SimTime::ZERO, &SimEvent::RebalanceStart));
        }
        assert_eq!(t.depth(), usize::MAX);
    }

    #[test]
    fn input_space_classification() {
        let both = Trigger::all(vec![
            Trigger::op_count(vec![OpClass::Create], 3, 10),
            Trigger::membership_churn(2, 1_000),
        ]);
        assert!(both.needs_requests());
        assert!(both.needs_configs());

        let req_only = Trigger::size_spread(5, 4.0);
        assert!(req_only.needs_requests());
        assert!(!req_only.needs_configs());

        let conf_only = Trigger::membership_churn(2, 1_000);
        assert!(!conf_only.needs_requests());
        assert!(conf_only.needs_configs());
    }

    #[test]
    fn depth_sums_over_all() {
        let t = Trigger::all(vec![
            Trigger::subseq(vec![OpClass::Create, OpClass::Delete], 4),
            Trigger::CacheRemigration,
        ]);
        assert_eq!(t.depth(), 4);
    }

    #[test]
    fn cache_remigration_needs_both_flags() {
        let mut t = Trigger::CacheRemigration;
        assert!(!t.observe(
            SimTime::ZERO,
            &SimEvent::MigrationStep {
                cache_hit: true,
                had_link: false
            }
        ));
        assert!(!t.observe(
            SimTime::ZERO,
            &SimEvent::MigrationStep {
                cache_hit: false,
                had_link: true
            }
        ));
        assert!(t.observe(
            SimTime::ZERO,
            &SimEvent::MigrationStep {
                cache_hit: true,
                had_link: true
            }
        ));
    }

    #[test]
    fn state_roundtrip_replays_identically_on_a_composite() {
        // A Within over an OpCount (VecDeque state) and a Subseq: feed a
        // partial stream, save, finish it once, rewind, and check the same
        // continuation fires the trigger again at the same point.
        let make = || {
            Trigger::within(
                vec![
                    Trigger::op_count(vec![OpClass::Create], 3, 8),
                    Trigger::subseq(vec![OpClass::Delete, OpClass::Rename], 4),
                ],
                16,
            )
        };
        let mut t = make();
        let prefix = [OpClass::Create, OpClass::Create, OpClass::Delete];
        for c in prefix {
            assert!(!t.observe(SimTime(1), &op(c)));
        }
        let saved = t.save_state();
        let suffix = [OpClass::Create, OpClass::Rename];
        let fires: Vec<bool> = suffix
            .iter()
            .map(|&c| t.observe(SimTime(2), &op(c)))
            .collect();
        assert_eq!(fires, vec![false, true]);

        t.load_state(&saved);
        let replayed: Vec<bool> = suffix
            .iter()
            .map(|&c| t.observe(SimTime(2), &op(c)))
            .collect();
        assert_eq!(replayed, fires, "restored state must replay identically");

        // And a state saved from a fresh trigger rewinds all progress.
        t.load_state(&make().save_state());
        for c in prefix {
            assert!(!t.observe(SimTime(3), &op(c)));
        }
        assert!(!t.observe(SimTime(3), &op(OpClass::Create)));
        assert!(t.observe(SimTime(3), &op(OpClass::Rename)));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn state_from_a_different_shape_is_rejected() {
        let mut t = Trigger::subseq(vec![OpClass::Create], 4);
        let other = Trigger::size_spread(4, 10.0).save_state();
        t.load_state(&other);
    }
}
