//! Cluster topology and physical data placement state.
//!
//! [`Cluster`] owns the management and storage nodes, their volumes, and
//! the map from file ids to physical replicas. It provides *primitive*
//! mutations (store/free/migrate bytes, add/remove nodes and volumes);
//! policy decisions — which volume receives data, when to rebalance — are
//! made by [`crate::sim::DfsSim`] using the flavor's placement policy and
//! balancer.

use crate::arena::{NodeArena, NodeHot, VolumeDirectory};
use crate::error::{SimError, SimResult};
use crate::loadstats::UtilTracker;
use crate::node::{MgmtNode, StorageNode, Volume};
use crate::placement::VolumeView;
use crate::types::{Bytes, NodeId, NodeRole, VolumeId};
use std::collections::BTreeMap;

/// One physical replica of a file's data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replica {
    /// The volume storing the replica.
    pub volume: VolumeId,
    /// Bytes actually stored (may be less than the file's logical size if a
    /// data-loss bug corrupted a migration).
    pub bytes: Bytes,
}

/// Physical metadata for one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileMeta {
    /// Placement key (hash of the path at creation; renames rehash it).
    pub key: u64,
    /// Replicas currently holding data.
    pub replicas: Vec<Replica>,
    /// DHT linkfile location: set when the file's data no longer lives at
    /// its hash location (GlusterFS semantics).
    pub linkfile_at: Option<VolumeId>,
}

/// Undo journal over the file map: one `(id, prior value)` record per
/// mutated file, newest last. `None` means the file did not exist. The
/// node/volume maps are small enough to checkpoint wholesale, so only
/// `files` (the one collection that grows with workload size) is
/// journaled. Disabled by default; the snapshot-fork engine enables it.
#[derive(Debug, Clone, Default)]
struct FilesJournal {
    enabled: bool,
    records: Vec<(crate::types::FileId, Option<FileMeta>)>,
}

/// A rewind point for the cluster: full clones of the small node/volume
/// maps plus a mark into the file-map undo journal.
#[derive(Debug, Clone)]
pub(crate) struct ClusterCheckpoint {
    mgmt: BTreeMap<NodeId, MgmtNode>,
    storage: NodeArena,
    volume_owner: VolumeDirectory,
    next_node: u32,
    next_volume: u32,
    generation: u64,
    files_mark: usize,
    util_stats: UtilTracker,
    online_storage_nodes: usize,
}

impl ClusterCheckpoint {
    /// The placement topology generation at checkpoint time.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }
}

/// The full cluster state.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    /// Management nodes by id. Stays a BTreeMap: clusters carry 2–5
    /// management nodes, so there is nothing for an arena to win, and the
    /// map keeps mgmt ids out of the storage arena's slot space accounting.
    pub mgmt: BTreeMap<NodeId, MgmtNode>,
    /// Storage nodes in an arena indexed by raw id, with SoA hot columns
    /// (see [`crate::arena`]). Iteration order is id order, exactly as the
    /// former BTreeMap.
    pub storage: NodeArena,
    /// Physical file metadata by file id (ordered for deterministic
    /// balancer planning). Private so every mutation is forced through a
    /// journaling accessor — direct writes would silently corrupt
    /// snapshot restores.
    files: BTreeMap<crate::types::FileId, FileMeta>,
    /// Owner node of each live volume (dense, indexed by raw volume id).
    pub volume_owner: VolumeDirectory,
    next_node: u32,
    next_volume: u32,
    /// Placement topology generation: bumped on every mutation that changes
    /// which volumes [`Cluster::volume_views`] returns (storage node or
    /// volume membership, capacities, online status). Fill-level changes do
    /// *not* bump it. Placement caches key off this counter.
    generation: u64,
    journal: FilesJournal,
    /// Streaming per-node utilization statistics (Σx, Σx², min/max over
    /// quantized fills). Every mutation that can change a storage node's
    /// utilization or eligibility refreshes its entry, making the
    /// imbalance ratio an O(1) read regardless of cluster size. See the
    /// incremental-variance contract in DESIGN.md; `audit` recomputes it
    /// from the node tables and fails on drift.
    util_stats: UtilTracker,
    /// Online storage node count, maintained by `add`/`remove`/`set_*` so
    /// liveness checks need no fleet walk.
    online_storage_nodes: usize,
    /// Cached canonical volume views (the no-fault, no-hotspot placement
    /// input). Valid while `views_built == Some(generation)`; fill-level
    /// mutations patch entries in place via `sync_view_used`, view-changing
    /// mutations invalidate by bumping `generation`.
    views_cache: Vec<VolumeView>,
    /// Position of each volume in `views_cache`, indexed by raw volume id
    /// (`u32::MAX` = not visible; valid when the cache is fresh).
    view_index: Vec<u32>,
    /// Generation `views_cache` was built at; `None` after a snapshot
    /// restore (divergent suffixes reuse generation numbers, so equality
    /// with `generation` would be a false match).
    views_built: Option<u64>,
    /// When set, fill mutations skip per-call tracker/view maintenance;
    /// [`Cluster::end_bulk_load`] rebuilds both exactly. Never true across
    /// a checkpoint.
    bulk_load: bool,
}

/// Slot value in `view_index` meaning "volume not in the cached views".
const NO_VIEW: u32 = u32::MAX;

impl Cluster {
    /// Creates an empty cluster (nodes are added by the simulator).
    pub fn new() -> Self {
        Cluster::default()
    }

    /// The current placement topology generation (see the field docs).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The streaming utilization statistics over eligible storage nodes
    /// (online, at least one volume, positive capacity) — the O(1) source
    /// for the storage imbalance ratio.
    pub fn util_stats(&self) -> &UtilTracker {
        &self.util_stats
    }

    /// Mutable access to a management node's load telemetry. Load
    /// counters live on the wholesale-checkpointed node maps (the undo
    /// journal only covers the file table) and feed no placement or
    /// tracker state, so the sim's traffic layer charges them through
    /// this accessor instead of reaching into the node tables.
    pub fn mgmt_load_mut(&mut self, id: NodeId) -> Option<&mut crate::metrics::NodeLoadAccount> {
        self.mgmt.get_mut(&id).map(|n| &mut n.load)
    }

    /// Mutable access to a storage node's load telemetry (see
    /// [`Cluster::mgmt_load_mut`]).
    pub fn storage_load_mut(&mut self, id: NodeId) -> Option<&mut crate::metrics::NodeLoadAccount> {
        self.storage.get_mut(&id).map(|n| &mut n.load)
    }

    /// Stamps a node's join time, whichever role owns the id; unknown
    /// ids are ignored. Join times on freshly added nodes are covered by
    /// the wholesale node-map checkpoint, not the file-table journal.
    pub fn note_joined(&mut self, id: NodeId, now: crate::types::SimTime) {
        if let Some(n) = self.mgmt.get_mut(&id) {
            n.joined = now;
        } else if let Some(n) = self.storage.get_mut(&id) {
            n.joined = now;
        }
    }

    /// Re-derives one storage node's hot columns and streaming-stats entry
    /// from its current volumes. Called by every mutation that can change
    /// the node's utilization or eligibility.
    fn refresh_node_stats(&mut self, id: NodeId) {
        self.storage.sync_hot(id);
        let q = self.storage.get(&id).and_then(|n| n.util_q());
        self.util_stats.update(id, q);
    }

    /// Refreshes the streaming stats and the cached canonical view for the
    /// node owning `vol`, after a fill-level mutation.
    fn touch_volume(&mut self, vol: VolumeId) {
        if self.bulk_load {
            return; // end_bulk_load rebuilds trackers and views exactly
        }
        if let Some(&owner) = self.volume_owner.get(&vol) {
            self.refresh_node_stats(owner);
        }
        self.sync_view_used(vol);
    }

    /// Patches `vol`'s entry in the canonical views cache, if fresh.
    fn sync_view_used(&mut self, vol: VolumeId) {
        if self.views_built != Some(self.generation) {
            return;
        }
        let Some(i) = self
            .view_index
            .get(vol.0 as usize)
            .copied()
            .filter(|&i| i != NO_VIEW)
        else {
            return;
        };
        if let Some(v) = self.volume(vol) {
            let (used, capacity) = (v.used, v.capacity);
            let view = &mut self.views_cache[i as usize];
            view.used = used;
            view.capacity = capacity;
        }
    }

    /// Enters bulk-load mode: fill mutations (store/free/migrate) skip the
    /// per-call streaming-stats and cached-view maintenance. Intended for
    /// the preload phase of scaled topologies, where touching the tracker
    /// per replica dominates wall time at 100k nodes. Must be paired with
    /// [`Cluster::end_bulk_load`] before anything reads the stats, views,
    /// or hot columns; topology mutations remain fully maintained.
    pub fn begin_bulk_load(&mut self) {
        self.bulk_load = true;
    }

    /// Leaves bulk-load mode, rebuilding the hot columns and streaming
    /// stats for every storage node from ground truth. The accumulators
    /// are exact integers, so the rebuilt state is identical to what
    /// per-mutation maintenance would have produced; the views cache is
    /// invalidated and rebuilt lazily.
    pub fn end_bulk_load(&mut self) {
        self.bulk_load = false;
        let ids: Vec<NodeId> = self.storage.keys().copied().collect();
        for id in ids {
            self.refresh_node_stats(id);
        }
        self.views_built = None;
    }

    /// The canonical volume views (every volume on online storage nodes),
    /// rebuilt lazily when the placement topology generation moved and
    /// patched in place on fill changes — O(1) amortized on the hot path,
    /// where the previous code rebuilt the full list every operation.
    pub fn canonical_views(&mut self) -> &[VolumeView] {
        if self.views_built != Some(self.generation) {
            let mut buf = std::mem::take(&mut self.views_cache);
            self.volume_views_into(&mut buf);
            self.views_cache = buf;
            self.view_index.clear();
            self.view_index.resize(self.next_volume as usize, NO_VIEW);
            for (i, v) in self.views_cache.iter().enumerate() {
                self.view_index[v.volume.0 as usize] = i as u32;
            }
            self.views_built = Some(self.generation);
        }
        &self.views_cache
    }

    /// Position of `vol` in [`Cluster::canonical_views`], if the cache is
    /// fresh and the volume is visible.
    pub(crate) fn view_pos(&self, vol: VolumeId) -> Option<usize> {
        if self.views_built != Some(self.generation) {
            return None;
        }
        self.view_index
            .get(vol.0 as usize)
            .copied()
            .filter(|&i| i != NO_VIEW)
            .map(|i| i as usize)
    }

    /// Speculatively bumps a cached view's fill during placement planning
    /// (so later fragments of the same request see earlier allocations),
    /// returning the previous value for exact rollback.
    pub(crate) fn bump_view_used(&mut self, pos: usize, bytes: Bytes) -> Bytes {
        let v = &mut self.views_cache[pos];
        let old = v.used;
        v.used = v.used.saturating_add(bytes);
        old
    }

    /// Rolls back a speculative [`Cluster::bump_view_used`].
    pub(crate) fn set_view_used(&mut self, pos: usize, used: Bytes) {
        self.views_cache[pos].used = used;
    }

    /// Read access to the physical file map.
    pub fn files(&self) -> &BTreeMap<crate::types::FileId, FileMeta> {
        &self.files
    }

    /// Mutable access to one file's metadata, journaled.
    pub(crate) fn file_mut(&mut self, fid: crate::types::FileId) -> Option<&mut FileMeta> {
        self.note_file(fid);
        self.files.get_mut(&fid)
    }

    /// Records a file's pre-mutation state in the undo journal.
    fn note_file(&mut self, fid: crate::types::FileId) {
        if self.journal.enabled {
            self.journal
                .records
                .push((fid, self.files.get(&fid).cloned()));
        }
    }

    /// Turns undo journaling on or off, dropping any recorded history.
    pub(crate) fn set_journaling(&mut self, on: bool) {
        self.journal.enabled = on;
        self.journal.records.clear();
    }

    /// Captures the state needed to rewind back to this point. Only valid
    /// while journaling is enabled.
    pub(crate) fn checkpoint(&self) -> ClusterCheckpoint {
        debug_assert!(!self.bulk_load, "checkpoint during bulk load");
        ClusterCheckpoint {
            mgmt: self.mgmt.clone(),
            storage: self.storage.clone(),
            volume_owner: self.volume_owner.clone(),
            next_node: self.next_node,
            next_volume: self.next_volume,
            generation: self.generation,
            files_mark: self.journal.records.len(),
            util_stats: self.util_stats.clone(),
            online_storage_nodes: self.online_storage_nodes,
        }
    }

    /// Rewinds to the state captured by `cp`: undoes journaled file-map
    /// records newest-first and restores the wholesale-cloned node maps.
    /// Checkpoints deeper than `cp` become invalid.
    pub(crate) fn restore_to(&mut self, cp: &ClusterCheckpoint) {
        debug_assert!(self.journal.enabled, "restore without journaling");
        while self.journal.records.len() > cp.files_mark {
            let (fid, old) = self.journal.records.pop().expect("mark <= len");
            match old {
                Some(meta) => {
                    self.files.insert(fid, meta);
                }
                None => {
                    self.files.remove(&fid);
                }
            }
        }
        self.mgmt.clone_from(&cp.mgmt);
        self.storage.clone_from(&cp.storage);
        self.volume_owner.clone_from(&cp.volume_owner);
        self.next_node = cp.next_node;
        self.next_volume = cp.next_volume;
        self.generation = cp.generation;
        self.util_stats.clone_from(&cp.util_stats);
        self.online_storage_nodes = cp.online_storage_nodes;
        // Divergent suffixes reuse generation numbers, so a fresh-looking
        // cache could describe the abandoned branch: force a rebuild.
        self.views_built = None;
    }

    /// Adds a management node with the given core count.
    pub fn add_mgmt(&mut self, cores: u32) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.mgmt.insert(
            id,
            MgmtNode {
                id,
                online: true,
                cores,
                load: Default::default(),
                joined: Default::default(),
            },
        );
        id
    }

    /// Removes a management node. Fails if it is the last online one.
    pub fn remove_mgmt(&mut self, id: NodeId) -> SimResult<()> {
        if !self.mgmt.contains_key(&id) {
            return Err(SimError::NoSuchNode(id));
        }
        if self.mgmt.values().filter(|m| m.online).count() <= 1 {
            return Err(SimError::LastNode(id));
        }
        self.mgmt.remove(&id);
        Ok(())
    }

    /// Adds a storage node with `volumes` volumes of `capacity` bytes each.
    pub fn add_storage(&mut self, volumes: u32, capacity: Bytes) -> (NodeId, Vec<VolumeId>) {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let mut vols = Vec::with_capacity(volumes as usize);
        let mut vol_ids = Vec::with_capacity(volumes as usize);
        for _ in 0..volumes.max(1) {
            let vid = VolumeId(self.next_volume);
            self.next_volume += 1;
            vols.push(Volume {
                id: vid,
                capacity,
                used: 0,
            });
            self.volume_owner.insert(vid, id);
            vol_ids.push(vid);
        }
        self.storage.insert(
            id,
            StorageNode {
                id,
                online: true,
                volumes: vols,
                load: Default::default(),
                joined: Default::default(),
            },
        );
        self.generation += 1;
        self.online_storage_nodes += 1;
        self.refresh_node_stats(id);
        (id, vol_ids)
    }

    /// Removes a storage node, returning every replica that was stored on
    /// it (the simulator re-places or loses them). Fails if it is the last
    /// online storage node.
    pub fn remove_storage(
        &mut self,
        id: NodeId,
    ) -> SimResult<Vec<(crate::types::FileId, Replica)>> {
        if !self.storage.contains_key(&id) {
            return Err(SimError::NoSuchNode(id));
        }
        if self.online_storage_nodes <= 1 {
            return Err(SimError::LastNode(id));
        }
        let node = self.storage.remove(&id).expect("checked above");
        let dead_vols: Vec<VolumeId> = node.volumes.iter().map(|v| v.id).collect();
        for v in &dead_vols {
            self.volume_owner.remove(v);
        }
        self.generation += 1;
        if node.online {
            self.online_storage_nodes -= 1;
        }
        self.util_stats.update(id, None);
        Ok(self.strip_replicas(&dead_vols))
    }

    /// Detaches the replicas living on the given volumes from the file map
    /// and returns them.
    fn strip_replicas(&mut self, vols: &[VolumeId]) -> Vec<(crate::types::FileId, Replica)> {
        let mut displaced = Vec::new();
        // Disjoint field borrows: the journal is filled while the file map
        // is iterated mutably.
        let (files, journal) = (&mut self.files, &mut self.journal);
        for (fid, meta) in files.iter_mut() {
            let affected = meta.replicas.iter().any(|r| vols.contains(&r.volume))
                || meta.linkfile_at.is_some_and(|v| vols.contains(&v));
            if !affected {
                continue;
            }
            if journal.enabled {
                journal.records.push((*fid, Some(meta.clone())));
            }
            let mut i = 0;
            while i < meta.replicas.len() {
                if vols.contains(&meta.replicas[i].volume) {
                    displaced.push((*fid, meta.replicas.remove(i)));
                } else {
                    i += 1;
                }
            }
            if meta.linkfile_at.is_some_and(|v| vols.contains(&v)) {
                meta.linkfile_at = None;
            }
        }
        displaced
    }

    /// Attaches a new volume to a storage node.
    pub fn add_volume(&mut self, node: NodeId, capacity: Bytes) -> SimResult<VolumeId> {
        let n = self
            .storage
            .get_mut(&node)
            .ok_or(SimError::NoSuchNode(node))?;
        let vid = VolumeId(self.next_volume);
        self.next_volume += 1;
        n.volumes.push(Volume {
            id: vid,
            capacity,
            used: 0,
        });
        self.volume_owner.insert(vid, node);
        self.generation += 1;
        self.refresh_node_stats(node);
        Ok(vid)
    }

    /// Detaches a volume, returning its displaced replicas. Fails if it is
    /// the only volume left in the cluster.
    pub fn remove_volume(
        &mut self,
        vol: VolumeId,
    ) -> SimResult<Vec<(crate::types::FileId, Replica)>> {
        let owner = *self
            .volume_owner
            .get(&vol)
            .ok_or(SimError::NoSuchVolume(vol))?;
        let live_volumes: usize = self.storage.values().map(|n| n.volumes.len()).sum();
        if live_volumes <= 1 {
            return Err(SimError::LastNode(owner));
        }
        let node = self.storage.get_mut(&owner).expect("owner map consistent");
        node.volumes.retain(|v| v.id != vol);
        self.volume_owner.remove(&vol);
        self.generation += 1;
        self.refresh_node_stats(owner);
        Ok(self.strip_replicas(&[vol]))
    }

    /// Grows a volume by `delta` bytes.
    pub fn expand_volume(&mut self, vol: VolumeId, delta: Bytes) -> SimResult<()> {
        let v = self.volume_mut(vol)?;
        v.capacity = v.capacity.saturating_add(delta);
        self.generation += 1;
        self.touch_volume(vol);
        Ok(())
    }

    /// Shrinks a volume by `delta` bytes; fails if stored data would no
    /// longer fit.
    pub fn reduce_volume(&mut self, vol: VolumeId, delta: Bytes) -> SimResult<()> {
        let v = self.volume_mut(vol)?;
        let new_cap = v.capacity.saturating_sub(delta);
        if v.used > new_cap {
            return Err(SimError::VolumeBusy {
                volume: vol,
                used: v.used,
                requested_capacity: new_cap,
            });
        }
        v.capacity = new_cap;
        self.generation += 1;
        self.touch_volume(vol);
        Ok(())
    }

    fn volume_mut(&mut self, vol: VolumeId) -> SimResult<&mut Volume> {
        let owner = *self
            .volume_owner
            .get(&vol)
            .ok_or(SimError::NoSuchVolume(vol))?;
        self.storage
            .get_mut(&owner)
            .and_then(|n| n.volume_mut(vol))
            .ok_or(SimError::NoSuchVolume(vol))
    }

    /// Shared access to a volume.
    pub fn volume(&self, vol: VolumeId) -> Option<&Volume> {
        let owner = self.volume_owner.get(&vol)?;
        self.storage.get(owner)?.volume(vol)
    }

    /// Views of every volume on online storage nodes, for placement.
    pub fn volume_views(&self) -> Vec<VolumeView> {
        let mut views = Vec::new();
        self.volume_views_into(&mut views);
        views
    }

    /// Allocation-free variant of [`Cluster::volume_views`]: clears and
    /// refills `views`, reusing its capacity. The hot path calls this with
    /// a long-lived buffer once per executed operation.
    pub fn volume_views_into(&self, views: &mut Vec<VolumeView>) {
        views.clear();
        for node in self.storage.values().filter(|n| n.online) {
            for v in &node.volumes {
                views.push(VolumeView {
                    volume: v.id,
                    node: node.id,
                    capacity: v.capacity,
                    used: v.used,
                    online: true,
                });
            }
        }
    }

    /// Stores `bytes` of file `fid` on `vol` as a new replica.
    pub fn store(
        &mut self,
        fid: crate::types::FileId,
        vol: VolumeId,
        bytes: Bytes,
    ) -> SimResult<()> {
        let v = self.volume_mut(vol)?;
        if v.free() < bytes {
            return Err(SimError::OutOfSpace {
                requested: bytes,
                free: v.free(),
            });
        }
        v.used += bytes;
        self.note_file(fid);
        self.files
            .entry(fid)
            .or_default()
            .replicas
            .push(Replica { volume: vol, bytes });
        self.touch_volume(vol);
        Ok(())
    }

    /// Frees every replica of a file and removes its metadata.
    pub fn free_file(&mut self, fid: crate::types::FileId) -> Bytes {
        self.note_file(fid);
        let Some(meta) = self.files.remove(&fid) else {
            return 0;
        };
        let mut freed = 0;
        let mut touched: Vec<VolumeId> = Vec::new();
        for r in meta.replicas {
            if let Ok(v) = self.volume_mut(r.volume) {
                v.used = v.used.saturating_sub(r.bytes);
                freed += r.bytes;
                if !touched.contains(&r.volume) {
                    touched.push(r.volume);
                }
            }
        }
        for vol in touched {
            self.touch_volume(vol);
        }
        freed
    }

    /// Rescales every fragment of `fid` proportionally for a logical resize
    /// from `old_size` to `new_size` bytes.
    ///
    /// Fragment sizes are multiplied by `new_size / old_size`, so a striped
    /// file keeps its distribution shape. Fails with `OutOfSpace` if any
    /// fragment's volume cannot absorb its growth; on failure nothing is
    /// changed.
    pub fn rescale_file(
        &mut self,
        fid: crate::types::FileId,
        old_size: Bytes,
        new_size: Bytes,
    ) -> SimResult<()> {
        if old_size == new_size {
            return Ok(());
        }
        let meta = match self.files.get(&fid) {
            Some(m) => m.clone(),
            None => return Ok(()), // file had no physical placement
        };
        let scale = |bytes: Bytes| -> Bytes {
            if old_size == 0 {
                0
            } else {
                ((bytes as u128 * new_size as u128) / old_size as u128) as Bytes
            }
        };
        // Validate growth first so the whole rescale is atomic.
        for r in &meta.replicas {
            let target = scale(r.bytes);
            if target > r.bytes {
                let grow = target - r.bytes;
                let v = self
                    .volume(r.volume)
                    .ok_or(SimError::NoSuchVolume(r.volume))?;
                if v.free() < grow {
                    return Err(SimError::OutOfSpace {
                        requested: grow,
                        free: v.free(),
                    });
                }
            }
        }
        let mut touched: Vec<VolumeId> = Vec::new();
        for r in &meta.replicas {
            let target = scale(r.bytes);
            let old = r.bytes;
            let v = self.volume_mut(r.volume)?;
            v.used = v.used - old + target;
            if !touched.contains(&r.volume) {
                touched.push(r.volume);
            }
        }
        for vol in touched {
            self.touch_volume(vol);
        }
        self.note_file(fid);
        if let Some(m) = self.files.get_mut(&fid) {
            for r in &mut m.replicas {
                r.bytes = scale(r.bytes);
            }
            m.replicas.retain(|r| r.bytes > 0);
        }
        Ok(())
    }

    /// Moves one replica of `fid` from `from` to `to`, storing `kept`
    /// bytes at the destination (normally the full replica; less when a
    /// data-loss effect corrupts the migration). Returns the bytes freed at
    /// the source.
    pub fn migrate(
        &mut self,
        fid: crate::types::FileId,
        from: VolumeId,
        to: VolumeId,
        kept: Bytes,
    ) -> SimResult<Bytes> {
        let meta = self
            .files
            .get(&fid)
            .ok_or(SimError::NoSuchPath(format!("{fid}")))?;
        let idx = meta
            .replicas
            .iter()
            .position(|r| r.volume == from)
            .ok_or(SimError::NoSuchVolume(from))?;
        let moved = meta.replicas[idx].bytes;
        let kept = kept.min(moved);
        {
            let dest = self.volume_mut(to)?;
            if dest.free() < kept {
                return Err(SimError::OutOfSpace {
                    requested: kept,
                    free: dest.free(),
                });
            }
            dest.used += kept;
        }
        {
            let src = self.volume_mut(from)?;
            src.used = src.used.saturating_sub(moved);
        }
        self.note_file(fid);
        let meta = self.files.get_mut(&fid).expect("checked above");
        meta.replicas[idx] = Replica {
            volume: to,
            bytes: kept,
        };
        self.touch_volume(to);
        self.touch_volume(from);
        Ok(moved)
    }

    // ------------------------------------------------------------------
    // Migration micro-steps
    //
    // [`Cluster::migrate`] above is the atomic fast path the normal
    // simulation loop uses. The crash-point explorer instead drives a
    // migration through the same state transitions as enumerable
    // micro-operations — per-fragment destination copies, the file-table
    // commit, and the source-space reclaim — so a deterministic crash can
    // land *between* any two of them. Composing the full sequence with no
    // crash yields byte-identical cluster state to the atomic path (there
    // is a differential test pinning this).
    // ------------------------------------------------------------------

    /// Copies `bytes` of migrating data onto `to` without touching the
    /// file table: the mid-copy state of a real migration, where the
    /// source replica stays authoritative. Fails (state untouched) if the
    /// destination lacks the space.
    pub fn migrate_copy(&mut self, to: VolumeId, bytes: Bytes) -> SimResult<()> {
        let dest = self.volume_mut(to)?;
        if dest.free() < bytes {
            return Err(SimError::OutOfSpace {
                requested: bytes,
                free: dest.free(),
            });
        }
        dest.used += bytes;
        self.touch_volume(to);
        Ok(())
    }

    /// Releases `bytes` previously landed by [`Cluster::migrate_copy`]:
    /// the rollback a *correct* crash recovery performs when the copy
    /// never committed.
    pub fn migrate_rollback_copy(&mut self, to: VolumeId, bytes: Bytes) {
        if let Ok(dest) = self.volume_mut(to) {
            dest.used = dest.used.saturating_sub(bytes);
            self.touch_volume(to);
        }
    }

    /// Commits the file-table side of a migration: the replica of `fid`
    /// on `from` is re-pointed at `to` holding `kept` bytes. Returns the
    /// source replica's former size, which the caller must reclaim with
    /// [`Cluster::migrate_commit_account`] — between the two calls the
    /// moved bytes are counted on both ends, exactly the double-count
    /// window of a real two-phase migration.
    pub fn migrate_commit_swap(
        &mut self,
        fid: crate::types::FileId,
        from: VolumeId,
        to: VolumeId,
        kept: Bytes,
    ) -> SimResult<Bytes> {
        let meta = self
            .files
            .get(&fid)
            .ok_or(SimError::NoSuchPath(format!("{fid}")))?;
        let idx = meta
            .replicas
            .iter()
            .position(|r| r.volume == from)
            .ok_or(SimError::NoSuchVolume(from))?;
        let moved = meta.replicas[idx].bytes;
        self.note_file(fid);
        let meta = self.files.get_mut(&fid).expect("checked above");
        meta.replicas[idx] = Replica {
            volume: to,
            bytes: kept,
        };
        Ok(moved)
    }

    /// Reclaims the source space of a committed migration (`moved` bytes
    /// freed on `from`), completing what
    /// [`Cluster::migrate_commit_swap`] started.
    pub fn migrate_commit_account(&mut self, from: VolumeId, moved: Bytes) {
        if let Ok(src) = self.volume_mut(from) {
            src.used = src.used.saturating_sub(moved);
            self.touch_volume(from);
        }
    }

    /// Bytes of `vol`'s incremental `used` counter accounted for by the
    /// file table — the from-first-principles number [`Cluster::audit`]
    /// compares against. The crash-consistency oracle uses the per-volume
    /// form to classify which end of an interrupted migration leaked.
    pub fn recomputed_used(&self, vol: VolumeId) -> Bytes {
        self.files
            .values()
            .flat_map(|m| m.replicas.iter())
            .filter(|r| r.volume == vol)
            .map(|r| r.bytes)
            .sum()
    }

    /// Bytes stored per online storage node with at least one volume.
    ///
    /// Diskless nodes (all volumes detached) are excluded: they are out of
    /// the storage pool and neither hold nor can receive data. Walks the
    /// contiguous hot columns, not the node structs.
    pub fn node_storage(&self) -> Vec<(NodeId, Bytes)> {
        self.storage
            .hot_iter()
            .filter(|(_, h)| h.online && h.volumes > 0)
            .map(|(id, h)| (id, h.used))
            .collect()
    }

    /// Per-node (used, capacity) for online storage nodes with volumes.
    pub fn node_fill(&self) -> Vec<(NodeId, Bytes, Bytes)> {
        self.storage
            .hot_iter()
            .filter(|(_, h)| h.online && h.volumes > 0)
            .map(|(id, h)| (id, h.used, h.capacity))
            .collect()
    }

    /// Total free bytes across online storage nodes (hot-column scan).
    pub fn total_free(&self) -> Bytes {
        self.storage
            .hot_rows()
            .iter()
            .filter(|h| h.online)
            .map(|h| h.capacity.saturating_sub(h.used))
            .sum()
    }

    /// Total capacity across online storage nodes (hot-column scan).
    pub fn total_capacity(&self) -> Bytes {
        self.storage
            .hot_rows()
            .iter()
            .filter(|h| h.online)
            .map(|h| h.capacity)
            .sum()
    }

    /// Total bytes stored across online storage nodes (hot-column scan).
    pub fn total_used(&self) -> Bytes {
        self.storage
            .hot_rows()
            .iter()
            .filter(|h| h.online)
            .map(|h| h.used)
            .sum()
    }

    /// Online management nodes, in id order.
    pub fn online_mgmt(&self) -> Vec<NodeId> {
        self.mgmt
            .values()
            .filter(|m| m.online)
            .map(|m| m.id)
            .collect()
    }

    /// Online storage nodes, in id order.
    pub fn online_storage(&self) -> Vec<NodeId> {
        self.storage
            .values()
            .filter(|s| s.online)
            .map(|s| s.id)
            .collect()
    }

    /// Whether any management node is online (allocation-free).
    pub fn has_online_mgmt(&self) -> bool {
        self.mgmt.values().any(|m| m.online)
    }

    /// Whether any storage node is online. O(1): reads the maintained
    /// online count instead of walking the fleet.
    pub fn has_online_storage(&self) -> bool {
        self.online_storage_nodes > 0
    }

    /// Number of online storage nodes (O(1), incrementally maintained).
    pub fn online_storage_count(&self) -> usize {
        self.online_storage_nodes
    }

    /// Number of online management nodes (allocation-free).
    pub fn online_mgmt_count(&self) -> usize {
        self.mgmt.values().filter(|m| m.online).count()
    }

    /// The `i`-th online management node in id order (allocation-free).
    pub fn nth_online_mgmt(&self, i: usize) -> Option<NodeId> {
        self.mgmt.values().filter(|m| m.online).nth(i).map(|m| m.id)
    }

    /// Ids of every node (for inventory reporting).
    pub fn node_ids(&self) -> Vec<(NodeId, NodeRole, bool)> {
        let mut out: Vec<(NodeId, NodeRole, bool)> = self
            .mgmt
            .values()
            .map(|m| (m.id, NodeRole::Management, m.online))
            .chain(
                self.storage
                    .values()
                    .map(|s| (s.id, NodeRole::Storage, s.online)),
            )
            .collect();
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// Marks a node offline (crash) without removing it.
    pub fn set_offline(&mut self, id: NodeId) {
        if let Some(n) = self.storage.get_mut(&id) {
            if n.online {
                n.online = false;
                // Offline storage nodes drop out of `volume_views`.
                self.generation += 1;
                self.online_storage_nodes -= 1;
                // util_q is None offline, so this removes the tracker
                // entry and flips the hot row in one refresh.
                self.refresh_node_stats(id);
            }
        }
        if let Some(n) = self.mgmt.get_mut(&id) {
            n.online = false;
        }
    }

    /// Brings a previously offline node back (restart after a crash); its
    /// data survived the outage.
    pub fn set_online(&mut self, id: NodeId) {
        if let Some(n) = self.storage.get_mut(&id) {
            if !n.online {
                n.online = true;
                // The node's volumes re-enter `volume_views`.
                self.generation += 1;
                self.online_storage_nodes += 1;
                self.refresh_node_stats(id);
            }
        }
        if let Some(n) = self.mgmt.get_mut(&id) {
            n.online = true;
        }
    }

    /// Collapses every volume's free space on a storage node to zero
    /// (disk-full fault): existing data stays readable but nothing more
    /// fits. Returns whether anything changed.
    pub fn set_volumes_full(&mut self, id: NodeId) -> bool {
        let Some(n) = self.storage.get_mut(&id) else {
            return false;
        };
        let mut changed = false;
        for v in &mut n.volumes {
            if v.capacity != v.used {
                v.capacity = v.used;
                changed = true;
            }
        }
        if changed {
            // Free-space-driven placement must see the shrunk capacities.
            self.generation += 1;
            self.refresh_node_stats(id);
        }
        changed
    }

    /// First-principles audit of the incremental storage accounting.
    ///
    /// Every byte counter in the cluster is maintained incrementally
    /// (`store`/`free_file`/`rescale_file`/`migrate` adjust `Volume::used`
    /// in place, and snapshot restores rewind those adjustments through the
    /// undo journal). This recomputes the per-volume totals from the one
    /// ground truth — the file table — and cross-checks:
    ///
    /// * each volume's `used` equals the sum of replica bytes placed on it;
    /// * `used` never exceeds `capacity`;
    /// * every replica lands on a volume some storage node actually holds;
    /// * `volume_owner` and the per-node volume lists agree both ways.
    ///
    /// Returns a description of the first inconsistency found. Debug builds
    /// run this automatically after every snapshot-fork restore (see
    /// `DfsSim::restore`), guarding the undo log against drift.
    pub fn audit(&self) -> Result<(), String> {
        let mut recomputed: BTreeMap<VolumeId, Bytes> = BTreeMap::new();
        for (fid, meta) in &self.files {
            for r in &meta.replicas {
                let Some(owner) = self.volume_owner.get(&r.volume) else {
                    return Err(format!(
                        "file {fid:?} has a replica on unknown volume {:?}",
                        r.volume
                    ));
                };
                if !self.storage.contains_key(owner) {
                    return Err(format!(
                        "volume {:?} is owned by {owner:?}, which is not a storage node",
                        r.volume
                    ));
                }
                *recomputed.entry(r.volume).or_insert(0) += r.bytes;
            }
        }
        let mut vols_seen = 0usize;
        for (nid, node) in &self.storage {
            for v in &node.volumes {
                vols_seen += 1;
                if self.volume_owner.get(&v.id) != Some(nid) {
                    return Err(format!(
                        "volume {:?} listed on node {nid:?} but volume_owner says {:?}",
                        v.id,
                        self.volume_owner.get(&v.id)
                    ));
                }
                let expect = recomputed.get(&v.id).copied().unwrap_or(0);
                if v.used != expect {
                    return Err(format!(
                        "volume {:?} on node {nid:?}: incremental used = {} bytes \
                         but the file table accounts for {} bytes",
                        v.id, v.used, expect
                    ));
                }
                if v.used > v.capacity {
                    return Err(format!(
                        "volume {:?} on node {nid:?}: used {} exceeds capacity {}",
                        v.id, v.used, v.capacity
                    ));
                }
            }
        }
        if vols_seen != self.volume_owner.len() {
            return Err(format!(
                "volume_owner tracks {} volumes but storage nodes hold {}",
                self.volume_owner.len(),
                vols_seen
            ));
        }
        // The streaming utilization stats and the online count are
        // maintained incrementally at every mutation site; rebuild both
        // from the node tables and fail on any drift.
        let mut fresh = UtilTracker::new();
        let mut online = 0usize;
        for (nid, node) in &self.storage {
            if node.online {
                online += 1;
            }
            if let Some(q) = node.util_q() {
                fresh.update(*nid, Some(q));
            }
        }
        if fresh != self.util_stats {
            return Err(format!(
                "streaming utilization stats drifted from the node tables: \
                 tracked {} nodes Σq={} but recomputation gives {} nodes Σq={}",
                self.util_stats.count(),
                self.util_stats.sum_q(),
                fresh.count(),
                fresh.sum_q()
            ));
        }
        if online != self.online_storage_nodes {
            return Err(format!(
                "online storage count drifted: tracked {} but {} nodes are online",
                self.online_storage_nodes, online
            ));
        }
        // The SoA hot columns (online/volumes/used/capacity per arena slot)
        // feed totals and placement scans; recompute every row from the
        // node structs and require empty slots to hold the default row.
        let hot = self.storage.hot_rows();
        for (nid, node) in &self.storage {
            let want = NodeHot::of(node);
            let got = hot.get(nid.0 as usize).copied().unwrap_or_default();
            if got != want {
                return Err(format!(
                    "hot columns drifted for node {nid:?}: row {got:?} \
                     but the node recomputes to {want:?}"
                ));
            }
        }
        for (i, row) in hot.iter().enumerate() {
            if self.storage.get(&NodeId(i as u32)).is_none() && *row != NodeHot::default() {
                return Err(format!(
                    "empty arena slot {i} holds a non-default hot row {row:?}"
                ));
            }
        }
        // A fresh canonical-views cache must agree with a from-scratch
        // rebuild (fill mutations patch it in place).
        if self.views_built == Some(self.generation) {
            let rebuilt = self.volume_views();
            if rebuilt != self.views_cache {
                return Err(format!(
                    "canonical views cache drifted: {} cached vs {} rebuilt entries, \
                     first mismatch {:?}",
                    self.views_cache.len(),
                    rebuilt.len(),
                    rebuilt
                        .iter()
                        .zip(&self.views_cache)
                        .find(|(a, b)| a != b)
                        .map(|(a, _)| a.volume)
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileId;

    fn cluster_with(nodes: u32, vols_per: u32, cap: Bytes) -> Cluster {
        let mut c = Cluster::new();
        c.add_mgmt(6);
        for _ in 0..nodes {
            c.add_storage(vols_per, cap);
        }
        c
    }

    #[test]
    fn store_and_free_conserve_bytes() {
        let mut c = cluster_with(3, 1, 1000);
        let vid = c.volume_views()[0].volume;
        c.store(FileId(1), vid, 400).unwrap();
        assert_eq!(c.total_used(), 400);
        assert_eq!(c.free_file(FileId(1)), 400);
        assert_eq!(c.total_used(), 0);
    }

    #[test]
    fn store_rejects_overflow() {
        let mut c = cluster_with(1, 1, 100);
        let vid = c.volume_views()[0].volume;
        assert!(matches!(
            c.store(FileId(1), vid, 200),
            Err(SimError::OutOfSpace { .. })
        ));
        assert_eq!(c.total_used(), 0);
    }

    #[test]
    fn migrate_moves_bytes_between_volumes() {
        let mut c = cluster_with(2, 1, 1000);
        let views = c.volume_views();
        let (a, b) = (views[0].volume, views[1].volume);
        c.store(FileId(1), a, 300).unwrap();
        let moved = c.migrate(FileId(1), a, b, 300).unwrap();
        assert_eq!(moved, 300);
        assert_eq!(c.volume(a).unwrap().used, 0);
        assert_eq!(c.volume(b).unwrap().used, 300);
        assert_eq!(c.files[&FileId(1)].replicas[0].volume, b);
    }

    #[test]
    fn lossy_migration_sheds_bytes() {
        let mut c = cluster_with(2, 1, 1000);
        let views = c.volume_views();
        let (a, b) = (views[0].volume, views[1].volume);
        c.store(FileId(1), a, 300).unwrap();
        c.migrate(FileId(1), a, b, 100).unwrap();
        assert_eq!(c.total_used(), 100, "200 bytes were lost in migration");
        assert_eq!(c.files[&FileId(1)].replicas[0].bytes, 100);
    }

    #[test]
    fn remove_storage_returns_displaced_replicas() {
        let mut c = cluster_with(2, 1, 1000);
        let views = c.volume_views();
        let (a_vol, a_node) = (views[0].volume, views[0].node);
        c.store(FileId(1), a_vol, 250).unwrap();
        let displaced = c.remove_storage(a_node).unwrap();
        assert_eq!(displaced.len(), 1);
        assert_eq!(displaced[0].0, FileId(1));
        assert_eq!(displaced[0].1.bytes, 250);
        assert!(c.files[&FileId(1)].replicas.is_empty());
    }

    #[test]
    fn cannot_remove_last_storage_node() {
        let mut c = cluster_with(1, 1, 1000);
        let node = c.online_storage()[0];
        assert!(matches!(c.remove_storage(node), Err(SimError::LastNode(_))));
    }

    #[test]
    fn cannot_remove_last_mgmt_node() {
        let mut c = cluster_with(1, 1, 1000);
        let m = c.online_mgmt()[0];
        assert!(matches!(c.remove_mgmt(m), Err(SimError::LastNode(_))));
    }

    #[test]
    fn reduce_volume_respects_stored_data() {
        let mut c = cluster_with(1, 1, 1000);
        let vid = c.volume_views()[0].volume;
        c.store(FileId(1), vid, 600).unwrap();
        assert!(matches!(
            c.reduce_volume(vid, 500),
            Err(SimError::VolumeBusy { .. })
        ));
        c.reduce_volume(vid, 300).unwrap();
        assert_eq!(c.volume(vid).unwrap().capacity, 700);
    }

    #[test]
    fn expand_volume_grows_capacity() {
        let mut c = cluster_with(1, 1, 1000);
        let vid = c.volume_views()[0].volume;
        c.expand_volume(vid, 500).unwrap();
        assert_eq!(c.volume(vid).unwrap().capacity, 1500);
        assert_eq!(c.total_capacity(), 1500);
    }

    #[test]
    fn rescale_file_scales_fragments_proportionally() {
        let mut c = cluster_with(2, 1, 10_000);
        let views = c.volume_views();
        // A striped file: 100 B on one volume, 300 B on another (logical
        // size 400, single copy).
        c.store(FileId(1), views[0].volume, 100).unwrap();
        c.store(FileId(1), views[1].volume, 300).unwrap();
        c.rescale_file(FileId(1), 400, 800).unwrap();
        assert_eq!(c.files[&FileId(1)].replicas[0].bytes, 200);
        assert_eq!(c.files[&FileId(1)].replicas[1].bytes, 600);
        c.rescale_file(FileId(1), 800, 200).unwrap();
        assert_eq!(c.total_used(), 200);
    }

    #[test]
    fn rescale_file_growth_is_atomic() {
        let mut c = cluster_with(2, 1, 300);
        let views = c.volume_views();
        c.store(FileId(1), views[0].volume, 100).unwrap();
        c.store(FileId(1), views[1].volume, 100).unwrap();
        // Fill volume 1 so growth fails there.
        c.store(FileId(2), views[1].volume, 180).unwrap();
        assert!(c.rescale_file(FileId(1), 100, 250).is_err());
        // Nothing changed.
        assert_eq!(c.files[&FileId(1)].replicas[0].bytes, 100);
        assert_eq!(c.files[&FileId(1)].replicas[1].bytes, 100);
    }

    #[test]
    fn rescale_to_zero_drops_fragments() {
        let mut c = cluster_with(2, 1, 1000);
        let views = c.volume_views();
        c.store(FileId(1), views[0].volume, 100).unwrap();
        c.rescale_file(FileId(1), 100, 0).unwrap();
        assert_eq!(c.total_used(), 0);
        assert!(c.files[&FileId(1)].replicas.is_empty());
    }

    #[test]
    fn remove_volume_displaces_data_and_clears_linkfile() {
        let mut c = cluster_with(2, 2, 1000);
        let views = c.volume_views();
        let v0 = views[0].volume;
        c.store(FileId(1), v0, 100).unwrap();
        // detlint:allow(journal-coverage): test seeds a stale linkfile directly; journaling is off in unit tests
        c.files.get_mut(&FileId(1)).unwrap().linkfile_at = Some(v0);
        let displaced = c.remove_volume(v0).unwrap();
        assert_eq!(displaced.len(), 1);
        assert_eq!(c.files[&FileId(1)].linkfile_at, None);
        assert!(c.volume(v0).is_none());
    }

    #[test]
    fn set_offline_hides_node_from_views() {
        let mut c = cluster_with(2, 1, 1000);
        let node = c.online_storage()[0];
        assert_eq!(c.volume_views().len(), 2);
        c.set_offline(node);
        assert_eq!(c.volume_views().len(), 1);
        assert_eq!(c.online_storage().len(), 1);
    }

    #[test]
    fn generation_tracks_view_changing_mutations_only() {
        let mut c = cluster_with(2, 1, 1000);
        let g0 = c.generation();
        // Fill-level changes do not bump the generation.
        let vid = c.volume_views()[0].volume;
        c.store(FileId(1), vid, 100).unwrap();
        c.free_file(FileId(1));
        c.add_mgmt(4);
        assert_eq!(c.generation(), g0);
        // Every view-changing mutation bumps it.
        let (node, _) = c.add_storage(1, 1000);
        assert_eq!(c.generation(), g0 + 1);
        let v = c.add_volume(node, 1000).unwrap();
        assert_eq!(c.generation(), g0 + 2);
        c.expand_volume(v, 10).unwrap();
        assert_eq!(c.generation(), g0 + 3);
        c.reduce_volume(v, 10).unwrap();
        assert_eq!(c.generation(), g0 + 4);
        c.remove_volume(v).unwrap();
        assert_eq!(c.generation(), g0 + 5);
        c.set_offline(node);
        assert_eq!(c.generation(), g0 + 6);
        let other = c.online_storage()[0];
        assert!(c.remove_storage(other).is_err() || c.generation() > g0 + 6);
        // Failed mutations leave the counter alone.
        let g = c.generation();
        assert!(c.add_volume(NodeId(9999), 10).is_err());
        assert_eq!(c.generation(), g);
    }

    #[test]
    fn volume_views_into_matches_allocating_variant() {
        let mut c = cluster_with(3, 2, 1000);
        let vid = c.volume_views()[2].volume;
        c.store(FileId(7), vid, 123).unwrap();
        let mut buf = vec![VolumeView {
            volume: VolumeId(999),
            node: NodeId(999),
            capacity: 0,
            used: 0,
            online: false,
        }];
        c.volume_views_into(&mut buf);
        assert_eq!(buf, c.volume_views());
    }

    #[test]
    fn node_ids_lists_everyone() {
        let c = cluster_with(2, 1, 1000);
        let ids = c.node_ids();
        assert_eq!(ids.len(), 3);
        assert_eq!(
            ids.iter()
                .filter(|(_, r, _)| *r == NodeRole::Management)
                .count(),
            1
        );
    }

    #[test]
    fn checkpoint_rewinds_file_and_topology_mutations() {
        let mut c = cluster_with(2, 1, 10_000);
        let views = c.volume_views();
        let (a, b) = (views[0].volume, views[1].volume);
        c.store(FileId(1), a, 300).unwrap();
        c.set_journaling(true);
        let cp = c.checkpoint();
        let gen0 = c.generation();

        c.migrate(FileId(1), a, b, 300).unwrap();
        c.store(FileId(2), b, 50).unwrap();
        c.free_file(FileId(1));
        c.rescale_file(FileId(2), 50, 200).unwrap();
        let (node, _) = c.add_storage(1, 10_000);
        c.set_offline(node);
        assert_ne!(c.generation(), gen0);

        c.restore_to(&cp);
        assert_eq!(c.generation(), gen0);
        assert_eq!(c.storage.len(), 2);
        assert_eq!(c.files[&FileId(1)].replicas[0].volume, a);
        assert_eq!(c.files[&FileId(1)].replicas[0].bytes, 300);
        assert!(!c.files.contains_key(&FileId(2)));
        assert_eq!(c.total_used(), 300);
        assert_eq!(c.volume(a).unwrap().used, 300);
        assert_eq!(c.volume(b).unwrap().used, 0);
    }

    #[test]
    fn checkpoint_rewinds_node_removal_with_displaced_replicas() {
        let mut c = cluster_with(3, 2, 1000);
        let views = c.volume_views();
        c.store(FileId(1), views[0].volume, 100).unwrap();
        c.store(FileId(2), views[1].volume, 200).unwrap();
        c.file_mut(FileId(2)).unwrap().linkfile_at = Some(views[0].volume);
        c.set_journaling(true);
        let cp = c.checkpoint();

        c.remove_storage(views[0].node).unwrap();
        assert!(c.files[&FileId(1)].replicas.is_empty());
        assert_eq!(c.files[&FileId(2)].linkfile_at, None);

        c.restore_to(&cp);
        assert_eq!(c.storage.len(), 3);
        assert_eq!(c.files[&FileId(1)].replicas.len(), 1);
        assert_eq!(c.files[&FileId(2)].linkfile_at, Some(views[0].volume));
        assert_eq!(c.total_used(), 300);
    }

    #[test]
    fn checkpoints_nest_along_one_lineage() {
        let mut c = cluster_with(1, 1, 10_000);
        let v = c.volume_views()[0].volume;
        c.set_journaling(true);
        let base = c.checkpoint();
        c.store(FileId(1), v, 10).unwrap();
        let mid = c.checkpoint();
        c.store(FileId(2), v, 20).unwrap();
        c.restore_to(&mid);
        assert!(c.files.contains_key(&FileId(1)));
        assert!(!c.files.contains_key(&FileId(2)));
        c.restore_to(&base);
        assert!(c.files.is_empty());
        assert_eq!(c.total_used(), 0);
    }

    #[test]
    fn audit_accepts_consistent_state() {
        let mut c = cluster_with(3, 2, 10_000);
        let views = c.volume_views();
        c.store(FileId(1), views[0].volume, 400).unwrap();
        c.store(FileId(2), views[1].volume, 250).unwrap();
        c.audit()
            .expect("incrementally built state must audit clean");
        c.free_file(FileId(1));
        c.audit().expect("frees must keep accounting consistent");
    }

    #[test]
    fn audit_catches_counter_drift() {
        let mut c = cluster_with(2, 1, 10_000);
        let vid = c.volume_views()[0].volume;
        c.store(FileId(1), vid, 400).unwrap();
        // Bypass the journaling accessors — exactly the corruption a buggy
        // undo-log rewind would produce.
        let owner = c.volume_owner[&vid];
        // detlint:allow(journal-coverage): deliberate counter corruption to exercise the auditor
        c.storage.get_mut(&owner).unwrap().volumes[0].used += 1;
        let err = c.audit().unwrap_err();
        assert!(err.contains("file table"), "unexpected message: {err}");
    }

    #[test]
    fn audit_catches_ownership_divergence() {
        let mut c = cluster_with(2, 1, 10_000);
        let vid = c.volume_views()[0].volume;
        // detlint:allow(journal-coverage): deliberate ownership corruption to exercise the auditor
        c.volume_owner.remove(&vid);
        assert!(c.audit().is_err());
    }

    /// Drives every mutation primitive and asserts the streaming stats
    /// stay exactly equal to a recomputation (via `audit`) throughout.
    #[test]
    fn streaming_stats_follow_every_mutation() {
        let mut c = cluster_with(3, 2, 10_000);
        assert_eq!(c.online_storage_count(), 3);
        assert_eq!(c.util_stats().count(), 3);
        assert_eq!(c.util_stats().sum_q(), 0);

        let views = c.volume_views();
        c.store(FileId(1), views[0].volume, 5_000).unwrap();
        c.audit().unwrap();
        assert_eq!(
            c.util_stats().max_q(),
            Some(crate::loadstats::quantize(5_000, 20_000))
        );
        assert!(c.util_stats().imbalance_ratio() > 2.9);

        c.store(FileId(2), views[2].volume, 2_000).unwrap();
        c.migrate(FileId(1), views[0].volume, views[3].volume, 5_000)
            .unwrap();
        c.audit().unwrap();

        let node0 = views[0].node;
        c.set_offline(node0);
        c.audit().unwrap();
        assert_eq!(c.online_storage_count(), 2);
        assert_eq!(c.util_stats().count(), 2);
        // Offline twice is a no-op, not a double decrement.
        c.set_offline(node0);
        assert_eq!(c.online_storage_count(), 2);
        c.set_online(node0);
        c.audit().unwrap();
        assert_eq!(c.online_storage_count(), 3);

        c.set_volumes_full(node0);
        c.audit().unwrap();

        let (nid, vids) = c.add_storage(1, 10_000);
        c.audit().unwrap();
        assert_eq!(c.online_storage_count(), 4);
        c.free_file(FileId(2));
        c.rescale_file(FileId(1), 5_000, 1_000).unwrap();
        c.audit().unwrap();
        c.expand_volume(vids[0], 500).unwrap();
        c.reduce_volume(vids[0], 500).unwrap();
        c.audit().unwrap();
        let extra = c.add_volume(nid, 4_000).unwrap();
        c.audit().unwrap();
        c.remove_volume(extra).unwrap();
        c.remove_storage(nid).unwrap();
        c.audit().unwrap();
        assert_eq!(c.online_storage_count(), 3);
    }

    #[test]
    fn checkpoint_restores_streaming_stats_exactly() {
        let mut c = cluster_with(2, 1, 10_000);
        let views = c.volume_views();
        c.store(FileId(1), views[0].volume, 300).unwrap();
        c.set_journaling(true);
        let cp = c.checkpoint();
        let stats0 = c.util_stats().clone();

        c.store(FileId(2), views[1].volume, 800).unwrap();
        c.set_offline(views[1].node);
        let (nid, _) = c.add_storage(2, 10_000);
        c.store(FileId(3), c.storage[&nid].volumes[0].id, 50)
            .unwrap();
        assert_ne!(c.util_stats(), &stats0);

        c.restore_to(&cp);
        assert_eq!(c.util_stats(), &stats0);
        assert_eq!(c.online_storage_count(), 2);
        c.audit().unwrap();
    }

    fn cache_matches_rebuild(c: &mut Cluster) -> bool {
        let cached = c.canonical_views().to_vec();
        cached == c.volume_views()
    }

    #[test]
    fn canonical_views_cache_tracks_fills_and_topology() {
        let mut c = cluster_with(3, 2, 10_000);
        assert!(cache_matches_rebuild(&mut c));
        let vid = c.volume_views()[1].volume;

        // Fill change: patched in place, no rebuild.
        c.store(FileId(1), vid, 123).unwrap();
        let pos = c.view_pos(vid).expect("cache fresh");
        assert_eq!(c.canonical_views()[pos].used, 123);
        assert!(cache_matches_rebuild(&mut c));
        c.audit().unwrap();

        // Topology change: the cache is rebuilt lazily.
        let (nid, _) = c.add_storage(1, 10_000);
        assert_eq!(c.view_pos(vid), None, "generation moved, cache stale");
        assert!(cache_matches_rebuild(&mut c));
        c.set_offline(nid);
        assert!(cache_matches_rebuild(&mut c));
        c.audit().unwrap();
    }

    #[test]
    fn speculative_view_bumps_roll_back_exactly() {
        let mut c = cluster_with(2, 1, 10_000);
        let vid = c.volume_views()[0].volume;
        c.store(FileId(1), vid, 100).unwrap();
        let _ = c.canonical_views();
        let pos = c.view_pos(vid).unwrap();
        let old = c.bump_view_used(pos, 4_000);
        assert_eq!(old, 100);
        assert_eq!(c.canonical_views()[pos].used, 4_100);
        c.set_view_used(pos, old);
        assert!(cache_matches_rebuild(&mut c));
        c.audit().unwrap();
    }

    #[test]
    fn bulk_load_rebuild_matches_incremental_maintenance() {
        let mut a = cluster_with(3, 2, 10_000);
        let mut b = cluster_with(3, 2, 10_000);
        let views = a.volume_views();
        b.begin_bulk_load();
        for (i, v) in views.iter().enumerate() {
            let fid = FileId(i as u64 + 1);
            let bytes = 100 * (i as Bytes + 1);
            a.store(fid, v.volume, bytes).unwrap();
            b.store(fid, v.volume, bytes).unwrap();
        }
        b.end_bulk_load();
        assert_eq!(a.util_stats(), b.util_stats());
        assert_eq!(a.total_used(), b.total_used());
        a.audit().unwrap();
        b.audit().unwrap();
        let av = a.canonical_views().to_vec();
        assert_eq!(av, b.canonical_views());
    }

    #[test]
    fn audit_catches_hot_column_drift() {
        let mut c = cluster_with(2, 1, 10_000);
        let node = c.online_storage()[0];
        // An offline node is invisible to the file-table and streaming
        // checks, so a stale hot row is exactly what the hot-column audit
        // exists to catch.
        c.set_offline(node);
        // detlint:allow(journal-coverage): deliberate hot-column corruption to exercise the auditor
        c.storage.get_mut(&node).unwrap().volumes[0].capacity += 7;
        let err = c.audit().unwrap_err();
        assert!(err.contains("hot columns"), "unexpected message: {err}");
    }

    #[test]
    fn audit_catches_streaming_stats_drift() {
        let mut c = cluster_with(2, 1, 10_000);
        let vid = c.volume_views()[0].volume;
        c.store(FileId(1), vid, 400).unwrap();
        // Corrupt the tracker the way a missed mutation-site update would.
        let owner = c.volume_owner[&vid];
        c.util_stats.update(owner, Some(0));
        let err = c.audit().unwrap_err();
        assert!(err.contains("streaming"), "unexpected message: {err}");
    }
}
