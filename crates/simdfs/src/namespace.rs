//! The simulated file-system namespace: a tree of directories and files.
//!
//! The namespace is purely logical — it tracks paths, kinds and sizes.
//! Physical placement of file bytes onto storage volumes lives in
//! [`crate::cluster`]. Themis's input model mirrors this tree (the paper's
//! `Tree_files`) to instantiate `FileName` operands.

use crate::error::{SimError, SimResult};
use crate::types::{Bytes, FileId};
use std::collections::BTreeMap;

/// Kind of a namespace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A directory.
    Dir,
    /// A regular file.
    File,
}

#[derive(Debug, Clone)]
struct Entry {
    kind: EntryKind,
    /// For files: the stable file id; unused for directories.
    file: Option<FileId>,
    /// For files: logical size in bytes.
    size: Bytes,
    /// Children by name (directories only).
    children: BTreeMap<String, usize>,
    /// Arena index of the parent (root points to itself).
    parent: usize,
    /// Entry name within its parent ("" for the root).
    name: String,
}

/// One reversible namespace mutation, recorded while journaling is on.
///
/// Records are *semantic* undo entries: each one captures exactly the
/// state a single field-level mutation destroyed, so rewinding is a
/// reverse-order replay with no tree diffing. Deleted entries are moved
/// (not cloned) into their `Slot` record, which makes journaling O(1) per
/// operation regardless of directory fan-out.
#[derive(Debug, Clone)]
enum NsRecord {
    /// `arena[idx]` held `old` before the mutation.
    Slot { idx: usize, old: Option<Entry> },
    /// `name` was inserted into `arena[parent].children`.
    ChildAdd { parent: usize, name: String },
    /// `name -> child` was removed from `arena[parent].children`.
    ChildDel {
        parent: usize,
        name: String,
        child: usize,
    },
    /// The file at `idx` had size `old`.
    Size { idx: usize, old: Bytes },
    /// The entry at `idx` hung under `parent` as `name`.
    Reparent {
        idx: usize,
        parent: usize,
        name: String,
    },
}

/// The undo journal. Disabled (and empty) by default so the accumulate
/// execution path pays nothing; the snapshot-fork engine enables it.
#[derive(Debug, Clone, Default)]
struct NsJournal {
    enabled: bool,
    records: Vec<NsRecord>,
}

/// A rewind point into the namespace undo journal: the journal mark plus
/// the small scalar state (`free` list, counters) that is cheaper to
/// checkpoint wholesale than to journal per-mutation.
#[derive(Debug, Clone)]
pub(crate) struct NsCheckpoint {
    mark: usize,
    arena_len: usize,
    free: Vec<usize>,
    next_file: u64,
    file_count: usize,
    total_bytes: Bytes,
}

/// A tree-structured namespace with POSIX-flavoured operations.
///
/// All mutating operations validate their preconditions and return
/// [`SimError`] on violation, mirroring the errors a FUSE-mounted DFS would
/// surface to a client.
#[derive(Debug, Clone)]
pub struct Namespace {
    arena: Vec<Option<Entry>>,
    free: Vec<usize>,
    next_file: u64,
    file_count: usize,
    total_bytes: Bytes,
    journal: NsJournal,
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

impl Namespace {
    /// Creates a namespace containing only the root directory `/`.
    pub fn new() -> Self {
        let root = Entry {
            kind: EntryKind::Dir,
            file: None,
            size: 0,
            children: BTreeMap::new(),
            parent: 0,
            name: String::new(),
        };
        Namespace {
            arena: vec![Some(root)],
            free: Vec::new(),
            next_file: 1,
            file_count: 0,
            total_bytes: 0,
            journal: NsJournal::default(),
        }
    }

    /// Turns undo journaling on or off, dropping any recorded history.
    pub(crate) fn set_journaling(&mut self, on: bool) {
        self.journal.enabled = on;
        self.journal.records.clear();
    }

    /// Captures the state needed to rewind back to this point. Only valid
    /// while journaling is enabled.
    pub(crate) fn checkpoint(&self) -> NsCheckpoint {
        NsCheckpoint {
            mark: self.journal.records.len(),
            arena_len: self.arena.len(),
            free: self.free.clone(),
            next_file: self.next_file,
            file_count: self.file_count,
            total_bytes: self.total_bytes,
        }
    }

    /// Rewinds the namespace to the state captured by `cp`, undoing
    /// journaled mutations newest-first. Checkpoints deeper than `cp`
    /// become invalid (their journal marks no longer exist).
    pub(crate) fn revert_to(&mut self, cp: &NsCheckpoint) {
        debug_assert!(self.journal.enabled, "revert without journaling");
        while self.journal.records.len() > cp.mark {
            let rec = self.journal.records.pop().expect("mark <= len");
            match rec {
                NsRecord::Slot { idx, old } => self.arena[idx] = old,
                NsRecord::ChildAdd { parent, name } => {
                    self.entry_mut(parent).children.remove(&name);
                }
                NsRecord::ChildDel {
                    parent,
                    name,
                    child,
                } => {
                    self.entry_mut(parent).children.insert(name, child);
                }
                NsRecord::Size { idx, old } => self.entry_mut(idx).size = old,
                NsRecord::Reparent { idx, parent, name } => {
                    let e = self.entry_mut(idx);
                    e.parent = parent;
                    e.name = name;
                }
            }
        }
        self.arena.truncate(cp.arena_len);
        self.free.clone_from(&cp.free);
        self.next_file = cp.next_file;
        self.file_count = cp.file_count;
        self.total_bytes = cp.total_bytes;
    }

    /// Splits a normalized absolute path into components.
    fn components(path: &str) -> Vec<&str> {
        path.split('/').filter(|c| !c.is_empty()).collect()
    }

    fn lookup(&self, path: &str) -> Option<usize> {
        let mut idx = 0usize;
        for comp in Self::components(path) {
            let entry = self.arena[idx].as_ref()?;
            idx = *entry.children.get(comp)?;
        }
        Some(idx)
    }

    fn entry(&self, idx: usize) -> &Entry {
        self.arena[idx].as_ref().expect("dangling namespace index")
    }

    fn entry_mut(&mut self, idx: usize) -> &mut Entry {
        self.arena[idx].as_mut().expect("dangling namespace index")
    }

    fn alloc(&mut self, e: Entry) -> usize {
        let idx = if let Some(idx) = self.free.pop() {
            self.arena[idx] = Some(e);
            idx
        } else {
            self.arena.push(Some(e));
            self.arena.len() - 1
        };
        if self.journal.enabled {
            // The slot was empty before (freshly pushed or off the free
            // list), so the undo value is always `None`.
            self.journal.records.push(NsRecord::Slot { idx, old: None });
        }
        idx
    }

    /// Resolves a path's parent directory index and final component.
    fn parent_of<'p>(&self, path: &'p str) -> SimResult<(usize, &'p str)> {
        let comps = Self::components(path);
        let (last, dirs) = comps
            .split_last()
            .ok_or_else(|| SimError::AlreadyExists("/".to_string()))?;
        let mut idx = 0usize;
        for comp in dirs {
            let entry = self.arena[idx]
                .as_ref()
                .ok_or_else(|| SimError::NoSuchPath(path.into()))?;
            if entry.kind != EntryKind::Dir {
                return Err(SimError::NotADirectory(path.into()));
            }
            idx = *entry
                .children
                .get(*comp)
                .ok_or_else(|| SimError::NoSuchPath(path.into()))?;
        }
        if self.entry(idx).kind != EntryKind::Dir {
            return Err(SimError::NotADirectory(path.into()));
        }
        Ok((idx, last))
    }

    /// Creates a directory. The parent must already exist.
    pub fn mkdir(&mut self, path: &str) -> SimResult<()> {
        let (parent, name) = self.parent_of(path)?;
        if self.entry(parent).children.contains_key(name) {
            return Err(SimError::AlreadyExists(path.into()));
        }
        let e = Entry {
            kind: EntryKind::Dir,
            file: None,
            size: 0,
            children: BTreeMap::new(),
            parent,
            name: name.to_string(),
        };
        let idx = self.alloc(e);
        if self.journal.enabled {
            self.journal.records.push(NsRecord::ChildAdd {
                parent,
                name: name.to_string(),
            });
        }
        self.entry_mut(parent)
            .children
            .insert(name.to_string(), idx);
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str) -> SimResult<()> {
        let idx = self
            .lookup(path)
            .ok_or_else(|| SimError::NoSuchPath(path.into()))?;
        if idx == 0 {
            return Err(SimError::DirectoryNotEmpty("/".into()));
        }
        let entry = self.entry(idx);
        if entry.kind != EntryKind::Dir {
            return Err(SimError::NotADirectory(path.into()));
        }
        if !entry.children.is_empty() {
            return Err(SimError::DirectoryNotEmpty(path.into()));
        }
        let parent = entry.parent;
        let name = entry.name.clone();
        self.entry_mut(parent).children.remove(&name);
        if self.journal.enabled {
            self.journal.records.push(NsRecord::ChildDel {
                parent,
                name,
                child: idx,
            });
            let old = self.arena[idx].take();
            self.journal.records.push(NsRecord::Slot { idx, old });
        } else {
            self.arena[idx] = None;
        }
        self.free.push(idx);
        Ok(())
    }

    /// Creates a file of the given size, returning its id.
    pub fn create(&mut self, path: &str, size: Bytes) -> SimResult<FileId> {
        let (parent, name) = self.parent_of(path)?;
        if self.entry(parent).children.contains_key(name) {
            return Err(SimError::AlreadyExists(path.into()));
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        let e = Entry {
            kind: EntryKind::File,
            file: Some(id),
            size,
            children: BTreeMap::new(),
            parent,
            name: name.to_string(),
        };
        let idx = self.alloc(e);
        if self.journal.enabled {
            self.journal.records.push(NsRecord::ChildAdd {
                parent,
                name: name.to_string(),
            });
        }
        self.entry_mut(parent)
            .children
            .insert(name.to_string(), idx);
        self.file_count += 1;
        self.total_bytes += size;
        Ok(id)
    }

    /// Deletes a file, returning its id and former size.
    pub fn delete(&mut self, path: &str) -> SimResult<(FileId, Bytes)> {
        let idx = self
            .lookup(path)
            .ok_or_else(|| SimError::NoSuchPath(path.into()))?;
        let entry = self.entry(idx);
        if entry.kind != EntryKind::File {
            return Err(SimError::IsADirectory(path.into()));
        }
        let id = entry.file.expect("file entry without id");
        let size = entry.size;
        let parent = entry.parent;
        let name = entry.name.clone();
        self.entry_mut(parent).children.remove(&name);
        if self.journal.enabled {
            self.journal.records.push(NsRecord::ChildDel {
                parent,
                name,
                child: idx,
            });
            let old = self.arena[idx].take();
            self.journal.records.push(NsRecord::Slot { idx, old });
        } else {
            self.arena[idx] = None;
        }
        self.free.push(idx);
        self.file_count -= 1;
        self.total_bytes -= size;
        Ok((id, size))
    }

    /// Changes a file's size to `new_size`, returning `(id, old_size)`.
    ///
    /// This backs `append` (grow), `overwrite` (replace) and
    /// `truncate-overwrite` (shrink-then-write) operations.
    pub fn resize(&mut self, path: &str, new_size: Bytes) -> SimResult<(FileId, Bytes)> {
        let idx = self
            .lookup(path)
            .ok_or_else(|| SimError::NoSuchPath(path.into()))?;
        let entry = self.entry(idx);
        if entry.kind != EntryKind::File {
            return Err(SimError::IsADirectory(path.into()));
        }
        let old = entry.size;
        let id = entry.file.expect("file entry without id");
        if self.journal.enabled {
            self.journal.records.push(NsRecord::Size { idx, old });
        }
        self.entry_mut(idx).size = new_size;
        self.total_bytes = self.total_bytes - old + new_size;
        Ok((id, old))
    }

    /// Looks up a file for reading, returning `(id, size)`.
    pub fn open(&self, path: &str) -> SimResult<(FileId, Bytes)> {
        let idx = self
            .lookup(path)
            .ok_or_else(|| SimError::NoSuchPath(path.into()))?;
        let entry = self.entry(idx);
        if entry.kind != EntryKind::File {
            return Err(SimError::IsADirectory(path.into()));
        }
        Ok((entry.file.expect("file entry without id"), entry.size))
    }

    /// Renames (moves) a file or directory to a new path.
    ///
    /// The destination must not exist and its parent directory must exist.
    /// Returns the file id when a file was moved (renames of files change
    /// their DHT hash location, which matters for GlusterFS linkfiles).
    pub fn rename(&mut self, from: &str, to: &str) -> SimResult<Option<FileId>> {
        let idx = self
            .lookup(from)
            .ok_or_else(|| SimError::NoSuchPath(from.into()))?;
        if idx == 0 {
            return Err(SimError::IsADirectory("/".into()));
        }
        let (new_parent, new_name) = self.parent_of(to)?;
        if self.entry(new_parent).children.contains_key(new_name) {
            return Err(SimError::AlreadyExists(to.into()));
        }
        // Reject moving a directory into its own subtree.
        let mut cursor = new_parent;
        loop {
            if cursor == idx {
                return Err(SimError::NotADirectory(to.into()));
            }
            let p = self.entry(cursor).parent;
            if p == cursor {
                break;
            }
            cursor = p;
        }
        let old_parent = self.entry(idx).parent;
        let old_name = self.entry(idx).name.clone();
        self.entry_mut(old_parent).children.remove(&old_name);
        if self.journal.enabled {
            self.journal.records.push(NsRecord::ChildDel {
                parent: old_parent,
                name: old_name.clone(),
                child: idx,
            });
            self.journal.records.push(NsRecord::ChildAdd {
                parent: new_parent,
                name: new_name.to_string(),
            });
            self.journal.records.push(NsRecord::Reparent {
                idx,
                parent: old_parent,
                name: old_name,
            });
        }
        self.entry_mut(new_parent)
            .children
            .insert(new_name.to_string(), idx);
        let e = self.entry_mut(idx);
        e.parent = new_parent;
        e.name = new_name.to_string();
        Ok(e.file)
    }

    /// Whether the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.lookup(path).is_some()
    }

    /// Kind of the entry at `path`, if it exists.
    pub fn kind(&self, path: &str) -> Option<EntryKind> {
        self.lookup(path).map(|i| self.entry(i).kind)
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.file_count
    }

    /// Sum of all file sizes.
    pub fn total_bytes(&self) -> Bytes {
        self.total_bytes
    }

    /// Collects every file as `(path, id, size)`, in depth-first order.
    pub fn files(&self) -> Vec<(String, FileId, Bytes)> {
        let mut out = Vec::with_capacity(self.file_count);
        self.walk(0, &mut String::new(), &mut out, &mut Vec::new(), None);
        out
    }

    /// Collects every directory path (excluding the root).
    pub fn directories(&self) -> Vec<String> {
        let mut dirs = Vec::new();
        let mut out = Vec::new();
        self.walk(0, &mut String::new(), &mut out, &mut dirs, None);
        dirs
    }

    /// Like [`Self::files`], skipping the top-level entry named `skip`
    /// without materializing its subtree's paths (the `/sys` preload tree
    /// can hold thousands of files a caller would only filter back out).
    pub fn files_excluding_top(&self, skip: &str) -> Vec<(String, FileId, Bytes)> {
        let mut out = Vec::new();
        self.walk(0, &mut String::new(), &mut out, &mut Vec::new(), Some(skip));
        out
    }

    /// Like [`Self::directories`], skipping the top-level entry named
    /// `skip` and everything beneath it.
    pub fn directories_excluding_top(&self, skip: &str) -> Vec<String> {
        let mut dirs = Vec::new();
        let mut out = Vec::new();
        self.walk(0, &mut String::new(), &mut out, &mut dirs, Some(skip));
        dirs
    }

    fn walk(
        &self,
        idx: usize,
        prefix: &mut String,
        files: &mut Vec<(String, FileId, Bytes)>,
        dirs: &mut Vec<String>,
        skip_top: Option<&str>,
    ) {
        let entry = self.entry(idx);
        for (name, &child_idx) in &entry.children {
            if prefix.is_empty() && skip_top == Some(name.as_str()) {
                continue;
            }
            let child = self.entry(child_idx);
            let len = prefix.len();
            prefix.push('/');
            prefix.push_str(name);
            match child.kind {
                EntryKind::File => files.push((
                    prefix.clone(),
                    child.file.expect("file entry without id"),
                    child.size,
                )),
                EntryKind::Dir => {
                    dirs.push(prefix.clone());
                    self.walk(child_idx, prefix, files, dirs, skip_top);
                }
            }
            prefix.truncate(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_open_delete_roundtrip() {
        let mut ns = Namespace::new();
        let id = ns.create("/a.dat", 100).unwrap();
        assert_eq!(ns.open("/a.dat").unwrap(), (id, 100));
        assert_eq!(ns.file_count(), 1);
        assert_eq!(ns.total_bytes(), 100);
        let (did, size) = ns.delete("/a.dat").unwrap();
        assert_eq!((did, size), (id, 100));
        assert_eq!(ns.file_count(), 0);
        assert_eq!(ns.total_bytes(), 0);
        assert!(!ns.exists("/a.dat"));
    }

    #[test]
    fn mkdir_nested_and_rmdir() {
        let mut ns = Namespace::new();
        ns.mkdir("/d").unwrap();
        ns.mkdir("/d/e").unwrap();
        assert_eq!(ns.kind("/d/e"), Some(EntryKind::Dir));
        assert_eq!(
            ns.rmdir("/d"),
            Err(SimError::DirectoryNotEmpty("/d".into()))
        );
        ns.rmdir("/d/e").unwrap();
        ns.rmdir("/d").unwrap();
        assert!(!ns.exists("/d"));
    }

    #[test]
    fn mkdir_requires_existing_parent() {
        let mut ns = Namespace::new();
        assert!(matches!(ns.mkdir("/x/y"), Err(SimError::NoSuchPath(_))));
    }

    #[test]
    fn create_duplicate_fails() {
        let mut ns = Namespace::new();
        ns.create("/f", 1).unwrap();
        assert!(matches!(
            ns.create("/f", 2),
            Err(SimError::AlreadyExists(_))
        ));
    }

    #[test]
    fn resize_tracks_total_bytes() {
        let mut ns = Namespace::new();
        ns.create("/f", 50).unwrap();
        ns.resize("/f", 80).unwrap();
        assert_eq!(ns.total_bytes(), 80);
        ns.resize("/f", 10).unwrap();
        assert_eq!(ns.total_bytes(), 10);
    }

    #[test]
    fn rename_moves_file_between_dirs() {
        let mut ns = Namespace::new();
        ns.mkdir("/a").unwrap();
        ns.mkdir("/b").unwrap();
        let id = ns.create("/a/f", 7).unwrap();
        let moved = ns.rename("/a/f", "/b/g").unwrap();
        assert_eq!(moved, Some(id));
        assert!(!ns.exists("/a/f"));
        assert_eq!(ns.open("/b/g").unwrap(), (id, 7));
    }

    #[test]
    fn rename_into_own_subtree_is_rejected() {
        let mut ns = Namespace::new();
        ns.mkdir("/a").unwrap();
        ns.mkdir("/a/b").unwrap();
        assert!(ns.rename("/a", "/a/b/c").is_err());
        assert!(ns.exists("/a/b"));
    }

    #[test]
    fn rename_to_existing_target_fails() {
        let mut ns = Namespace::new();
        ns.create("/f", 1).unwrap();
        ns.create("/g", 1).unwrap();
        assert!(matches!(
            ns.rename("/f", "/g"),
            Err(SimError::AlreadyExists(_))
        ));
    }

    #[test]
    fn delete_directory_via_delete_is_rejected() {
        let mut ns = Namespace::new();
        ns.mkdir("/d").unwrap();
        assert!(matches!(ns.delete("/d"), Err(SimError::IsADirectory(_))));
    }

    #[test]
    fn files_listing_is_complete_and_sorted_by_walk() {
        let mut ns = Namespace::new();
        ns.mkdir("/d").unwrap();
        ns.create("/d/x", 1).unwrap();
        ns.create("/y", 2).unwrap();
        let files = ns.files();
        let paths: Vec<&str> = files.iter().map(|(p, _, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["/d/x", "/y"]);
        assert_eq!(ns.directories(), vec!["/d".to_string()]);
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut ns = Namespace::new();
        ns.create("/a", 1).unwrap();
        let before = ns.arena.len();
        ns.delete("/a").unwrap();
        ns.create("/b", 1).unwrap();
        assert_eq!(ns.arena.len(), before, "freed slot should be reused");
    }

    #[test]
    fn file_ids_are_never_reused() {
        let mut ns = Namespace::new();
        let a = ns.create("/a", 1).unwrap();
        ns.delete("/a").unwrap();
        let b = ns.create("/a", 1).unwrap();
        assert_ne!(a, b);
    }

    type NsSnapshot = (Vec<(String, FileId, Bytes)>, Vec<String>, u64, Bytes);

    fn snapshot_of(ns: &Namespace) -> NsSnapshot {
        (ns.files(), ns.directories(), ns.next_file, ns.total_bytes())
    }

    #[test]
    fn journal_rewinds_mixed_mutations() {
        let mut ns = Namespace::new();
        ns.mkdir("/d").unwrap();
        ns.create("/d/a", 10).unwrap();
        ns.set_journaling(true);
        let cp = ns.checkpoint();
        let before = snapshot_of(&ns);

        ns.create("/d/b", 5).unwrap();
        ns.resize("/d/a", 99).unwrap();
        ns.rename("/d/a", "/moved").unwrap();
        ns.mkdir("/e").unwrap();
        ns.create("/e/deep", 3).unwrap();
        ns.delete("/d/b").unwrap();
        ns.delete("/e/deep").unwrap();
        ns.rmdir("/e").unwrap();

        ns.revert_to(&cp);
        assert_eq!(snapshot_of(&ns), before);
        assert_eq!(ns.open("/d/a").unwrap().1, 10);
        assert!(!ns.exists("/moved"));
        assert_eq!(ns.file_count(), 1);
    }

    #[test]
    fn journal_checkpoints_nest_and_replay_identically() {
        let mut ns = Namespace::new();
        ns.set_journaling(true);
        let base = ns.checkpoint();
        ns.create("/a", 1).unwrap();
        let mid = ns.checkpoint();
        let mid_state = snapshot_of(&ns);
        ns.create("/b", 2).unwrap();
        ns.rename("/a", "/c").unwrap();

        // Rewind to the middle mark, diverge, rewind to base, and check
        // that re-running the original prefix reproduces the exact state
        // (including reused file ids — determinism over uniqueness).
        ns.revert_to(&mid);
        assert_eq!(snapshot_of(&ns), mid_state);
        ns.create("/other", 9).unwrap();
        ns.revert_to(&base);
        assert_eq!(ns.file_count(), 0);
        ns.create("/a", 1).unwrap();
        assert_eq!(snapshot_of(&ns), mid_state);
    }

    #[test]
    fn disabling_journal_clears_history() {
        let mut ns = Namespace::new();
        ns.set_journaling(true);
        ns.create("/a", 1).unwrap();
        assert!(!ns.journal.records.is_empty());
        ns.set_journaling(false);
        assert!(ns.journal.records.is_empty());
        ns.create("/b", 1).unwrap();
        assert!(ns.journal.records.is_empty());
    }
}
