//! The top-level DFS simulator.
//!
//! [`DfsSim`] wires the namespace, cluster, placement policy, balancer,
//! coverage model and bug engine into a single deterministic discrete-event
//! system with the external interface of a real deployment: execute a
//! request, trigger/inspect rebalance, monitor load, reset. Themis talks to
//! it only through the Interaction Adaptor, exactly as it talks to HDFS or
//! GlusterFS through shell commands and FUSE in the paper.

use crate::balancer::{Balancer, MigrationMove, RebalanceStatus};
use crate::bugs::catalog;
use crate::bugs::{BugEngine, BugEngineCheckpoint, BugRuntime, BugSpec, Effect, SimEvent};
use crate::clock::{PeriodicTimer, SimClock};
use crate::cluster::{Cluster, ClusterCheckpoint};
use crate::coverage::{CoverageModel, Region};
use crate::crash::{
    fragment_bytes, fragment_count, CrashClass, CrashPlan, CrashRuntime, CrashViolation,
    InFlightMove, MigrationStepKind,
};
use crate::error::{SimError, SimResult};
use crate::faults::{FaultInjector, FaultKind, FaultPlan};
use crate::flavor::{BalancerStyle, Flavor, FlavorConfig, RoutingKind};
use crate::hashing::{hash_str, mix};
use crate::metrics::{ClusterSnapshot, NodeLoadSample};
use crate::namespace::{Namespace, NsCheckpoint};
use crate::placement::{Placement, PlacementCache, PlacementPolicy, VolumeView};
use crate::request::{DfsRequest, OpClass, ReqOutcome};
use crate::types::{Bytes, FileId, NodeId, NodeRole, SimTime, VolumeId, MIB};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Which latent bugs a simulator instance is built with.
#[derive(Debug, Clone)]
pub enum BugSet {
    /// A hypothetical bug-free build (useful for false-positive studies).
    None,
    /// The latest versions carrying the 10 previously unknown failures.
    New,
    /// The historical versions carrying the 53 studied failures.
    Historical,
    /// Both the new and historical bug sets.
    All,
    /// A custom set (used by targeted reproduction tests).
    Custom(Vec<BugSpec>),
}

impl BugSet {
    fn specs(&self, flavor: Flavor) -> Vec<BugSpec> {
        match self {
            BugSet::None => Vec::new(),
            BugSet::New => catalog::new_bugs(flavor),
            BugSet::Historical => catalog::historical_bugs(flavor),
            BugSet::All => {
                let mut v = catalog::new_bugs(flavor);
                v.extend(catalog::historical_bugs(flavor));
                v
            }
            BugSet::Custom(specs) => specs
                .iter()
                .filter(|s| s.platform == flavor)
                .cloned()
                .collect(),
        }
    }
}

/// Cumulative statistics across the simulator's lifetime (never reset).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Requests executed (including failed ones).
    pub ops: u64,
    /// Requests that returned an error.
    pub failed_ops: u64,
    /// Rebalance rounds started.
    pub rebalance_rounds: u64,
    /// File migrations executed.
    pub migrations: u64,
    /// Bytes moved by migrations.
    pub bytes_migrated: u64,
    /// Bytes lost to data-loss effects and unplaceable displaced replicas.
    pub bytes_lost: u64,
    /// Times the DFS was reset to its initial state.
    pub resets: u64,
    /// Successful operations per [`OpClass`] index (see
    /// [`crate::request::OpClass::index`]).
    pub class_counts: [u64; 14],
}

/// One simulated distributed file system instance.
#[derive(Debug)]
pub struct DfsSim {
    cfg: FlavorConfig,
    bug_set: BugSet,
    clock: SimClock,
    ns: Namespace,
    cluster: Cluster,
    placement: Box<dyn PlacementPolicy>,
    /// Precomputed placement structures keyed off the cluster's topology
    /// generation (rings, weight tables) plus scoring scratch buffers.
    placement_cache: PlacementCache,
    /// Whether placement goes through the generation-keyed cache (default)
    /// or the uncached reference path (benchmark baseline).
    placement_caching: bool,
    /// Reusable canonical volume-view buffer for the placement hot path.
    views_buf: Vec<VolumeView>,
    /// Reusable per-block placement output buffer.
    placed_buf: Placement,
    /// Reusable fragment-plan buffer (returned to the pool by the
    /// `plan_fragments` callers after they consume the plan).
    frags_buf: Vec<(VolumeId, Bytes)>,
    /// Reusable speculative-fill undo list for the canonical planner:
    /// `(view position, previous used)` — O(touched) per plan, reused so
    /// the hot path allocates nothing.
    undo_buf: Vec<(usize, Bytes)>,
    /// Reusable volume→position index for the filtered (partition/hotspot)
    /// planner, so its intra-plan fill updates are O(log V) lookups
    /// instead of an O(V) scan per placed replica.
    view_pos_buf: Vec<(VolumeId, u32)>,
    balancer: Balancer,
    bugs: BugEngine,
    coverage: CoverageModel,
    check_timer: Option<PeriodicTimer>,
    migrate_timer: PeriodicTimer,
    rr_counter: u64,
    prev_kind: Option<u64>,
    prev2_kind: Option<u64>,
    /// GlusterFS dht-rebalance hash cache: placement key -> expiry.
    hash_cache: BTreeMap<u64, SimTime>,
    crashed: Vec<NodeId>,
    /// Scheduled environment faults plus their active runtime state (see
    /// [`crate::faults`]); empty and inert unless a plan is installed.
    faults: FaultInjector,
    stats: SimStats,
    last_variance: (f64, f64, f64),
    /// Snapshot of the freshly built namespace + cluster (topology and
    /// `/sys` preload), cloned back on [`DfsSim::reset`] instead of
    /// replaying the whole deploy-time ingest.
    pristine: Option<Box<(Namespace, Cluster)>>,
    /// Live fork marks, oldest first (see [`DfsSim::fork`]). Marks form a
    /// stack along one execution lineage: restoring one invalidates every
    /// deeper mark.
    snapshots: Vec<SimSnapshot>,
    /// Monotonic id source for fork marks (never reused, so a stale id
    /// from before a reset can never alias a live mark).
    next_snapshot_id: u64,
    /// Post-deploy base state for cross-campaign simulator reuse (see
    /// [`DfsSim::mark_base`]). Unlike fork marks it survives resets.
    base: Option<Box<BaseMark>>,
    /// Crash-point instrumentation over the migration pipeline (see
    /// [`crate::crash`]); disarmed and inert on the normal hot path.
    crash: CrashRuntime,
    /// Whether [`DfsSim::audit_state`] runs automatically after every
    /// snapshot restore. Defaults to on in debug builds; release-mode
    /// campaigns opt in via [`DfsSim::set_runtime_audit`] — the
    /// crash-consistency oracle needs the guard with `debug_assertions`
    /// off, while hot-path campaigns keep it disabled for throughput.
    runtime_audit: bool,
}

/// What [`DfsSim::restore_to_base`] needs beyond the pristine
/// namespace/cluster clone: the state a reset does *not* re-establish.
/// The coverage model is monotone within one campaign (which is why fork
/// marks skip it) but must rewind between campaigns; the clock and the
/// cumulative stats likewise outlive resets but not a fresh deploy.
#[derive(Debug)]
struct BaseMark {
    clock: SimClock,
    coverage: CoverageModel,
    stats: SimStats,
    check_timer: Option<PeriodicTimer>,
    migrate_timer: PeriodicTimer,
}

/// One saved execution point of the snapshot-fork engine.
///
/// The two big collections (namespace arena, physical file map) are
/// captured as *journal checkpoints* — undo records accumulate in their
/// owners and rewinding replays them backwards — while everything small
/// (clock, balancer, bug runtimes, fault state, timers) is cloned
/// outright. Coverage is deliberately absent: it is a monotone set of
/// idempotent insertions over deterministic re-execution, so rewinding
/// state and replaying a prefix can only re-insert branches already
/// present.
#[derive(Debug)]
struct SimSnapshot {
    id: u64,
    clock: SimClock,
    ns: NsCheckpoint,
    cluster: ClusterCheckpoint,
    balancer: Balancer,
    bugs: BugEngineCheckpoint,
    faults: FaultInjector,
    hash_cache: BTreeMap<u64, SimTime>,
    crashed: Vec<NodeId>,
    stats: SimStats,
    last_variance: (f64, f64, f64),
    prev_kind: Option<u64>,
    prev2_kind: Option<u64>,
    rr_counter: u64,
    check_timer: Option<PeriodicTimer>,
    migrate_timer: PeriodicTimer,
    crash: CrashRuntime,
}

impl DfsSim {
    /// Builds a simulator for `flavor` with the given bug set, creating the
    /// flavor's default 10-node topology.
    pub fn new(flavor: Flavor, bug_set: BugSet) -> Self {
        let cfg = flavor.config();
        Self::with_config(cfg, bug_set)
    }

    /// Builds a simulator from an explicit configuration.
    pub fn with_config(cfg: FlavorConfig, bug_set: BugSet) -> Self {
        let bugs = BugEngine::new(bug_set.specs(cfg.flavor));
        let check_timer = match cfg.balancer {
            BalancerStyle::OnDemand { check_period_ms } => {
                Some(PeriodicTimer::new(check_period_ms))
            }
            BalancerStyle::Periodic { period_ms } => Some(PeriodicTimer::new(period_ms)),
            _ => None,
        };
        let mut sim = DfsSim {
            placement: cfg.placement.build(),
            placement_cache: PlacementCache::new(),
            placement_caching: true,
            views_buf: Vec::new(),
            placed_buf: Vec::new(),
            frags_buf: Vec::new(),
            undo_buf: Vec::new(),
            view_pos_buf: Vec::new(),
            balancer: Balancer::new(cfg.balance_threshold),
            coverage: CoverageModel::new(cfg.coverage),
            bugs,
            check_timer,
            migrate_timer: PeriodicTimer::new(cfg.migrate_step_ms),
            clock: SimClock::new(),
            ns: Namespace::new(),
            cluster: Cluster::new(),
            rr_counter: 0,
            prev_kind: None,
            prev2_kind: None,
            hash_cache: BTreeMap::new(),
            crashed: Vec::new(),
            faults: FaultInjector::default(),
            stats: SimStats::default(),
            last_variance: (1.0, 1.0, 1.0),
            pristine: None,
            snapshots: Vec::new(),
            next_snapshot_id: 0,
            base: None,
            crash: CrashRuntime::default(),
            runtime_audit: cfg!(debug_assertions),
            cfg,
            bug_set,
        };
        sim.build_topology();
        sim.pristine = Some(Box::new((sim.ns.clone(), sim.cluster.clone())));
        sim
    }

    fn build_topology(&mut self) {
        for _ in 0..self.cfg.mgmt_nodes {
            self.cluster.add_mgmt(6);
        }
        for _ in 0..self.cfg.storage_nodes {
            self.cluster
                .add_storage(self.cfg.volumes_per_node, self.cfg.volume_capacity);
        }
        self.preload_base_data();
    }

    /// Pre-loads base data under `/sys` (outside the tester's mount): a
    /// production cluster is never empty, so the balancer operates against
    /// a large existing distribution and single operations only nudge it.
    fn preload_base_data(&mut self) {
        if self.cfg.base_fill <= 0.0 || self.cfg.base_file_size == 0 {
            return;
        }
        let raw_target = (self.cluster.total_capacity() as f64 * self.cfg.base_fill) as u64;
        let per_file = self.cfg.base_file_size * self.cfg.replicas as u64;
        let count = raw_target / per_file.max(1);
        let _ = self.apply_request(&DfsRequest::Mkdir {
            path: "/sys".into(),
        });
        // Deploy-time ingest is balanced: operators bulk-load evenly (and
        // any imbalance would have been rebalanced long before testing
        // starts), so fragments go round-robin across volumes rather than
        // through the runtime placement policy. Preload happens before the
        // clock starts and is invisible to triggers, coverage and load
        // accounting.
        let mut views = self.cluster.volume_views();
        views.sort_by_key(|v| v.volume);
        let mut rr = 0usize;
        // Bulk-load mode defers the per-store tracker/view maintenance:
        // `end_bulk_load` rebuilds the hot columns and streaming stats from
        // ground truth in one O(V) pass, which is bit-identical to the
        // per-mutation path because the accumulators are exact integers.
        // At 100k nodes this turns preload from the dominant cost into a
        // linear file-table fill.
        self.cluster.begin_bulk_load();
        let mut path = String::with_capacity(32);
        for i in 0..count {
            use std::fmt::Write as _;
            path.clear();
            let _ = write!(path, "/sys/base{i}");
            let Ok(fid) = self.ns.create(&path, self.cfg.base_file_size) else {
                continue;
            };
            for _copy in 0..self.cfg.replicas {
                for _try in 0..views.len() {
                    let v = views[rr % views.len()];
                    rr += 1;
                    if self
                        .cluster
                        .store(fid, v.volume, self.cfg.base_file_size)
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            if let Some(meta) = self.cluster.file_mut(fid) {
                meta.key = hash_str(&path);
            }
        }
        self.cluster.end_bulk_load();
        // Deploy-time writes are not runtime load.
        for m in self.cluster.mgmt.values_mut() {
            m.load.reset();
        }
        for st in self.cluster.storage.values_mut() {
            st.load.reset();
        }
    }

    /// The flavor configuration.
    pub fn config(&self) -> &FlavorConfig {
        &self.cfg
    }

    /// The flavor under test.
    pub fn flavor(&self) -> Flavor {
        self.cfg.flavor
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Covered branches (the coverage-collection interface of Table 5).
    pub fn coverage_count(&self) -> u64 {
        self.coverage.covered()
    }

    /// Read access to the coverage model (diagnostics).
    pub fn coverage(&self) -> &CoverageModel {
        &self.coverage
    }

    /// Ground-truth oracle: ids of bugs whose trigger has fired.
    ///
    /// This is *never* exposed to Themis — only the evaluation harness uses
    /// it to attribute detector reports to root causes.
    pub fn oracle_triggered(&self) -> Vec<&'static str> {
        self.bugs.triggered_ids()
    }

    /// Ground-truth oracle: full runtime state of every armed bug.
    pub fn oracle_bugs(&self) -> &[BugRuntime] {
        self.bugs.bugs()
    }

    /// Nodes that crashed due to a crash-effect bug or a crash fault.
    pub fn crashed_nodes(&self) -> &[NodeId] {
        &self.crashed
    }

    /// Installs a fault plan (see [`crate::faults`]), replacing any
    /// previous plan and clearing its active state. Events fire when the
    /// virtual clock passes their timestamp.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults.set_plan(plan);
    }

    /// Read access to the fault injector (diagnostics and tests).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// Routes placement through the uncached reference path when disabled.
    /// Benchmark baseline knob; results are identical either way.
    pub fn set_placement_caching(&mut self, enabled: bool) {
        self.placement_caching = enabled;
    }

    /// Bytes lost to data-loss effects so far.
    pub fn bytes_lost(&self) -> Bytes {
        self.stats.bytes_lost
    }

    /// Total free bytes (exposed to Themis's Size operand model).
    pub fn free_space(&self) -> Bytes {
        self.cluster.total_free()
    }

    /// Direct read access to the namespace (used by adaptors to sync the
    /// fuzzer's file-tree model after a reset).
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Direct read access to the cluster (used by the evaluation harness
    /// and figure generators; Themis itself only sees load reports).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    // ------------------------------------------------------------------
    // Request execution
    // ------------------------------------------------------------------

    /// Executes one request against the DFS.
    pub fn execute(&mut self, req: &DfsRequest) -> SimResult<ReqOutcome> {
        if self.cluster_down() {
            return Err(SimError::ClusterDown);
        }
        let class = req.class();
        let mgmt = self.route_request(req);
        // A slow-node fault on the serving gateway multiplies the request
        // latency (the client observes the degradation end to end).
        let cost = match mgmt {
            Some(id) => self
                .request_cost(req)
                .saturating_mul(self.faults.slow_mgmt_factor(id) as u64),
            None => self.request_cost(req),
        };
        self.charge_mgmt(mgmt, req);

        let result = self.apply_request(req);
        let ok = result.is_ok();
        self.stats.ops += 1;
        if ok {
            self.stats.class_counts[class.index() as usize] += 1;
        } else {
            self.stats.failed_ops += 1;
        }

        // Time passes; in-flight migrations make progress.
        self.advance(cost);

        // Feed the bug engine and coverage model.
        let ev = SimEvent::Op {
            class,
            ok,
            size: req.payload(),
        };
        self.feed_bugs(&ev);
        if ok && class.is_membership() {
            let mev = SimEvent::MembershipChange { class };
            self.feed_bugs(&mev);
        }
        self.sample_variance();
        self.touch_op_coverage(req, ok);

        // Continuous CPU-spin effects burn victim CPU per executed request.
        self.apply_cpu_spin();

        // Balancer activation per flavor style.
        self.maybe_activate_balancer(class, ok);

        result.map(|mut out| {
            out.latency_ms = cost;
            out
        })
    }

    /// Executes a run of requests as one batch, appending one result per
    /// request to `out` (cleared first).
    ///
    /// When the simulator is *quiescent* — no bug specs armed, no fault
    /// plan, crash instrumentation disarmed, balancer idle — and the batch
    /// contains only data-path requests, the per-op epilogue (clock
    /// advance, fault-schedule check, variance sampling, balancer
    /// activation) is amortized across the batch: requests execute
    /// back-to-back at the same virtual instant and the clock advances
    /// once by the summed cost at the end, exactly like a burst of
    /// concurrent clients. Routing, namespace/cluster mutation, statistics
    /// and coverage stay per-op, so placements and load accounting are
    /// identical to serial execution. Outside the quiescent case — or when
    /// the batch contains membership or config requests, which must
    /// observe their own epilogue — every request goes through
    /// [`DfsSim::execute`] unchanged.
    pub fn execute_batch(&mut self, reqs: &[DfsRequest], out: &mut Vec<SimResult<ReqOutcome>>) {
        out.clear();
        out.reserve(reqs.len());
        if !self.batch_fast_path(reqs) {
            for req in reqs {
                out.push(self.execute(req));
            }
            return;
        }
        if self.cluster_down() {
            for _ in reqs {
                out.push(Err(SimError::ClusterDown));
            }
            return;
        }
        let mut total_cost = 0u64;
        for req in reqs {
            let class = req.class();
            let mgmt = self.route_request(req);
            let cost = self.request_cost(req);
            self.charge_mgmt(mgmt, req);
            let result = self.apply_request(req);
            let ok = result.is_ok();
            self.stats.ops += 1;
            if ok {
                self.stats.class_counts[class.index() as usize] += 1;
            } else {
                self.stats.failed_ops += 1;
            }
            self.touch_op_coverage(req, ok);
            total_cost = total_cost.saturating_add(cost);
            out.push(result.map(|mut o| {
                o.latency_ms = cost;
                o
            }));
        }
        self.advance(total_cost);
        self.sample_variance();
        self.maybe_activate_balancer(OpClass::Read, true);
    }

    /// Whether `reqs` may take the amortized batch path: nothing
    /// time-sensitive is armed and no request needs its own epilogue.
    fn batch_fast_path(&self, reqs: &[DfsRequest]) -> bool {
        self.bugs.bugs().is_empty()
            && !self.faults.any()
            && !self.crash.armed()
            && self.crash.in_flight.is_none()
            && self.balancer.status() == RebalanceStatus::Done
            && reqs.iter().all(|r| {
                let c = r.class();
                !c.is_membership() && !c.is_config()
            })
    }

    fn cluster_down(&self) -> bool {
        if !self.faults.has_partitions() {
            return !self.cluster.has_online_mgmt() || !self.cluster.has_online_storage();
        }
        // Partitioned nodes are up but unreachable: if every gateway (or
        // every storage node) is cut off, clients see a dead cluster.
        let mgmt_ok = self
            .cluster
            .mgmt
            .values()
            .any(|m| m.online && !self.faults.is_partitioned(m.id));
        let storage_ok = self
            .cluster
            .storage
            .values()
            .any(|s| s.online && !self.faults.is_partitioned(s.id));
        !mgmt_ok || !storage_ok
    }

    fn request_cost(&self, req: &DfsRequest) -> u64 {
        let payload_ms = (req.payload() / MIB) * 10;
        match req.class() {
            OpClass::Read => 300,
            OpClass::DirMeta | OpClass::Rename => 350,
            c if c.is_config() => 2_000,
            _ => 500 + payload_ms.min(30_000),
        }
    }

    /// The capacity a new volume is actually provisioned with.
    ///
    /// The testbed attaches uniform disks (the paper's system model assumes
    /// near-homogeneous hardware, and its containers share identical SSDs),
    /// so the requested size is recorded but the standard disk is attached.
    /// Heterogeneous capacities would put fill-based placement and
    /// byte-based balancing in permanent conflict, making the LBS
    /// definition (raw bytes per node) meaningless.
    fn clamp_capacity(&self, _requested: Bytes) -> Bytes {
        self.cfg.default_new_volume_capacity()
    }

    /// Online management nodes reachable from clients (partitioned
    /// gateways are up but take no traffic).
    fn reachable_mgmt_count(&self) -> usize {
        if !self.faults.has_partitions() {
            return self.cluster.online_mgmt_count();
        }
        self.cluster
            .mgmt
            .values()
            .filter(|m| m.online && !self.faults.is_partitioned(m.id))
            .count()
    }

    /// The `i`-th reachable management node in id order.
    fn nth_reachable_mgmt(&self, i: usize) -> Option<NodeId> {
        if !self.faults.has_partitions() {
            return self.cluster.nth_online_mgmt(i);
        }
        self.cluster
            .mgmt
            .values()
            .filter(|m| m.online && !self.faults.is_partitioned(m.id))
            .nth(i)
            .map(|m| m.id)
    }

    fn route_request(&mut self, req: &DfsRequest) -> Option<NodeId> {
        let online_len = self.reachable_mgmt_count();
        if online_len == 0 {
            return None;
        }
        // A NetFunnel effect hijacks routing toward its victim.
        let funnel_active = self
            .bugs
            .active_effects()
            .any(|(s, _)| matches!(s.effect, Effect::NetFunnel));
        if funnel_active {
            let victim = self
                .bugs
                .active_effects()
                .find(|(s, _)| matches!(s.effect, Effect::NetFunnel))
                .and_then(|(_, v)| v)
                .filter(|v| {
                    self.cluster.mgmt.get(v).is_some_and(|m| m.online)
                        && !self.faults.is_partitioned(*v)
                })
                // The original victim is gone: the faulty measuring code
                // now funnels everything to the first surviving gateway.
                .or_else(|| self.nth_reachable_mgmt(0));
            if let Some(v) = victim {
                return Some(v);
            }
        }
        let path = request_path(req);
        // Administrative commands go to the cluster's HA admin endpoint,
        // which load-balances across management nodes; only client file
        // requests follow the flavor's routing scheme.
        let pick = if req.class().is_config() || path.is_empty() {
            self.rr_counter += 1;
            (self.rr_counter as usize) % online_len
        } else {
            match self.cfg.routing {
                RoutingKind::RoundRobin => {
                    self.rr_counter += 1;
                    (self.rr_counter as usize) % online_len
                }
                RoutingKind::HashPath => (hash_str(path) as usize) % online_len,
                RoutingKind::PrimarySubtree => {
                    // Dynamic subtree partitioning: hot directories are
                    // split across MDS ranks, so at equilibrium requests
                    // spread per-path within each directory.
                    let top = path.split('/').find(|c| !c.is_empty()).unwrap_or("");
                    (mix(hash_str(top), hash_str(path)) as usize) % online_len
                }
            }
        };
        self.nth_reachable_mgmt(pick)
    }

    fn charge_mgmt(&mut self, mgmt: Option<NodeId>, req: &DfsRequest) {
        let now = self.clock.now();
        let Some(id) = mgmt else { return };
        let slow = self.faults.slow_mgmt_factor(id) as f64;
        let Some(load) = self.cluster.mgmt_load_mut(id) else {
            return;
        };
        load.rps.add(now, 1.0);
        // Uniform per-request metadata cost: data transfer is handled by
        // the storage pipeline, not the management node's CPU. A slow-node
        // fault burns proportionally more CPU per request served.
        load.cpu.add(now, slow);
        match req.class() {
            OpClass::Read => load.read_io.add(now, 1.0),
            c if c.is_request() => load.write_io.add(now, 1.0),
            _ => {}
        }
    }

    // detlint:allow(crash-decomposition): delete/churn arms are atomic windows pending ROADMAP item 5 (migration is decomposed; create/delete/heal are next)
    fn apply_request(&mut self, req: &DfsRequest) -> SimResult<ReqOutcome> {
        match req {
            DfsRequest::Create { path, size } => self.do_create(path, *size),
            DfsRequest::Delete { path } => {
                let (fid, _) = self.ns.delete(path)?;
                self.cluster.free_file(fid);
                self.hash_cache.remove(&hash_str(path));
                Ok(ReqOutcome::default())
            }
            DfsRequest::Append { path, delta } => {
                let (_, size) = self.ns.open(path)?;
                self.do_resize(path, size.saturating_add(*delta))
            }
            DfsRequest::Overwrite { path, size } => self.do_resize(path, *size),
            DfsRequest::TruncateOverwrite { path, size } => self.do_resize(path, *size),
            DfsRequest::Open { path } => {
                let (fid, _) = self.ns.open(path)?;
                self.charge_read(fid);
                Ok(ReqOutcome::default())
            }
            DfsRequest::Mkdir { path } => {
                self.ns.mkdir(path)?;
                Ok(ReqOutcome::default())
            }
            DfsRequest::Rmdir { path } => {
                self.ns.rmdir(path)?;
                Ok(ReqOutcome::default())
            }
            DfsRequest::Rename { from, to } => self.do_rename(from, to),
            DfsRequest::AddMgmtNode => {
                if self.cluster.mgmt.len() as u32 >= self.cfg.max_mgmt_nodes {
                    return Err(SimError::ResourceLimit("management node".into()));
                }
                let id = self.cluster.add_mgmt(6);
                let now = self.clock.now();
                self.cluster.note_joined(id, now);
                self.faults.mgmt_added(id);
                Ok(ReqOutcome {
                    new_node: Some(id),
                    ..Default::default()
                })
            }
            DfsRequest::RemoveMgmtNode { node } => {
                self.cluster.remove_mgmt(*node)?;
                self.faults.mgmt_removed(*node);
                Ok(ReqOutcome::default())
            }
            DfsRequest::AddStorageNode { volumes, capacity } => {
                if self.cluster.storage.len() as u32 >= self.cfg.max_storage_nodes {
                    return Err(SimError::ResourceLimit("storage node".into()));
                }
                let cap = self.clamp_capacity(*capacity);
                let (id, vols) = self.cluster.add_storage((*volumes).max(1), cap);
                let now = self.clock.now();
                self.cluster.note_joined(id, now);
                self.faults.storage_added(id);
                Ok(ReqOutcome {
                    new_node: Some(id),
                    new_volumes: vols,
                    ..Default::default()
                })
            }
            DfsRequest::RemoveStorageNode { node } => {
                let displaced = self.cluster.remove_storage(*node)?;
                self.faults.storage_removed(*node);
                self.replace_displaced(displaced);
                Ok(ReqOutcome::default())
            }
            DfsRequest::AddVolume { node, capacity } => {
                if self
                    .cluster
                    .storage
                    .get(node)
                    .is_some_and(|n| n.volumes.len() as u32 >= self.cfg.max_volumes_per_node)
                {
                    return Err(SimError::ResourceLimit("volume".into()));
                }
                let cap = self.clamp_capacity(*capacity);
                let vid = self.cluster.add_volume(*node, cap)?;
                Ok(ReqOutcome {
                    new_volumes: vec![vid],
                    ..Default::default()
                })
            }
            DfsRequest::RemoveVolume { volume } => {
                let displaced = self.cluster.remove_volume(*volume)?;
                self.replace_displaced(displaced);
                Ok(ReqOutcome::default())
            }
            DfsRequest::ExpandVolume { volume, delta } => {
                // Provisioning limits: logical volumes can stretch at most
                // 10% beyond the standard disk (thin-provisioning slack).
                let cur = self
                    .cluster
                    .volume(*volume)
                    .ok_or(SimError::NoSuchVolume(*volume))?
                    .capacity;
                let max = self.cfg.volume_capacity + self.cfg.volume_capacity / 10;
                let delta = (*delta).min(max.saturating_sub(cur));
                self.cluster.expand_volume(*volume, delta)?;
                Ok(ReqOutcome::default())
            }
            DfsRequest::ReduceVolume { volume, delta } => {
                // A volume cannot shrink below 90% of the standard disk.
                let cur = self
                    .cluster
                    .volume(*volume)
                    .ok_or(SimError::NoSuchVolume(*volume))?
                    .capacity;
                let min = self.cfg.volume_capacity - self.cfg.volume_capacity / 10;
                let delta = (*delta).min(cur.saturating_sub(min));
                self.cluster.reduce_volume(*volume, delta)?;
                Ok(ReqOutcome::default())
            }
        }
    }

    // detlint:allow(crash-decomposition): create (namespace insert + fragment placement) runs as one atomic window pending ROADMAP item 5
    fn do_create(&mut self, path: &str, size: Bytes) -> SimResult<ReqOutcome> {
        let key = hash_str(path);
        let fragments = self.plan_fragments(key, size)?;
        let fid = self.ns.create(path, size)?;
        for (vol, bytes) in &fragments {
            if let Err(e) = self.cluster.store(fid, *vol, *bytes) {
                // Roll back partial placement.
                self.cluster.free_file(fid);
                let _ = self.ns.delete(path);
                self.frags_buf = fragments;
                return Err(e);
            }
            self.charge_storage_write(*vol);
        }
        self.frags_buf = fragments;
        if let Some(meta) = self.cluster.file_mut(fid) {
            meta.key = key;
        }
        Ok(ReqOutcome::default())
    }

    /// Plans the physical fragments for `size` bytes of new data.
    ///
    /// Block-striping flavors split the data into `block_size` blocks and
    /// place each block's replicas independently; whole-file flavors
    /// (GlusterFS) place one fragment per replica. A `HotspotPlacement`
    /// effect funnels a percentage of placements onto its victim node.
    fn plan_fragments(&mut self, key: u64, size: Bytes) -> SimResult<Vec<(VolumeId, Bytes)>> {
        if size == 0 {
            return Ok(Vec::new());
        }
        // Decide up front whether this placement must run on a *filtered*
        // copy of the volume views: partition faults hide nodes, and a
        // hotspot-placement effect that wins its percentage roll funnels
        // the whole file onto the victim. Neither applies on the common
        // path, which then plans against the cluster's canonical views
        // cache without copying — O(blocks · log V) per op instead of
        // O(V) — with speculative fill bumps that are rolled back before
        // the caller applies the real stores.
        let hotspot = self
            .bugs
            .active_effects()
            .find_map(|(s, v)| match s.effect {
                Effect::HotspotPlacement { pct } => v.map(|victim| (pct, victim)),
                _ => None,
            });
        let hot_victim = match hotspot {
            Some((pct, victim)) if ((mix(key, 0x68_6f_74) % 100) as u8) < pct => Some(victim),
            _ => None,
        };
        if hot_victim.is_none() && !self.faults.has_partitions() && self.placement_caching {
            return self.plan_fragments_canonical(key, size);
        }
        let mut views = std::mem::take(&mut self.views_buf);
        self.cluster.volume_views_into(&mut views);
        // Whether `views` is still the canonical list for the current
        // generation: the cached placement path requires it (rings index
        // into the canonical slice), hotspot- or partition-filtered views
        // must go through the uncached reference path.
        let mut canonical = true;
        if self.faults.has_partitions() {
            // Partitioned storage nodes are unreachable for new placements.
            let faults = &self.faults;
            let before = views.len();
            views.retain(|v| !faults.is_partitioned(v.node));
            if views.len() != before {
                canonical = false;
            }
        }
        if let Some(victim) = hot_victim {
            let mut victim_views: Vec<_> =
                views.iter().copied().filter(|v| v.node == victim).collect();
            if victim_views.is_empty() {
                // The original victim left the cluster; the faulty
                // placement path now funnels toward the currently most
                // utilized node instead.
                if let Some(hot) = Balancer::hottest_node(&self.cluster) {
                    victim_views = views.iter().copied().filter(|v| v.node == hot).collect();
                }
            }
            if !victim_views.is_empty() {
                views = victim_views;
                canonical = false;
            }
        }
        let block = self.effective_block(size);
        // Fragments stay block-granular so the balancer can move them
        // individually; consecutive blocks landing on the same volume are
        // coalesced only up to a migration-friendly cap.
        const MAX_FRAGMENT: Bytes = 64 * MIB;
        let mut out = std::mem::take(&mut self.frags_buf);
        out.clear();
        let mut placed = std::mem::take(&mut self.placed_buf);
        // Volume→position index for the intra-plan fill updates below: on
        // large view lists a per-replica linear scan is an ambient O(V)
        // inside the block loop, so build the sorted index once. Small
        // lists stay on the linear scan (the index costs more than it
        // saves there).
        const LINEAR_SCAN_MAX: usize = 64;
        let mut pos_index = std::mem::take(&mut self.view_pos_buf);
        pos_index.clear();
        if views.len() > LINEAR_SCAN_MAX {
            pos_index.extend(views.iter().enumerate().map(|(i, v)| (v.volume, i as u32)));
            pos_index.sort_unstable_by_key(|&(vol, _)| vol);
        }
        let mut remaining = size;
        let mut block_idx = 0u64;
        let mut failed = None;
        let generation = self.cluster.generation();
        while remaining > 0 {
            let b = block.min(remaining);
            if canonical && self.placement_caching {
                self.placement.place_cached_into(
                    &mut self.placement_cache,
                    generation,
                    mix(key, block_idx),
                    b,
                    self.cfg.replicas,
                    &views,
                    &mut placed,
                );
            } else {
                placed = self
                    .placement
                    .place(mix(key, block_idx), b, self.cfg.replicas, &views);
            }
            // Fewer replicas than requested is acceptable under space
            // pressure (reduced redundancy); zero placements is ENOSPC.
            if placed.is_empty() {
                failed = Some(SimError::OutOfSpace {
                    requested: b,
                    free: self.cluster.total_free(),
                });
                break;
            }
            for &vol in &placed {
                let cap = MAX_FRAGMENT.max(block);
                match out
                    .iter_mut()
                    .rev()
                    .take(self.cfg.replicas)
                    .find(|(v, bytes)| *v == vol && bytes.saturating_add(b) <= cap)
                {
                    Some((_, bytes)) => *bytes += b,
                    None => out.push((vol, b)),
                }
                // Keep the planning views' fill levels current so later
                // blocks avoid volumes this plan already filled.
                let pos = if pos_index.is_empty() {
                    views.iter().position(|v| v.volume == vol)
                } else {
                    pos_index
                        .binary_search_by_key(&vol, |&(v, _)| v)
                        .ok()
                        .map(|i| pos_index[i].1 as usize)
                };
                if let Some(p) = pos {
                    views[p].used = views[p].used.saturating_add(b);
                }
            }
            remaining -= b;
            block_idx += 1;
        }
        self.views_buf = views;
        self.placed_buf = placed;
        self.view_pos_buf = pos_index;
        match failed {
            Some(e) => {
                self.frags_buf = out;
                Err(e)
            }
            None => Ok(out),
        }
    }

    /// Chooses the effective block size for `size` bytes: whole-file when
    /// the flavor does not stripe (sharding large files like the GlusterFS
    /// shard translator); otherwise cap the number of blocks so enormous
    /// files stay tractable (a real DFS would use larger chunks, too).
    fn effective_block(&self, size: Bytes) -> Bytes {
        if self.cfg.block_size == 0 {
            if self.cfg.shard_threshold > 0 && size > self.cfg.shard_threshold {
                self.cfg.shard_size.max(size.div_ceil(64))
            } else {
                size
            }
        } else {
            self.cfg.block_size.max(size.div_ceil(64))
        }
    }

    /// The common-case planner: no partition filtering, no hotspot reroute,
    /// placement caching on. Plans directly against the cluster's canonical
    /// views cache (no per-op O(V) copy); intra-plan fill awareness comes
    /// from speculative `bump_view_used` bumps recorded in an undo list and
    /// rolled back before returning — the caller's `store` calls then apply
    /// the real mutations, which re-sync the cache in place.
    fn plan_fragments_canonical(
        &mut self,
        key: u64,
        size: Bytes,
    ) -> SimResult<Vec<(VolumeId, Bytes)>> {
        let block = self.effective_block(size);
        const MAX_FRAGMENT: Bytes = 64 * MIB;
        let mut out = std::mem::take(&mut self.frags_buf);
        out.clear();
        let mut placed = std::mem::take(&mut self.placed_buf);
        let mut remaining = size;
        let mut block_idx = 0u64;
        let mut failed = None;
        let generation = self.cluster.generation();
        // Speculative fill bumps to unwind: (view position, previous used).
        // The buffer is a reusable field so the hot path allocates nothing;
        // its length is the number of *touched* views, never O(V).
        let mut undo = std::mem::take(&mut self.undo_buf);
        undo.clear();
        while remaining > 0 {
            let b = block.min(remaining);
            self.placement.place_cached_into(
                &mut self.placement_cache,
                generation,
                mix(key, block_idx),
                b,
                self.cfg.replicas,
                self.cluster.canonical_views(),
                &mut placed,
            );
            // Fewer replicas than requested is acceptable under space
            // pressure (reduced redundancy); zero placements is ENOSPC.
            if placed.is_empty() {
                failed = Some(SimError::OutOfSpace {
                    requested: b,
                    free: self.cluster.total_free(),
                });
                break;
            }
            for &vol in &placed {
                let cap = MAX_FRAGMENT.max(block);
                match out
                    .iter_mut()
                    .rev()
                    .take(self.cfg.replicas)
                    .find(|(v, bytes)| *v == vol && bytes.saturating_add(b) <= cap)
                {
                    Some((_, bytes)) => *bytes += b,
                    None => out.push((vol, b)),
                }
                // Keep the planning views' fill levels current so later
                // blocks avoid volumes this plan already filled.
                if let Some(pos) = self.cluster.view_pos(vol) {
                    undo.push((pos, self.cluster.bump_view_used(pos, b)));
                }
            }
            remaining -= b;
            block_idx += 1;
        }
        // Unwind the speculative bumps in reverse so repeated bumps of the
        // same view settle back to the original fill level exactly.
        for (pos, old) in undo.drain(..).rev() {
            self.cluster.set_view_used(pos, old);
        }
        self.undo_buf = undo;
        self.placed_buf = placed;
        match failed {
            Some(e) => {
                self.frags_buf = out;
                Err(e)
            }
            None => Ok(out),
        }
    }

    // detlint:allow(crash-decomposition): resize (namespace size + replica rescale/spill) runs as one atomic window pending ROADMAP item 5
    fn do_resize(&mut self, path: &str, new_size: Bytes) -> SimResult<ReqOutcome> {
        let (fid, old) = self.ns.open(path)?;
        if old == 0 && new_size > 0 {
            // Growth from empty requires fresh placement.
            let key = self
                .cluster
                .files()
                .get(&fid)
                .map(|m| m.key)
                .unwrap_or(fid.0);
            let fragments = self.plan_fragments(key, new_size)?;
            for (vol, bytes) in &fragments {
                self.cluster.store(fid, *vol, *bytes)?;
                self.charge_storage_write(*vol);
            }
            self.frags_buf = fragments;
            self.ns.resize(path, new_size)?;
            return Ok(ReqOutcome::default());
        }
        let whole_file = self.cfg.block_size == 0
            && (self.cfg.shard_threshold == 0 || new_size.max(old) <= self.cfg.shard_threshold);
        if new_size > old && !whole_file {
            // Striped growth appends new blocks; existing fragments are
            // immutable once written (HDFS/Ceph/LeoFS semantics).
            let key = self
                .cluster
                .files()
                .get(&fid)
                .map(|m| m.key)
                .unwrap_or(fid.0);
            let delta = new_size - old;
            let fragments = self.plan_fragments(mix(key, old), delta)?;
            for (vol, bytes) in &fragments {
                self.cluster.store(fid, *vol, *bytes)?;
                self.charge_storage_write(*vol);
            }
            self.frags_buf = fragments;
            self.ns.resize(path, new_size)?;
            return Ok(ReqOutcome::default());
        }
        // Whole-file growth and all shrinks rescale fragments in place.
        self.cluster.rescale_file(fid, old, new_size)?;
        self.ns.resize(path, new_size)?;
        // Charge write IO on every node holding a fragment.
        let vols: Vec<VolumeId> = self
            .cluster
            .files()
            .get(&fid)
            .map(|m| m.replicas.iter().map(|r| r.volume).collect())
            .unwrap_or_default();
        for v in vols {
            self.charge_storage_write(v);
        }
        Ok(ReqOutcome::default())
    }

    /// Single-replica hash-location lookup on the canonical views (Gluster
    /// linkfile maintenance), through the placement cache when enabled.
    fn hash_location(&mut self, key: u64) -> Option<VolumeId> {
        if !self.faults.has_partitions() && self.placement_caching {
            // Common case: look up against the cluster's canonical views
            // cache directly, no per-op copy.
            let generation = self.cluster.generation();
            let mut placed = std::mem::take(&mut self.placed_buf);
            self.placement.place_cached_into(
                &mut self.placement_cache,
                generation,
                key,
                0,
                1,
                self.cluster.canonical_views(),
                &mut placed,
            );
            let loc = placed.first().copied();
            self.placed_buf = placed;
            return loc;
        }
        self.cluster.volume_views_into(&mut self.views_buf);
        let mut canonical = true;
        if self.faults.has_partitions() {
            let faults = &self.faults;
            let before = self.views_buf.len();
            self.views_buf.retain(|v| !faults.is_partitioned(v.node));
            canonical = self.views_buf.len() == before;
        }
        if canonical && self.placement_caching {
            let mut placed = std::mem::take(&mut self.placed_buf);
            self.placement.place_cached_into(
                &mut self.placement_cache,
                self.cluster.generation(),
                key,
                0,
                1,
                &self.views_buf,
                &mut placed,
            );
            let loc = placed.first().copied();
            self.placed_buf = placed;
            loc
        } else {
            self.placement
                .place(key, 0, 1, &self.views_buf)
                .first()
                .copied()
        }
    }

    fn do_rename(&mut self, from: &str, to: &str) -> SimResult<ReqOutcome> {
        let moved_file = self.ns.rename(from, to)?;
        if let Some(fid) = moved_file {
            let new_key = hash_str(to);
            if self.cfg.flavor == Flavor::GlusterFs {
                // DHT semantics: data stays put; if the new hash location
                // differs from where the data lives, a linkfile appears at
                // the hash location.
                let hash_loc = self.hash_location(new_key);
                if let Some(meta) = self.cluster.file_mut(fid) {
                    meta.key = new_key;
                    let data_at: Vec<VolumeId> = meta.replicas.iter().map(|r| r.volume).collect();
                    meta.linkfile_at = match hash_loc {
                        Some(h) if !data_at.contains(&h) => Some(h),
                        _ => None,
                    };
                }
            } else if let Some(meta) = self.cluster.file_mut(fid) {
                meta.key = new_key;
            }
        }
        Ok(ReqOutcome::default())
    }

    fn charge_read(&mut self, fid: FileId) {
        let now = self.clock.now();
        let vols: Vec<VolumeId> = self
            .cluster
            .files()
            .get(&fid)
            .map(|m| m.replicas.iter().map(|r| r.volume).collect())
            .unwrap_or_default();
        // Reads are served by one replica; pick deterministically.
        if let Some(v) = vols.first() {
            if let Some(owner) = self.cluster.volume_owner.get(v).copied() {
                if let Some(load) = self.cluster.storage_load_mut(owner) {
                    load.read_io.add(now, 1.0);
                    load.cpu.add(now, 0.5);
                }
            }
        }
    }

    fn charge_storage_write(&mut self, vol: VolumeId) {
        let now = self.clock.now();
        if let Some(owner) = self.cluster.volume_owner.get(&vol).copied() {
            if let Some(load) = self.cluster.storage_load_mut(owner) {
                load.write_io.add(now, 1.0);
                load.cpu.add(now, 0.5);
            }
        }
    }

    /// Re-places replicas displaced by node/volume removal; unplaceable
    /// bytes are lost (and counted).
    ///
    /// Re-replication targets the least-utilized volumes first, as real
    /// recovery does (HDFS re-replication, Ceph backfill): decommissioning
    /// a node therefore barely disturbs the balance on its own — reaching
    /// a deeply imbalanced state takes coordinated sequences, not a single
    /// heavyweight command (Finding 6).
    fn replace_displaced(&mut self, displaced: Vec<(FileId, crate::cluster::Replica)>) {
        if displaced.is_empty() {
            return;
        }
        let mut views = std::mem::take(&mut self.views_buf);
        self.cluster.volume_views_into(&mut views);
        // Least-utilized volume with room (by fill fraction). `total_cmp`
        // keeps the sort a total order (fill fractions are never NaN here
        // thanks to `capacity.max(1)`, but a partial comparator falling
        // back to `Equal` is a latent determinism hazard). The comparator
        // is a *strict* total order (volume ids are unique), so sorting
        // once and re-inserting the single view each store changes yields
        // exactly the order a full re-sort per replica used to produce —
        // O((V + D) log V) instead of O(D · V log V).
        fn by_fill(a: &VolumeView, b: &VolumeView) -> Ordering {
            let fa = a.used as f64 / a.capacity.max(1) as f64;
            let fb = b.used as f64 / b.capacity.max(1) as f64;
            fa.total_cmp(&fb).then(a.volume.cmp(&b.volume))
        }
        views.sort_by(by_fill);
        for (fid, replica) in displaced {
            let target = views.iter().position(|v| v.free() >= replica.bytes);
            match target {
                Some(i)
                    if self
                        .cluster
                        .store(fid, views[i].volume, replica.bytes)
                        .is_ok() =>
                {
                    self.charge_storage_write(views[i].volume);
                    let mut moved = views.remove(i);
                    moved.used = moved.used.saturating_add(replica.bytes);
                    let pos = views.partition_point(|v| by_fill(v, &moved) == Ordering::Less);
                    views.insert(pos, moved);
                }
                _ => {
                    self.stats.bytes_lost += replica.bytes;
                }
            }
        }
        self.views_buf = views;
    }

    // ------------------------------------------------------------------
    // Time, migration execution and balancer activation
    // ------------------------------------------------------------------

    /// Advances virtual time without executing a request (used while the
    /// tester waits for rebalancing to finish).
    pub fn tick(&mut self, ms: u64) {
        self.advance(ms);
        self.sample_variance();
        self.apply_cpu_spin();
        self.maybe_activate_balancer(OpClass::Read, true);
    }

    fn advance(&mut self, ms: u64) {
        // An armed crash fired and its victim has not been recovered yet:
        // the explorer inspects the frozen mid-migration state before
        // anything else happens, so time holds still.
        if self.crash.in_flight.is_some() {
            return;
        }
        let now = self.clock.advance(ms);
        // Fire scheduled environment faults before migration steps: the
        // steps must observe crashes/partitions that became due.
        if self.faults.any() {
            self.apply_due_faults(now.as_millis());
        }
        // Execute due migration steps.
        let steps = self.migrate_timer.due(now);
        for _ in 0..steps {
            if self.balancer.status() != RebalanceStatus::Running {
                break;
            }
            let moves = self.balancer.next_moves(self.cfg.moves_per_step);
            for m in moves {
                self.execute_move(&m);
                if self.crash.in_flight.is_some() {
                    // The machine applying this move just crashed; the
                    // rest of the step dies with the aborted round.
                    return;
                }
            }
            if self.balancer.status() == RebalanceStatus::Done {
                let ev = SimEvent::RebalanceDone {
                    moves: self.balancer.total_moves as usize,
                };
                self.feed_bugs(&ev);
                self.touch_deep(0xD0_4E, self.balancer.total_moves);
            }
        }
    }

    fn apply_due_faults(&mut self, now_ms: u64) {
        while let Some(kind) = self.faults.next_due(now_ms) {
            self.apply_fault(kind);
        }
    }

    /// Applies one fault event, resolving rank-based targets against the
    /// current online sets (id-ordered, hence deterministic).
    fn apply_fault(&mut self, kind: FaultKind) {
        fn pick(ids: &[NodeId], index: u32) -> Option<NodeId> {
            if ids.is_empty() {
                None
            } else {
                Some(ids[index as usize % ids.len()])
            }
        }
        match kind {
            FaultKind::CrashStorage { index } => {
                let online = self.cluster.online_storage();
                // Never crash the last survivor (mirrors the bug engine).
                if online.len() <= 1 {
                    return;
                }
                let id = online[index as usize % online.len()];
                self.cluster.set_offline(id);
                self.crashed.push(id);
                self.faults.note_crashed(id);
                self.balancer.abort();
            }
            FaultKind::RestartStorage { index } => {
                if let Some(id) = self.faults.take_crashed(index) {
                    self.cluster.set_online(id);
                    self.crashed.retain(|n| *n != id);
                }
            }
            FaultKind::SlowMgmt { index, factor } => {
                if let Some(id) = pick(&self.cluster.online_mgmt(), index) {
                    self.faults.set_slow_mgmt(id, factor);
                }
            }
            FaultKind::SlowStorage { index, factor } => {
                if let Some(id) = pick(&self.cluster.online_storage(), index) {
                    self.faults.set_slow_storage(id, factor);
                }
            }
            FaultKind::DiskFull { index } => {
                if let Some(id) = pick(&self.cluster.online_storage(), index) {
                    self.cluster.set_volumes_full(id);
                    self.faults.note_disk_full(id);
                }
            }
            FaultKind::LossyMigration { pct } => self.faults.set_loss(pct),
            // Partition targets rank over the still-reachable set, so
            // successive events cut off distinct nodes.
            FaultKind::PartitionMgmt { index } => {
                let mut reachable = self.cluster.online_mgmt();
                reachable.retain(|id| !self.faults.is_partitioned(*id));
                if let Some(id) = pick(&reachable, index) {
                    self.faults.partition(id);
                }
            }
            FaultKind::PartitionStorage { index } => {
                let mut reachable = self.cluster.online_storage();
                reachable.retain(|id| !self.faults.is_partitioned(*id));
                if let Some(id) = pick(&reachable, index) {
                    self.faults.partition(id);
                }
            }
            FaultKind::Heal => self.faults.heal(),
        }
    }

    fn execute_move(&mut self, m: &MigrationMove) {
        // The plan may be stale: the file may be gone or moved meanwhile.
        let Some(meta) = self.cluster.files().get(&m.file) else {
            return;
        };
        if !meta.replicas.iter().any(|r| r.volume == m.from) {
            return;
        }
        let key = meta.key;
        let had_link = meta.linkfile_at.is_some();
        let now = self.clock.now();
        let cache_hit = self
            .hash_cache
            .get(&key)
            .is_some_and(|expiry| now.as_millis() < expiry.as_millis());

        if self.faults.any() {
            // Faulted endpoints: a migration cannot reach an offline or
            // partitioned node (the move is dropped like a failed balancer
            // iteration), and slow storage nodes stall their moves to
            // every `factor`-th step.
            let reachable = |id: NodeId| {
                self.cluster.storage.get(&id).is_some_and(|n| n.online)
                    && !self.faults.is_partitioned(id)
            };
            if !reachable(m.from_node) || !reachable(m.to_node) {
                return;
            }
            let stall = self
                .faults
                .slow_storage_factor(m.from_node)
                .max(self.faults.slow_storage_factor(m.to_node));
            if stall > 1 && !self.faults.defer_tick(stall) {
                self.balancer.requeue(m.clone());
                return;
            }
        }

        // Data-loss effects and lossy-migration faults corrupt the move;
        // the worse of the two loss rates applies.
        let bug_loss = self
            .bugs
            .active_effects()
            .find_map(|(s, _)| match s.effect {
                Effect::DeleteMigratedData { pct } => Some(pct),
                _ => None,
            })
            .unwrap_or(0);
        let kept = lossy_kept(m.bytes, bug_loss.max(self.faults.loss_pct()));

        // With crash-point instrumentation armed, the move runs as
        // enumerable micro-steps instead of one atomic transition. The
        // disarmed hot path below is byte-identical to the
        // pre-instrumentation behaviour (a single branch away).
        if self.crash.armed() {
            self.execute_move_interruptible(m, key, had_link, cache_hit, kept);
            return;
        }

        match self.cluster.migrate(m.file, m.from, m.to, kept) {
            Ok(moved) => {
                self.stats.migrations += 1;
                self.stats.bytes_migrated += moved;
                self.balancer.total_moves += 1;
                self.balancer.total_bytes_moved += moved;
                if moved > kept {
                    self.stats.bytes_lost += moved - kept;
                }
                // Gluster hash-cache bookkeeping + linkfile maintenance.
                if self.cfg.hash_cache_ttl_ms > 0 {
                    self.hash_cache
                        .insert(key, now.advanced(self.cfg.hash_cache_ttl_ms));
                    let hash_loc = self.hash_location(key);
                    if let Some(meta) = self.cluster.file_mut(m.file) {
                        let data_at: Vec<VolumeId> =
                            meta.replicas.iter().map(|r| r.volume).collect();
                        meta.linkfile_at = match hash_loc {
                            Some(h) if !data_at.contains(&h) => Some(h),
                            _ => None,
                        };
                    }
                }
                // IO/CPU accounting for both ends of the move.
                self.charge_storage_write(m.to);
                let now = self.clock.now();
                if let Some(load) = self.cluster.storage_load_mut(m.from_node) {
                    load.read_io.add(now, 1.0);
                    load.cpu.add(now, 1.0);
                }
            }
            Err(_) => {
                // Destination filled up meanwhile; the move is dropped, as
                // a real balancer iteration would skip it.
            }
        }
        let ev = SimEvent::MigrationStep {
            cache_hit,
            had_link,
        };
        self.feed_bugs(&ev);
        let variance_bucket = self.variance_bucket();
        self.touch_deep(
            mix(0x4D16, (cache_hit as u64) << 1 | had_link as u64),
            variance_bucket,
        );
    }

    // ------------------------------------------------------------------
    // Crash-point exploration (see crate::crash)
    // ------------------------------------------------------------------

    /// The armed variant of the atomic migrate-and-account tail of
    /// [`DfsSim::execute_move`]: the same state transitions as enumerable
    /// micro-steps with a crash point after each. Composed with no crash
    /// firing, the result is byte-identical to the atomic path (pinned by
    /// a differential test).
    fn execute_move_interruptible(
        &mut self,
        m: &MigrationMove,
        key: u64,
        had_link: bool,
        cache_hit: bool,
        kept: Bytes,
    ) {
        self.run_move_microsteps(m, key, kept);
        if self.crash.in_flight.is_some() {
            // The victim died mid-move: no step event is emitted — the
            // balancer never hears back, like a lost RPC.
            return;
        }
        let ev = SimEvent::MigrationStep {
            cache_hit,
            had_link,
        };
        self.feed_bugs(&ev);
        let variance_bucket = self.variance_bucket();
        self.touch_deep(
            mix(0x4D16, (cache_hit as u64) << 1 | had_link as u64),
            variance_bucket,
        );
    }

    fn run_move_microsteps(&mut self, m: &MigrationMove, key: u64, kept: Bytes) {
        // Stale-plan and capacity validation mirrors the atomic path: the
        // source replica size caps `kept`, and one up-front space check
        // drops the move when the destination cannot take it.
        let Some(meta) = self.cluster.files().get(&m.file) else {
            return;
        };
        let Some(moved) = meta
            .replicas
            .iter()
            .find(|r| r.volume == m.from)
            .map(|r| r.bytes)
        else {
            return;
        };
        let kept = kept.min(moved);
        if self.cluster.volume(m.to).is_none_or(|v| v.free() < kept) {
            return;
        }
        if self.crash_point(m, MigrationStepKind::Plan, 0, moved, kept, key) {
            return;
        }
        let frags = fragment_count(kept);
        let mut copied: Bytes = 0;
        for i in 0..frags {
            let share = fragment_bytes(kept, frags, i);
            if self.cluster.migrate_copy(m.to, share).is_err() {
                // Unreachable after the up-front check; drop the move like
                // the atomic error path, leaving no partial state behind.
                self.cluster.migrate_rollback_copy(m.to, copied);
                return;
            }
            copied += share;
            let step = MigrationStepKind::Copy {
                fragment: i + 1,
                of: frags,
            };
            if self.crash_point(m, step, copied, moved, kept, key) {
                return;
            }
        }
        if self
            .cluster
            .migrate_commit_swap(m.file, m.from, m.to, kept)
            .is_err()
        {
            self.cluster.migrate_rollback_copy(m.to, copied);
            return;
        }
        if self.crash_point(m, MigrationStepKind::CommitSwap, copied, moved, kept, key) {
            return;
        }
        self.cluster.migrate_commit_account(m.from, moved);
        if self.crash_point(
            m,
            MigrationStepKind::CommitAccount,
            copied,
            moved,
            kept,
            key,
        ) {
            return;
        }
        // Cleanup bookkeeping, identical to the atomic path's success arm.
        self.stats.migrations += 1;
        self.stats.bytes_migrated += moved;
        self.balancer.total_moves += 1;
        self.balancer.total_bytes_moved += moved;
        if moved > kept {
            self.stats.bytes_lost += moved - kept;
        }
        let now = self.clock.now();
        if self.cfg.hash_cache_ttl_ms > 0 {
            self.hash_cache
                .insert(key, now.advanced(self.cfg.hash_cache_ttl_ms));
            let hash_loc = self.hash_location(key);
            if let Some(meta) = self.cluster.file_mut(m.file) {
                let data_at: Vec<VolumeId> = meta.replicas.iter().map(|r| r.volume).collect();
                meta.linkfile_at = match hash_loc {
                    Some(h) if !data_at.contains(&h) => Some(h),
                    _ => None,
                };
            }
        }
        self.charge_storage_write(m.to);
        if let Some(load) = self.cluster.storage_load_mut(m.from_node) {
            load.read_io.add(now, 1.0);
            load.cpu.add(now, 1.0);
        }
        let _ = self.crash_point(m, MigrationStepKind::Cleanup, copied, moved, kept, key);
    }

    /// Passes one crash point. Enumeration mode counts and labels it;
    /// crash mode kills the machine applying the step when the armed
    /// index matches. Returns `true` when a crash fired (the move halts).
    fn crash_point(
        &mut self,
        m: &MigrationMove,
        step: MigrationStepKind,
        copied: Bytes,
        moved: Bytes,
        kept: Bytes,
        key: u64,
    ) -> bool {
        let idx = self.crash.points_seen;
        self.crash.points_seen += 1;
        match self.crash.plan {
            // Unreachable: only the armed micro-step path calls this.
            None => false,
            Some(CrashPlan::Enumerate) => {
                let label = format!("{} f{} {}->{}", step.label(), m.file, m.from, m.to);
                self.crash.labels.push(label);
                false
            }
            Some(CrashPlan::At(k)) => {
                if idx != k {
                    return false;
                }
                // The machine applying this micro-step dies: the
                // destination while data is landing, the source side for
                // commit and cleanup.
                let victim = match step {
                    MigrationStepKind::Plan | MigrationStepKind::Copy { .. } => m.to_node,
                    _ => m.from_node,
                };
                self.crash.in_flight = Some(InFlightMove {
                    mv: m.clone(),
                    step,
                    copied,
                    moved,
                    kept,
                    key,
                    victim,
                    point: idx,
                });
                self.cluster.set_offline(victim);
                if !self.crashed.contains(&victim) {
                    self.crashed.push(victim);
                }
                // A crashed mover aborts the round, exactly like an
                // environment crash fault.
                self.balancer.abort();
                true
            }
        }
    }

    /// Arms crash-point enumeration: migration execution switches to the
    /// micro-step path and counts + labels every crash point it passes,
    /// crashing nothing. Drive time forward, then read the labels back
    /// with [`DfsSim::disarm_crash`].
    pub fn arm_crash_enumeration(&mut self) {
        self.crash = CrashRuntime {
            plan: Some(CrashPlan::Enumerate),
            ..CrashRuntime::default()
        };
    }

    /// Arms a crash at the `k`-th (0-based) crash point passed from now
    /// on. With the same driving sequence, point indices line up exactly
    /// with a previous enumeration from the same state.
    pub fn arm_crash_at(&mut self, k: u64) {
        self.crash = CrashRuntime {
            plan: Some(CrashPlan::At(k)),
            ..CrashRuntime::default()
        };
    }

    /// Disarms the crash instrumentation, returning the labels collected
    /// while enumerating. A fired-but-unrecovered crash and the last
    /// recovered move survive disarming — the oracle still needs them.
    pub fn disarm_crash(&mut self) -> Vec<String> {
        self.crash.plan = None;
        self.crash.points_seen = 0;
        std::mem::take(&mut self.crash.labels)
    }

    /// Crash points passed since the instrumentation was armed.
    pub fn crash_points_seen(&self) -> u64 {
        self.crash.points_seen
    }

    /// The migration interrupted by a fired crash, until recovery runs.
    pub fn crashed_in_flight(&self) -> Option<&InFlightMove> {
        self.crash.in_flight.as_ref()
    }

    /// Restarts the machine an armed crash killed and runs the restart
    /// repair a real node performs when it rejoins after dying mid-move.
    ///
    /// The repair deliberately carries the three **seeded crash-window
    /// bug classes** this explorer exists to find; each one manifests
    /// only when the crash landed inside its micro-window, which is why
    /// random-time injection rarely triggers them:
    ///
    /// - crash mid-**copy** → *orphan replica*: the restart-time volume
    ///   scan re-registers partially copied bytes as allocated space but
    ///   never cross-checks them against the file table, so nobody owns
    ///   or reclaims them (correct recovery would roll the copy back);
    /// - crash after **commit-swap** → *double-counted blocks*: the file
    ///   table already names the destination, so recovery declares the
    ///   move complete and never reclaims the source space (correct
    ///   recovery would finish the source-side accounting);
    /// - crash after **commit-account** → *lost linkfile*: the linkfile
    ///   rewrite scheduled after the commit is forgotten across the
    ///   restart, so DHT lookups at the hash location find neither data
    ///   nor a pointer (correct recovery would recompute the linkfile;
    ///   only linkfile-routing flavors are affected).
    ///
    /// Returns the interrupted move's record, also kept internally for
    /// [`DfsSim::check_crash_invariants`]. `None` if no crash is pending.
    pub fn recover_crashed_machine(&mut self) -> Option<InFlightMove> {
        let inf = self.crash.in_flight.take()?;
        self.cluster.set_online(inf.victim);
        self.crashed.retain(|n| *n != inf.victim);
        match inf.step {
            MigrationStepKind::Plan | MigrationStepKind::Cleanup => {
                // Nothing was mid-flight: before the first fragment or
                // after full durability, a restart is clean.
            }
            MigrationStepKind::Copy { .. } => {
                // SEEDED BUG — orphan replica (see the doc comment). The
                // correct repair is:
                //   self.cluster.migrate_rollback_copy(inf.mv.to, inf.copied);
            }
            MigrationStepKind::CommitSwap => {
                // SEEDED BUG — double-counted blocks. The correct repair:
                //   self.cluster.migrate_commit_account(inf.mv.from, inf.moved);
            }
            MigrationStepKind::CommitAccount => {
                // SEEDED BUG — lost linkfile: the pending linkfile
                // recompute for `inf.mv.file` is dropped on restart.
            }
        }
        self.crash.recovered = Some(inf.clone());
        Some(inf)
    }

    /// Crash-consistency oracle: after a crash-and-recover cycle,
    /// re-derives the namespace/replica/accounting invariants from first
    /// principles and classifies any violation into the seeded
    /// crash-window classes. Runs in every build profile — it is the
    /// release-mode face of [`DfsSim::audit_state`], which backstops the
    /// scoped checks here.
    pub fn check_crash_invariants(&mut self) -> Result<(), CrashViolation> {
        if let Some(inf) = self.crash.recovered.clone() {
            // Destination first: bytes present on disk that the file table
            // does not account for are an orphaned partial copy.
            let to_used = self.cluster.volume(inf.mv.to).map_or(0, |v| v.used);
            let to_expect = self.cluster.recomputed_used(inf.mv.to);
            if to_used > to_expect {
                return Err(CrashViolation {
                    class: CrashClass::OrphanReplica,
                    detail: format!(
                        "volume {} holds {} bytes but the file table accounts for {}: \
                         {} orphan bytes left by '{}'",
                        inf.mv.to,
                        to_used,
                        to_expect,
                        to_used - to_expect,
                        inf.label()
                    ),
                });
            }
            // Source next: space still charged for a replica the file
            // table re-pointed elsewhere means the bytes count twice.
            let from_used = self.cluster.volume(inf.mv.from).map_or(0, |v| v.used);
            let from_expect = self.cluster.recomputed_used(inf.mv.from);
            if from_used > from_expect {
                return Err(CrashViolation {
                    class: CrashClass::DoubleCountedBlocks,
                    detail: format!(
                        "volume {} still charges {} bytes but the file table accounts \
                         for {}: {} bytes double-counted across {} and {} after '{}'",
                        inf.mv.from,
                        from_used,
                        from_expect,
                        from_used - from_expect,
                        inf.mv.from,
                        inf.mv.to,
                        inf.label()
                    ),
                });
            }
            // Linkfile invariant, for committed moves on linkfile-routing
            // flavors: the moved file must end with exactly the linkfile
            // its post-move layout requires.
            if inf.step.committed() && self.cfg.hash_cache_ttl_ms > 0 {
                let layout = self.cluster.files().get(&inf.mv.file).map(|meta| {
                    let data_at: Vec<VolumeId> = meta.replicas.iter().map(|r| r.volume).collect();
                    (meta.linkfile_at, data_at)
                });
                if let Some((link, data_at)) = layout {
                    let hash_loc = self.hash_location(inf.key);
                    let expected = match hash_loc {
                        Some(h) if !data_at.contains(&h) => Some(h),
                        _ => None,
                    };
                    if link != expected {
                        return Err(CrashViolation {
                            class: CrashClass::LostLinkfile,
                            detail: format!(
                                "file f{} data sits at {:?} with hash location {:?}, \
                                 which requires linkfile {:?}, but the namespace holds \
                                 {:?} after '{}'",
                                inf.mv.file,
                                data_at,
                                hash_loc,
                                expected,
                                link,
                                inf.label()
                            ),
                        });
                    }
                }
            }
        }
        // Backstop: the full first-principles audit catches anything the
        // scoped checks above did not classify.
        self.audit_state().map_err(|detail| CrashViolation {
            class: CrashClass::Other,
            detail,
        })
    }

    /// Turns the automatic post-restore state audit on or off at runtime.
    /// Debug builds default to on; release builds default to off so
    /// hot-path campaigns keep their throughput, and the crash explorer
    /// (or any caller that wants the release-mode oracle) opts in.
    pub fn set_runtime_audit(&mut self, on: bool) {
        self.runtime_audit = on;
    }

    /// Whether the automatic post-restore audit is currently enabled.
    pub fn runtime_audit_enabled(&self) -> bool {
        self.runtime_audit
    }

    fn maybe_activate_balancer(&mut self, class: OpClass, ok: bool) {
        let membership = ok && class.is_membership();
        let due = match self.cfg.balancer {
            BalancerStyle::Continuous => true,
            BalancerStyle::OnDemand { .. } | BalancerStyle::Periodic { .. } => {
                let now = self.clock.now();
                self.check_timer
                    .as_mut()
                    .map(|t| t.due(now) > 0)
                    .unwrap_or(false)
            }
            BalancerStyle::OnMembership => membership,
        };
        // GlusterFS also starts a rebalance when volume topology changes
        // (volume add/remove-brick commands imply `rebalance start`), and
        // every flavor re-replicates after losing a node or volume —
        // decommissioning is itself a rebalance process.
        let gluster_topology = self.cfg.flavor == Flavor::GlusterFs
            && membership
            && matches!(class, OpClass::VolumeAdd | OpClass::VolumeRemove);
        let recovery =
            membership && matches!(class, OpClass::StorageRemove | OpClass::VolumeRemove);
        if (due || gluster_topology || recovery)
            && self.balancer.status() == RebalanceStatus::Done
            && self.balancer.needs_rebalance(&self.cluster)
        {
            self.start_rebalance_round();
        }
    }

    /// The `rebalance` API: explicitly starts a rebalance round (the paper
    /// uses this for the detector's double-check).
    pub fn rebalance(&mut self) {
        if self.balancer.status() == RebalanceStatus::Done {
            self.start_rebalance_round();
        }
    }

    /// The `rebalance state` API.
    pub fn rebalance_status(&self) -> RebalanceStatus {
        self.balancer.status()
    }

    fn start_rebalance_round(&mut self) {
        // Effect hooks in the planner. The hooks are applied *before*
        // planning where the outcome is provable without the plan: a
        // MisreportRebalance always clears it, and the hot-node filter
        // empties it whenever every donor IS the hot node (the common
        // hotspot-bug steady state) — both shortcuts skip the full
        // file-table scan `plan` would do, which otherwise dominates
        // continuous-balancer campaigns.
        let misreport = self
            .bugs
            .any_active(|e| matches!(e, Effect::MisreportRebalance));
        let hot_filtered = self.bugs.any_active(|e| {
            matches!(
                e,
                Effect::SkipMigrationFromHot | Effect::HotspotPlacement { .. }
            )
        });
        // Partitioned nodes are unreachable for the balancer's move RPCs.
        let excluded = if self.faults.has_partitions() {
            self.faults.partitioned_nodes()
        } else {
            Vec::new()
        };
        let plan = if misreport {
            Vec::new()
        } else if hot_filtered {
            match Balancer::hottest_node(&self.cluster) {
                Some(hot) => {
                    let donors = self.balancer.donor_nodes(&self.cluster);
                    if !donors.is_empty() && donors.iter().all(|d| *d == hot) {
                        Vec::new()
                    } else {
                        let mut plan = self.balancer.plan_excluding(&self.cluster, &excluded);
                        plan.retain(|m| m.from_node != hot);
                        plan
                    }
                }
                None => self.balancer.plan_excluding(&self.cluster, &excluded),
            }
        } else {
            self.balancer.plan_excluding(&self.cluster, &excluded)
        };
        let planned = plan.len() as u64;
        self.balancer.start_round(plan);
        self.stats.rebalance_rounds += 1;
        let ev = SimEvent::RebalanceStart;
        self.feed_bugs(&ev);
        let vb = self.variance_bucket();
        self.touch_deep(mix(0x5247, planned.min(16)), vb);
    }

    // ------------------------------------------------------------------
    // Bug effects, events and variance
    // ------------------------------------------------------------------

    fn feed_bugs(&mut self, ev: &SimEvent) {
        let now = self.clock.now();
        let fired = self.bugs.observe(now, ev);
        for idx in fired {
            self.arm_effect(idx);
        }
    }

    /// Assigns a victim and applies instantaneous effects for a bug that
    /// just fired.
    fn arm_effect(&mut self, idx: usize) {
        let effect = self.bugs.bugs()[idx].spec.effect;
        match effect {
            Effect::HotspotPlacement { .. }
            | Effect::SkipMigrationFromHot
            | Effect::DeleteMigratedData { .. }
            | Effect::MisreportRebalance => {
                if let Some(hot) = Balancer::hottest_node(&self.cluster) {
                    self.bugs.set_victim(idx, hot);
                }
            }
            Effect::Inert => {}
            Effect::CpuSpin | Effect::NetFunnel => {
                let mgmt = self.cluster.online_mgmt();
                if let Some(v) = mgmt.first() {
                    self.bugs.set_victim(idx, *v);
                }
            }
            Effect::CrashNodes { count } => {
                // Crash the most loaded storage nodes; they stay down.
                let mut loads = self.cluster.node_storage();
                loads.sort_by_key(|(_, b)| std::cmp::Reverse(*b));
                let keep_alive = 1; // never crash the very last node
                for (node, _) in loads.into_iter().take(count as usize).take(
                    self.cluster
                        .online_storage()
                        .len()
                        .saturating_sub(keep_alive),
                ) {
                    self.cluster.set_offline(node);
                    self.crashed.push(node);
                    if self.bugs.bugs()[idx].victim.is_none() {
                        self.bugs.set_victim(idx, node);
                    }
                }
                self.balancer.abort();
            }
        }
    }

    fn apply_cpu_spin(&mut self) {
        let now = self.clock.now();
        let spins = self
            .bugs
            .active_effects()
            .filter(|(s, _)| matches!(s.effect, Effect::CpuSpin))
            .map(|(_, v)| v)
            .collect::<Vec<_>>();
        for victim in spins {
            let target = victim
                .filter(|v| self.cluster.mgmt.get(v).is_some_and(|m| m.online))
                .or_else(|| self.cluster.nth_online_mgmt(0));
            if let Some(v) = target {
                if let Some(load) = self.cluster.mgmt_load_mut(v) {
                    load.cpu.add(now, 6.0);
                }
            }
        }
    }

    fn sample_variance(&mut self) {
        let (storage, cpu, network) = self.compute_variance();
        self.last_variance = (storage, cpu, network);
        let ev = SimEvent::Variance {
            storage,
            cpu,
            network,
        };
        self.feed_bugs(&ev);
    }

    /// Computes the three imbalance ratios without feeding the bug engine
    /// (the per-op probe; also exposed to the scaling benchmark via
    /// [`DfsSim::variance_probe`]).
    ///
    /// The storage dimension is an O(1) read off the cluster's streaming
    /// utilization stats — maintained incrementally at every mutation site
    /// with the same eligibility filter (`StorageNode::util_q`) the old
    /// full walk applied. The CPU/network dimensions still walk the
    /// management fleet, which is bounded by `max_mgmt_nodes` (4–5) and
    /// therefore O(1) with respect to storage scale; their decaying-rate
    /// counters have no exact streaming form.
    fn compute_variance(&mut self) -> (f64, f64, f64) {
        let now = self.clock.now();
        let storage = self.cluster.util_stats().imbalance_ratio();
        let cpu = ClusterSnapshot::imbalance_ratio_iter(
            self.cluster
                .mgmt
                .values_mut()
                .filter(|m| m.online)
                .map(|m| m.load.cpu.value_at(now)),
        );
        let network = ClusterSnapshot::imbalance_ratio_iter(
            self.cluster
                .mgmt
                .values_mut()
                .filter(|m| m.online)
                .map(|m| {
                    m.load.rps.value_at(now)
                        + m.load.read_io.value_at(now)
                        + m.load.write_io.value_at(now)
                }),
        );
        (storage, cpu, network)
    }

    /// Samples the (storage, cpu, network) imbalance ratios right now,
    /// without advancing time or feeding triggers. This is the probe the
    /// scaling benchmark times to prove the per-op variance cost stays
    /// flat from 10 to 10k nodes.
    pub fn variance_probe(&mut self) -> (f64, f64, f64) {
        self.compute_variance()
    }

    fn variance_bucket(&self) -> u64 {
        let (s, _, _) = self.last_variance;
        (((s - 1.0) * 20.0).clamp(0.0, 9.0)) as u64
    }

    // ------------------------------------------------------------------
    // Coverage features
    // ------------------------------------------------------------------

    fn touch_op_coverage(&mut self, req: &DfsRequest, ok: bool) {
        let kind = request_kind_index(req);
        let size_bucket = size_bucket(req.payload());
        let depth = path_depth(request_path(req));
        // Base: per-operation handler with operand-shape sub-branches.
        let base_feat = mix(kind, mix(size_bucket, mix(depth, ok as u64)));
        self.coverage.touch(Region::Base, base_feat);
        // Pair and triple: execution-dependency branches.
        if let Some(prev) = self.prev_kind {
            self.coverage
                .touch(Region::Pair, mix(prev, mix(kind, 0x5041_4952)));
            if let Some(prev2) = self.prev2_kind {
                self.coverage
                    .touch(Region::Pair, mix(prev2, mix(prev, mix(kind, 0x5452_4950))));
            }
        }
        // State: op × load-state × balancer-phase branches.
        let (s, c, n) = self.last_variance;
        let sb = (((s - 1.0) * 20.0).clamp(0.0, 9.0)) as u64;
        let cb = (((c - 1.0) * 10.0).clamp(0.0, 4.0)) as u64;
        let nb = (((n - 1.0) * 10.0).clamp(0.0, 4.0)) as u64;
        let phase = matches!(self.balancer.status(), RebalanceStatus::Running) as u64;
        let state_feat = mix(kind, mix(sb, mix(cb, mix(nb, phase))));
        self.coverage.touch(Region::State, state_feat);
        self.prev2_kind = self.prev_kind;
        self.prev_kind = Some(kind);
    }

    fn touch_deep(&mut self, tag: u64, extra: u64) {
        let feat = mix(tag, extra);
        self.coverage.touch(Region::Deep, feat);
    }

    // ------------------------------------------------------------------
    // Monitoring and reset
    // ------------------------------------------------------------------

    /// Collects a cluster-wide load snapshot (the `LoadMonitor()` data).
    pub fn load_snapshot(&mut self) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::default();
        self.load_snapshot_into(&mut snap);
        snap
    }

    /// Allocation-free variant of [`DfsSim::load_snapshot`]: clears and
    /// refills `out`, reusing its sample buffer. The campaign loop calls
    /// this once per iteration with a long-lived snapshot.
    pub fn load_snapshot_into(&mut self, out: &mut ClusterSnapshot) {
        let now = self.clock.now();
        out.time = now;
        let nodes = &mut out.nodes;
        nodes.clear();
        for m in self.cluster.mgmt.values_mut() {
            // A partitioned node is unreachable for the monitor and drops
            // out of the report entirely (unlike a crash, which the
            // monitor still observes as a dead peer).
            if self.faults.is_partitioned(m.id) {
                continue;
            }
            nodes.push(NodeLoadSample {
                node: m.id,
                role: NodeRole::Management,
                online: m.online,
                cpu: m.load.cpu.value_at(now),
                rps: m.load.rps.value_at(now),
                read_io: m.load.read_io.value_at(now),
                write_io: m.load.write_io.value_at(now),
                storage: 0,
                capacity: 0,
                uptime_ms: now.saturating_since(m.joined),
            });
        }
        for s in self.cluster.storage.values_mut() {
            // A df-based monitor sees nothing on a node whose disks were
            // all detached; such nodes drop out of the report, as do
            // partitioned (unreachable) nodes.
            if s.volumes.is_empty() || self.faults.is_partitioned(s.id) {
                continue;
            }
            let storage = s.volumes.iter().map(|v| v.used).sum();
            let capacity = s.volumes.iter().map(|v| v.capacity).sum();
            nodes.push(NodeLoadSample {
                node: s.id,
                role: NodeRole::Storage,
                online: s.online,
                cpu: s.load.cpu.value_at(now),
                rps: 0.0,
                read_io: s.load.read_io.value_at(now),
                write_io: s.load.write_io.value_at(now),
                storage,
                capacity,
                uptime_ms: now.saturating_since(s.joined),
            });
        }
        nodes.sort_by_key(|n| n.node);
    }

    /// Resets the DFS to its initial state: fresh namespace and topology,
    /// re-armed bugs, cleared caches. Coverage and cumulative statistics
    /// survive (as they do across DFS restarts in the paper's campaigns),
    /// and the virtual clock keeps running.
    // detlint:allow(crash-decomposition): reset tears down the execution lineage wholesale; no machine observes intermediate state, so it is not a crash window
    pub fn reset(&mut self) {
        // A reset abandons the current execution lineage, so every fork
        // mark taken on it dies with it. (The pristine clone below also
        // overwrites the journals with empty, disabled ones.)
        self.snapshots.clear();
        self.ns.set_journaling(false);
        self.cluster.set_journaling(false);
        // Rebuilding the topology replays the deploy-time ingest
        // (thousands of `/sys` files); cloning the pristine snapshot
        // restores the identical state in one pass.
        match self.pristine.take() {
            Some(p) => {
                self.ns.clone_from(&p.0);
                self.cluster.clone_from(&p.1);
                self.pristine = Some(p);
            }
            None => {
                self.ns = Namespace::new();
                self.cluster = Cluster::new();
                self.build_topology();
            }
        }
        // The restored cluster's generation counter restarts at its initial
        // value, so the tag-based freshness check would wrongly accept
        // stale rings.
        self.placement_cache.invalidate();
        self.balancer = Balancer::new(self.cfg.balance_threshold);
        self.bugs.rearm();
        self.hash_cache.clear();
        self.crashed.clear();
        // Crash-point instrumentation is tester-side probe state, not DFS
        // state; a redeploy disarms it.
        self.crash = CrashRuntime::default();
        // Environment faults outlive a redeploy: the fault plan models the
        // hosting environment, not DFS process state. Fault-crashed hosts
        // stay down and forced-full disks stay full; slow-node, partition
        // and loss state lives in the injector and persists on its own.
        // Faults attached to nodes that only existed post-deploy are
        // re-targeted onto the restored pool (same machines, fresh ids).
        if self.faults.any() {
            let mgmt: Vec<NodeId> = self.cluster.mgmt.keys().copied().collect();
            let storage: Vec<NodeId> = self.cluster.storage.keys().copied().collect();
            self.faults.remap_nodes(&mgmt, &storage);
        }
        for id in self.faults.crashed().to_vec() {
            self.cluster.set_offline(id);
            self.crashed.push(id);
        }
        for id in self.faults.disk_full().to_vec() {
            self.cluster.set_volumes_full(id);
        }
        self.prev_kind = None;
        self.prev2_kind = None;
        self.rr_counter = 0;
        self.last_variance = (1.0, 1.0, 1.0);
        let now = self.clock.now();
        if let Some(t) = self.check_timer.as_mut() {
            t.reset(now);
        }
        self.migrate_timer.reset(now);
        self.stats.resets += 1;
        // Resetting costs real wall time on a cluster (container restarts);
        // charge one minute of virtual time.
        self.clock.advance(60_000);
    }

    /// Marks the current execution point so it can be returned to with
    /// [`DfsSim::restore`]. Returns an id that stays valid until the mark
    /// is restored past, [`DfsSim::release`]d, or the sim is reset.
    ///
    /// The first fork switches the namespace and cluster into journaling
    /// mode; from then on every mutation appends an undo record, which is
    /// what makes restores O(ops since the mark) instead of O(state).
    /// Marks form a stack along one lineage: restoring mark `a` kills
    /// every mark taken after `a`.
    pub fn fork(&mut self) -> u64 {
        if self.snapshots.is_empty() {
            self.ns.set_journaling(true);
            self.cluster.set_journaling(true);
        }
        let id = self.next_snapshot_id;
        self.next_snapshot_id += 1;
        self.snapshots.push(SimSnapshot {
            id,
            clock: self.clock.clone(),
            ns: self.ns.checkpoint(),
            cluster: self.cluster.checkpoint(),
            balancer: self.balancer.clone(),
            bugs: self.bugs.checkpoint(),
            faults: self.faults.clone(),
            hash_cache: self.hash_cache.clone(),
            crashed: self.crashed.clone(),
            stats: self.stats,
            last_variance: self.last_variance,
            prev_kind: self.prev_kind,
            prev2_kind: self.prev2_kind,
            rr_counter: self.rr_counter,
            check_timer: self.check_timer.clone(),
            migrate_timer: self.migrate_timer.clone(),
            crash: self.crash.clone(),
        });
        id
    }

    /// Rewinds the simulator to a mark taken by [`DfsSim::fork`]. Returns
    /// `false` (leaving the sim untouched) if the mark no longer exists —
    /// restored past, released, or invalidated by a reset.
    ///
    /// Everything flows backwards: the namespace and file-map journals are
    /// unwound to the mark, the small cloned state (clock, balancer, bug
    /// runtimes, fault state, timers) is copied back, and placement rings
    /// built for generations newer than the mark are dropped — a divergent
    /// suffix re-uses those generation numbers for different topologies,
    /// so only strictly-older entries are provably shared lineage.
    /// Coverage intentionally survives: it is monotone over deterministic
    /// replay, so the combined fork/restore walk observes exactly the
    /// branch set a straight-line run of the same cases would.
    pub fn restore(&mut self, id: u64) -> bool {
        let Some(pos) = self.snapshots.iter().position(|s| s.id == id) else {
            return false;
        };
        // Marks deeper than the restored one point past the journal
        // rewind target; they are unreachable now.
        self.snapshots.truncate(pos + 1);
        let snap = &self.snapshots[pos];
        self.ns.revert_to(&snap.ns);
        self.cluster.restore_to(&snap.cluster);
        self.clock = snap.clock.clone();
        self.balancer.clone_from(&snap.balancer);
        self.bugs.restore(&snap.bugs);
        self.faults.clone_from(&snap.faults);
        self.hash_cache.clone_from(&snap.hash_cache);
        self.crashed.clone_from(&snap.crashed);
        self.stats = snap.stats;
        self.last_variance = snap.last_variance;
        self.prev_kind = snap.prev_kind;
        self.prev2_kind = snap.prev2_kind;
        self.rr_counter = snap.rr_counter;
        self.check_timer.clone_from(&snap.check_timer);
        self.migrate_timer.clone_from(&snap.migrate_timer);
        self.crash.clone_from(&snap.crash);
        self.placement_cache
            .invalidate_if_newer_than(snap.cluster.generation());
        // Guard the undo log: a restore must land on exactly the state the
        // incremental counters claim, re-deriving the accounting from first
        // principles (file table, volume ownership, load-counter sanity)
        // and aborting on drift rather than letting a corrupted baseline
        // silently skew every forked campaign that follows. Debug builds
        // always run it; release builds opt in through
        // [`DfsSim::set_runtime_audit`] (the crash explorer does).
        if self.runtime_audit {
            if let Err(e) = self.audit_state() {
                panic!("state audit failed after restore({id}): {e}");
            }
        }
        true
    }

    /// First-principles consistency audit of the simulator state.
    ///
    /// Delegates the storage accounting to [`Cluster::audit`] (per-volume
    /// byte totals recomputed from the file table) and additionally checks
    /// the CPU/network side: every decaying load counter must hold a
    /// finite, non-negative value whose last-update stamp does not lie in
    /// the simulated future. The rate counters are event-sourced and lazily
    /// decayed, so there is no independent ledger to resum them from — but
    /// a journal-rewind bug shows up here as a stale `last` stamp ahead of
    /// the restored clock or as a NaN/negative accumulator.
    ///
    /// Debug builds invoke this automatically after every snapshot restore;
    /// it is also available to tests and tooling in any build.
    pub fn audit_state(&self) -> Result<(), String> {
        self.cluster.audit()?;
        let now = self.clock.now();
        fn check_rates(
            node: NodeId,
            load: &crate::metrics::NodeLoadAccount,
            now: SimTime,
        ) -> Result<(), String> {
            for (name, rate) in [
                ("cpu", &load.cpu),
                ("rps", &load.rps),
                ("read_io", &load.read_io),
                ("write_io", &load.write_io),
            ] {
                let v = rate.peek_raw();
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("node {node:?}: {name} counter is {v}"));
                }
                if rate.last_update() > now {
                    return Err(format!(
                        "node {node:?}: {name} counter last updated at {:?}, \
                         after the current instant {now:?}",
                        rate.last_update()
                    ));
                }
            }
            Ok(())
        }
        for (id, n) in &self.cluster.storage {
            check_rates(*id, &n.load, now)?;
        }
        for (id, n) in &self.cluster.mgmt {
            check_rates(*id, &n.load, now)?;
        }
        Ok(())
    }

    /// Drops a fork mark without restoring it. Releasing the last live
    /// mark turns journaling back off, so a sim that stops forking stops
    /// paying for undo records.
    pub fn release(&mut self, id: u64) {
        self.snapshots.retain(|s| s.id != id);
        if self.snapshots.is_empty() {
            self.ns.set_journaling(false);
            self.cluster.set_journaling(false);
        }
    }

    /// Number of live fork marks (diagnostics / tests).
    pub fn fork_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Marks the current state as the reusable *base* for cross-campaign
    /// simulator reuse: [`DfsSim::restore_to_base`] later rewinds to
    /// exactly this point, no matter what ran in between — including
    /// resets, which kill every ordinary fork mark.
    ///
    /// Must be called while the simulator is at a freshly deployed (or
    /// freshly reset) state with no fault plan installed and no live fork
    /// marks: the base restore re-establishes the namespace and cluster
    /// from the pristine deploy snapshot, so marking a dirtied state would
    /// record a clock/coverage point that no longer matches it.
    ///
    /// This is the entry point behind the grid executor's per-worker
    /// simulator pool: deploy once per (worker, flavor), restore to base
    /// between campaign cells instead of rebuilding the topology.
    pub fn mark_base(&mut self) {
        debug_assert!(
            self.snapshots.is_empty(),
            "mark_base on a sim with live fork marks"
        );
        debug_assert!(!self.faults.any(), "mark_base with a fault plan installed");
        self.base = Some(Box::new(BaseMark {
            clock: self.clock.clone(),
            coverage: self.coverage.clone(),
            stats: self.stats,
            check_timer: self.check_timer.clone(),
            migrate_timer: self.migrate_timer.clone(),
        }));
    }

    /// Whether [`DfsSim::mark_base`] has been called.
    pub fn has_base(&self) -> bool {
        self.base.is_some()
    }

    /// Rewinds the simulator to the state captured by
    /// [`DfsSim::mark_base`], byte-for-byte equivalent to a fresh deploy:
    /// pristine namespace/cluster, rearmed bugs, empty fault plan, base
    /// clock, base coverage and base statistics. Every live fork mark
    /// dies (the restored lineage is a new one). Returns `false` (leaving
    /// the sim untouched) if no base was ever marked.
    ///
    /// Unlike [`DfsSim::reset`] — which models an operator redeploying a
    /// live cluster (faults persist, the clock keeps running, coverage
    /// accumulates) — this models *reusing the process for an unrelated
    /// campaign*, so everything observable rewinds.
    pub fn restore_to_base(&mut self) -> bool {
        let Some(base) = self.base.take() else {
            return false;
        };
        self.snapshots.clear();
        self.ns.set_journaling(false);
        self.cluster.set_journaling(false);
        match self.pristine.take() {
            Some(p) => {
                self.ns.clone_from(&p.0);
                self.cluster.clone_from(&p.1);
                self.pristine = Some(p);
            }
            None => {
                self.ns = Namespace::new();
                self.cluster = Cluster::new();
                self.build_topology();
            }
        }
        self.placement_cache.invalidate();
        self.balancer = Balancer::new(self.cfg.balance_threshold);
        self.bugs.rearm();
        self.hash_cache.clear();
        self.crashed.clear();
        self.faults = FaultInjector::default();
        self.prev_kind = None;
        self.prev2_kind = None;
        self.rr_counter = 0;
        self.last_variance = (1.0, 1.0, 1.0);
        self.clock = base.clock.clone();
        self.coverage.clone_from(&base.coverage);
        self.stats = base.stats;
        self.check_timer.clone_from(&base.check_timer);
        self.migrate_timer.clone_from(&base.migrate_timer);
        self.base = Some(base);
        self.crash = CrashRuntime::default();
        // Same guard as a fork restore: the base must land on exactly the
        // state the incremental counters claim.
        if self.runtime_audit {
            if let Err(e) = self.audit_state() {
                panic!("state audit failed after restore_to_base: {e}");
            }
        }
        true
    }

    /// The bug set this simulator was built with.
    pub fn bug_set(&self) -> &BugSet {
        &self.bug_set
    }
}

/// Bytes surviving a lossy migration: `bytes * (100 - pct) / 100`,
/// widened to `u128` because the straight `u64` product overflows for
/// fragments larger than `u64::MAX / 100`.
fn lossy_kept(bytes: Bytes, loss_pct: u8) -> Bytes {
    let keep = 100 - loss_pct.min(100) as u128;
    (bytes as u128 * keep / 100) as Bytes
}

/// The primary path operand of a request ("" when not applicable).
fn request_path(req: &DfsRequest) -> &str {
    match req {
        DfsRequest::Create { path, .. }
        | DfsRequest::Delete { path }
        | DfsRequest::Append { path, .. }
        | DfsRequest::Overwrite { path, .. }
        | DfsRequest::Open { path }
        | DfsRequest::TruncateOverwrite { path, .. }
        | DfsRequest::Mkdir { path }
        | DfsRequest::Rmdir { path } => path,
        DfsRequest::Rename { from, .. } => from,
        _ => "",
    }
}

/// Stable index over the 17 concrete operators of the paper's grammar.
fn request_kind_index(req: &DfsRequest) -> u64 {
    match req {
        DfsRequest::Create { .. } => 0,
        DfsRequest::Delete { .. } => 1,
        DfsRequest::Append { .. } => 2,
        DfsRequest::Overwrite { .. } => 3,
        DfsRequest::Open { .. } => 4,
        DfsRequest::TruncateOverwrite { .. } => 5,
        DfsRequest::Mkdir { .. } => 6,
        DfsRequest::Rmdir { .. } => 7,
        DfsRequest::Rename { .. } => 8,
        DfsRequest::AddMgmtNode => 9,
        DfsRequest::RemoveMgmtNode { .. } => 10,
        DfsRequest::AddStorageNode { .. } => 11,
        DfsRequest::RemoveStorageNode { .. } => 12,
        DfsRequest::AddVolume { .. } => 13,
        DfsRequest::RemoveVolume { .. } => 14,
        DfsRequest::ExpandVolume { .. } => 15,
        DfsRequest::ReduceVolume { .. } => 16,
    }
}

fn size_bucket(bytes: Bytes) -> u64 {
    if bytes == 0 {
        return 0;
    }
    let mib = (bytes / MIB).max(1);
    (64 - (mib.leading_zeros() as u64)).min(10)
}

fn path_depth(path: &str) -> u64 {
    path.split('/').filter(|c| !c.is_empty()).count().min(4) as u64
}
#[cfg(test)]
mod tests {
    use super::*;

    /// A simulator without pre-loaded base data, so byte-level assertions
    /// are exact.
    fn sim(flavor: Flavor) -> DfsSim {
        let mut cfg = flavor.config();
        cfg.base_fill = 0.0;
        DfsSim::with_config(cfg, BugSet::None)
    }

    #[test]
    fn default_build_preloads_base_data() {
        let mut s = DfsSim::new(Flavor::Hdfs, BugSet::None);
        let used = s.cluster.total_used() as f64;
        let cap = s.cluster.total_capacity() as f64;
        let fill = used / cap;
        assert!(
            (0.25..0.45).contains(&fill),
            "expected ~35% fill, got {fill:.2}"
        );
        // Base data is spread evenly enough to start balanced.
        let ratio = s.load_snapshot().storage_imbalance();
        assert!(
            ratio < 1.15,
            "preload should be near-balanced, ratio {ratio:.3}"
        );
        // Preload leaves no runtime load and no coverage.
        assert_eq!(s.coverage_count(), 0);
        assert_eq!(s.stats().ops, 0);
    }

    #[test]
    fn preload_survives_reset() {
        let mut s = DfsSim::new(Flavor::GlusterFs, BugSet::None);
        let used = s.cluster.total_used();
        s.execute(&DfsRequest::Create {
            path: "/x".into(),
            size: MIB,
        })
        .unwrap();
        s.reset();
        assert_eq!(s.cluster.total_used(), used, "reset must restore base data");
    }

    #[test]
    fn create_places_replicas() {
        let mut s = sim(Flavor::Hdfs);
        s.execute(&DfsRequest::Create {
            path: "/a".into(),
            size: 10 * MIB,
        })
        .unwrap();
        let meta: Vec<_> = s.cluster.files().values().collect();
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0].replicas.len(), 3, "HDFS uses 3 replicas");
        assert_eq!(s.cluster.total_used(), 30 * MIB);
    }

    #[test]
    fn delete_frees_data() {
        let mut s = sim(Flavor::GlusterFs);
        s.execute(&DfsRequest::Create {
            path: "/a".into(),
            size: 8 * MIB,
        })
        .unwrap();
        assert!(s.cluster.total_used() > 0);
        s.execute(&DfsRequest::Delete { path: "/a".into() })
            .unwrap();
        assert_eq!(s.cluster.total_used(), 0);
        assert_eq!(s.namespace().file_count(), 0);
    }

    #[test]
    fn append_grows_replicas() {
        let mut s = sim(Flavor::LeoFs);
        s.execute(&DfsRequest::Create {
            path: "/a".into(),
            size: 4 * MIB,
        })
        .unwrap();
        let before = s.cluster.total_used();
        s.execute(&DfsRequest::Append {
            path: "/a".into(),
            delta: 4 * MIB,
        })
        .unwrap();
        assert_eq!(s.cluster.total_used(), before * 2);
    }

    #[test]
    fn failed_request_is_counted_but_harmless() {
        let mut s = sim(Flavor::Hdfs);
        let err = s.execute(&DfsRequest::Delete {
            path: "/missing".into(),
        });
        assert!(err.is_err());
        assert_eq!(s.stats().failed_ops, 1);
        assert_eq!(s.stats().ops, 1);
    }

    #[test]
    fn clock_advances_with_requests() {
        let mut s = sim(Flavor::Hdfs);
        let t0 = s.now();
        s.execute(&DfsRequest::Mkdir { path: "/d".into() }).unwrap();
        assert!(s.now() > t0);
    }

    #[test]
    fn add_storage_node_changes_topology() {
        let mut s = sim(Flavor::CephFs);
        let n_before = s.cluster.online_storage().len();
        let out = s
            .execute(&DfsRequest::AddStorageNode {
                volumes: 2,
                capacity: MIB * 512,
            })
            .unwrap();
        assert!(out.new_node.is_some());
        assert_eq!(out.new_volumes.len(), 2);
        assert_eq!(s.cluster.online_storage().len(), n_before + 1);
    }

    #[test]
    fn remove_storage_node_replaces_data() {
        let mut s = sim(Flavor::CephFs);
        for i in 0..20 {
            s.execute(&DfsRequest::Create {
                path: format!("/f{i}"),
                size: 4 * MIB,
            })
            .unwrap();
        }
        let used_before = s.cluster.total_used();
        let victim = s.cluster.online_storage()[0];
        s.execute(&DfsRequest::RemoveStorageNode { node: victim })
            .unwrap();
        // All data should be re-placed (ample free space), nothing lost.
        assert_eq!(s.cluster.total_used(), used_before);
        assert_eq!(s.bytes_lost(), 0);
    }

    #[test]
    fn imbalanced_cluster_self_rebalances_continuous() {
        // CephFS balances continuously: forcing all early data onto a
        // subset by filling then expanding should be corrected over time.
        let mut s = sim(Flavor::CephFs);
        for i in 0..40 {
            s.execute(&DfsRequest::Create {
                path: format!("/f{i}"),
                size: 16 * MIB,
            })
            .unwrap();
        }
        // Add an empty node: now it is far below mean.
        s.execute(&DfsRequest::AddStorageNode {
            volumes: 2,
            capacity: 4 << 30,
        })
        .unwrap();
        // Let the balancer work.
        for _ in 0..200 {
            s.tick(2_000);
        }
        let snap = s.load_snapshot();
        let ratio = snap.storage_imbalance();
        assert!(
            ratio < 1.25,
            "continuous balancer should restore balance, ratio = {ratio:.3}"
        );
        assert!(s.stats().migrations > 0);
    }

    #[test]
    fn explicit_rebalance_api_works() {
        let mut s = sim(Flavor::GlusterFs);
        for i in 0..30 {
            s.execute(&DfsRequest::Create {
                path: format!("/f{i}"),
                size: 16 * MIB,
            })
            .unwrap();
        }
        s.execute(&DfsRequest::AddStorageNode {
            volumes: 2,
            capacity: 4 << 30,
        })
        .unwrap();
        s.rebalance();
        let mut guard = 0;
        while s.rebalance_status() == RebalanceStatus::Running && guard < 10_000 {
            s.tick(1_000);
            guard += 1;
        }
        assert_eq!(s.rebalance_status(), RebalanceStatus::Done);
    }

    #[test]
    fn coverage_grows_with_activity() {
        let mut s = sim(Flavor::Hdfs);
        assert_eq!(s.coverage_count(), 0);
        s.execute(&DfsRequest::Create {
            path: "/a".into(),
            size: MIB,
        })
        .unwrap();
        let c1 = s.coverage_count();
        assert!(c1 > 0);
        s.execute(&DfsRequest::Open { path: "/a".into() }).unwrap();
        assert!(s.coverage_count() > c1);
    }

    #[test]
    fn coverage_survives_reset() {
        let mut s = sim(Flavor::Hdfs);
        s.execute(&DfsRequest::Create {
            path: "/a".into(),
            size: MIB,
        })
        .unwrap();
        let c = s.coverage_count();
        s.reset();
        assert_eq!(s.coverage_count(), c);
        assert_eq!(s.namespace().file_count(), 0);
        assert_eq!(s.stats().resets, 1);
    }

    #[test]
    fn reset_restores_topology() {
        let mut s = sim(Flavor::LeoFs);
        s.execute(&DfsRequest::AddStorageNode {
            volumes: 1,
            capacity: MIB,
        })
        .unwrap();
        let grown = s.cluster.online_storage().len();
        s.reset();
        assert_eq!(
            s.cluster.online_storage().len(),
            grown - 1,
            "reset must restore the initial topology"
        );
    }

    #[test]
    fn snapshot_has_all_nodes() {
        let mut s = sim(Flavor::Hdfs);
        let snap = s.load_snapshot();
        assert_eq!(snap.nodes.len(), 10);
        let mgmt = snap
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Management)
            .count();
        assert_eq!(mgmt, 2);
    }

    #[test]
    fn gluster_rename_creates_linkfile_when_hash_moves() {
        let mut s = sim(Flavor::GlusterFs);
        // Create many files; at least one rename should relocate the hash.
        let mut saw_linkfile = false;
        for i in 0..30 {
            let p = format!("/f{i}");
            s.execute(&DfsRequest::Create {
                path: p.clone(),
                size: MIB,
            })
            .unwrap();
            s.execute(&DfsRequest::Rename {
                from: p,
                to: format!("/renamed{i}"),
            })
            .unwrap();
        }
        for meta in s.cluster.files().values() {
            if meta.linkfile_at.is_some() {
                saw_linkfile = true;
            }
        }
        assert!(
            saw_linkfile,
            "renames should produce at least one DHT linkfile"
        );
    }

    #[test]
    fn routing_spreads_requests_across_mgmt_nodes() {
        let mut s = sim(Flavor::Hdfs); // round robin
        for i in 0..40 {
            s.execute(&DfsRequest::Create {
                path: format!("/f{i}"),
                size: MIB,
            })
            .unwrap();
        }
        let snap = s.load_snapshot();
        let rps: Vec<f64> = snap
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Management)
            .map(|n| n.rps)
            .collect();
        assert!(
            rps.iter().all(|&r| r > 0.0),
            "all mgmt nodes should receive requests: {rps:?}"
        );
    }

    #[test]
    fn out_of_space_create_fails_cleanly() {
        let mut cfg = Flavor::Hdfs.config();
        cfg.volume_capacity = 8 * MIB;
        let mut s = DfsSim::with_config(cfg, BugSet::None);
        let big = DfsRequest::Create {
            path: "/big".into(),
            size: 64 * MIB,
        };
        assert!(s.execute(&big).is_err());
        assert_eq!(s.namespace().file_count(), 0);
        assert_eq!(s.cluster.total_used(), 0);
    }

    fn fault_at(at_ms: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent { at_ms, kind }
    }

    use crate::faults::FaultEvent;

    #[test]
    fn lossy_kept_survives_huge_fragments() {
        // Regression: the old `bytes * (100 - pct) / 100` overflowed u64
        // for any fragment above u64::MAX / 100.
        let boundary = u64::MAX / 100 + 1;
        assert_eq!(lossy_kept(boundary, 0), boundary);
        assert_eq!(lossy_kept(u64::MAX, 0), u64::MAX);
        assert_eq!(lossy_kept(u64::MAX, 100), 0);
        assert_eq!(
            lossy_kept(u64::MAX, 30),
            (u64::MAX as u128 * 70 / 100) as u64
        );
        assert_eq!(lossy_kept(200, 25), 150);
    }

    #[test]
    fn crash_fault_fires_on_schedule_and_persists_across_reset() {
        let mut s = sim(Flavor::Hdfs);
        s.set_fault_plan(FaultPlan::new(vec![fault_at(
            120_000,
            FaultKind::CrashStorage { index: 2 },
        )]));
        let before = s.cluster().online_storage().len();
        s.tick(60_000);
        assert_eq!(s.cluster().online_storage().len(), before, "not due yet");
        s.tick(120_000);
        assert_eq!(s.cluster().online_storage().len(), before - 1);
        assert_eq!(s.crashed_nodes().len(), 1);
        // A redeploy does not fix crashed hardware.
        s.reset();
        assert_eq!(s.cluster().online_storage().len(), before - 1);
        assert_eq!(s.crashed_nodes().len(), 1);
    }

    #[test]
    fn restart_fault_brings_crashed_node_back() {
        let mut s = sim(Flavor::Hdfs);
        s.set_fault_plan(FaultPlan::new(vec![
            fault_at(60_000, FaultKind::CrashStorage { index: 0 }),
            fault_at(120_000, FaultKind::RestartStorage { index: 0 }),
        ]));
        let before = s.cluster().online_storage().len();
        s.tick(70_000);
        assert_eq!(s.cluster().online_storage().len(), before - 1);
        s.tick(60_000);
        assert_eq!(s.cluster().online_storage().len(), before);
        assert!(s.crashed_nodes().is_empty());
        s.reset();
        assert_eq!(
            s.cluster().online_storage().len(),
            before,
            "a restarted node must not be re-crashed on reset"
        );
    }

    #[test]
    fn slow_mgmt_fault_multiplies_latency_and_cpu() {
        let mut s = sim(Flavor::Hdfs); // round robin over 2 mgmt nodes
        s.set_fault_plan(FaultPlan::new(vec![fault_at(
            0,
            FaultKind::SlowMgmt {
                index: 0,
                factor: 6,
            },
        )]));
        s.tick(1_000);
        s.execute(&DfsRequest::Create {
            path: "/a".into(),
            size: 0,
        })
        .unwrap();
        let mut latencies: Vec<u64> = (0..2)
            .map(|_| {
                s.execute(&DfsRequest::Open { path: "/a".into() })
                    .unwrap()
                    .latency_ms
            })
            .collect();
        latencies.sort_unstable();
        assert_eq!(
            latencies,
            vec![300, 1_800],
            "alternate requests hit the 6x-slow gateway"
        );
        let snap = s.load_snapshot();
        let cpu: Vec<f64> = snap
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Management)
            .map(|n| n.cpu)
            .collect();
        let max = cpu.iter().cloned().fold(f64::MIN, f64::max);
        let min = cpu.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > min * 2.5,
            "slow node must burn visibly more CPU: {cpu:?}"
        );
    }

    #[test]
    fn lossy_migration_fault_sheds_bytes() {
        let mut s = sim(Flavor::CephFs);
        s.set_fault_plan(FaultPlan::new(vec![fault_at(
            0,
            FaultKind::LossyMigration { pct: 40 },
        )]));
        for i in 0..40 {
            s.execute(&DfsRequest::Create {
                path: format!("/f{i}"),
                size: 16 * MIB,
            })
            .unwrap();
        }
        s.execute(&DfsRequest::AddStorageNode {
            volumes: 2,
            capacity: 4 << 30,
        })
        .unwrap();
        for _ in 0..200 {
            s.tick(2_000);
        }
        assert!(s.stats().migrations > 0);
        assert!(
            s.bytes_lost() > 0,
            "lossy migrations must lose bytes once the balancer moves data"
        );
    }

    #[test]
    fn disk_full_fault_collapses_free_space() {
        let mut s = DfsSim::new(Flavor::Hdfs, BugSet::None); // preloaded
        s.set_fault_plan(FaultPlan::new(vec![fault_at(
            0,
            FaultKind::DiskFull { index: 0 },
        )]));
        let victim = s.cluster().online_storage()[0];
        s.tick(1_000);
        let free: Bytes = s.cluster().storage[&victim]
            .volumes
            .iter()
            .map(|v| v.free())
            .sum();
        assert_eq!(free, 0, "every volume on the victim must report full");
        // The forced-full disk persists across a redeploy.
        s.reset();
        let free: Bytes = s.cluster().storage[&victim]
            .volumes
            .iter()
            .map(|v| v.free())
            .sum();
        assert_eq!(free, 0);
    }

    #[test]
    fn partitioned_mgmt_node_takes_no_traffic_and_leaves_report() {
        let mut s = sim(Flavor::Hdfs);
        s.set_fault_plan(FaultPlan::new(vec![
            fault_at(1_000, FaultKind::PartitionMgmt { index: 0 }),
            fault_at(600_000, FaultKind::Heal),
        ]));
        s.tick(2_000);
        let snap = s.load_snapshot();
        let mgmt = snap
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Management)
            .count();
        assert_eq!(mgmt, 1, "the partitioned gateway drops out of the report");
        // The cluster still serves requests through the surviving gateway.
        s.execute(&DfsRequest::Mkdir { path: "/d".into() }).unwrap();
        s.tick(700_000);
        let snap = s.load_snapshot();
        let mgmt = snap
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Management)
            .count();
        assert_eq!(mgmt, 2, "healing restores the partitioned gateway");
    }

    #[test]
    fn all_mgmt_partitioned_means_cluster_down() {
        let mut s = sim(Flavor::Hdfs);
        s.set_fault_plan(FaultPlan::new(vec![
            fault_at(1_000, FaultKind::PartitionMgmt { index: 0 }),
            fault_at(1_000, FaultKind::PartitionMgmt { index: 0 }),
        ]));
        s.tick(2_000);
        let err = s.execute(&DfsRequest::Open { path: "/x".into() });
        assert!(matches!(err, Err(SimError::ClusterDown)));
    }

    #[test]
    fn slow_storage_fault_stalls_migrations_without_dropping_them() {
        let mut s = sim(Flavor::GlusterFs);
        for i in 0..30 {
            s.execute(&DfsRequest::Create {
                path: format!("/f{i}"),
                size: 16 * MIB,
            })
            .unwrap();
        }
        s.execute(&DfsRequest::AddStorageNode {
            volumes: 2,
            capacity: 4 << 30,
        })
        .unwrap();
        // Every storage node is slow: all moves stall but still complete.
        let plan: Vec<FaultEvent> = (0..s.cluster().online_storage().len() as u32)
            .map(|i| {
                fault_at(
                    0,
                    FaultKind::SlowStorage {
                        index: i,
                        factor: 4,
                    },
                )
            })
            .collect();
        s.set_fault_plan(FaultPlan::new(plan));
        s.rebalance();
        let mut guard = 0;
        while s.rebalance_status() == RebalanceStatus::Running && guard < 10_000 {
            s.tick(1_000);
            guard += 1;
        }
        assert_eq!(s.rebalance_status(), RebalanceStatus::Done);
        assert!(s.stats().migrations > 0);
    }

    /// A broad fingerprint of observable simulator state; two sims with
    /// equal fingerprints are indistinguishable to the fuzzing harness.
    fn fingerprint(s: &DfsSim) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            s.now(),
            s.namespace().files(),
            s.cluster().mgmt,
            s.cluster().storage,
            s.cluster().files(),
            s.crashed_nodes(),
            s.stats(),
        )
    }

    /// A workload mixing data ops, topology churn, a rebalance and clock
    /// ticks — the full surface the journal has to cover.
    fn churn(s: &mut DfsSim, tag: u32) {
        for i in 0..8 {
            let _ = s.execute(&DfsRequest::Create {
                path: format!("/c{tag}_{i}"),
                size: (4 + i) * MIB,
            });
        }
        let _ = s.execute(&DfsRequest::AddStorageNode {
            volumes: 2,
            capacity: 2 << 30,
        });
        let _ = s.execute(&DfsRequest::Rename {
            from: format!("/c{tag}_0"),
            to: format!("/r{tag}"),
        });
        let _ = s.execute(&DfsRequest::Delete {
            path: format!("/c{tag}_1"),
        });
        s.rebalance();
        let mut guard = 0;
        while s.rebalance_status() == RebalanceStatus::Running && guard < 5_000 {
            s.tick(1_000);
            guard += 1;
        }
    }

    #[test]
    fn fork_restore_roundtrip_under_faults() {
        let mut s = DfsSim::new(Flavor::GlusterFs, BugSet::None);
        s.set_fault_plan(FaultPlan::new(vec![
            fault_at(2_000, FaultKind::CrashStorage { index: 1 }),
            fault_at(
                4_000,
                FaultKind::SlowStorage {
                    index: 0,
                    factor: 3,
                },
            ),
        ]));
        churn(&mut s, 0);
        let before = fingerprint(&s);
        let mark = s.fork();
        churn(&mut s, 1);
        assert_ne!(fingerprint(&s), before, "churn must change state");
        assert!(s.restore(mark));
        assert_eq!(fingerprint(&s), before, "restore must rewind exactly");
        // The mark survives its own restore and can be rewound to again.
        churn(&mut s, 2);
        assert!(s.restore(mark));
        assert_eq!(fingerprint(&s), before);
    }

    /// Restoring and replaying the same suffix reproduces the state a
    /// straight-line run reaches, including with placement caching on —
    /// the generation-tag invalidation must drop rings built by the
    /// abandoned branch.
    #[test]
    fn forked_suffix_replay_is_bit_identical() {
        let straight = {
            let mut s = DfsSim::new(Flavor::CephFs, BugSet::New);
            churn(&mut s, 0);
            churn(&mut s, 2);
            (fingerprint(&s), s.coverage_count())
        };
        let mut s = DfsSim::new(Flavor::CephFs, BugSet::New);
        churn(&mut s, 0);
        let mark = s.fork();
        churn(&mut s, 1); // abandoned branch (different topology/rings)
        assert!(s.restore(mark));
        churn(&mut s, 2);
        assert_eq!(fingerprint(&s), straight.0);
        // Coverage is monotone: the abandoned branch may only have added
        // branches on top of the straight-line set.
        assert!(s.coverage_count() >= straight.1);
    }

    #[test]
    fn restore_kills_deeper_marks_and_release_stops_journaling() {
        let mut s = sim(Flavor::Hdfs);
        let a = s.fork();
        let _ = s.execute(&DfsRequest::Create {
            path: "/x".into(),
            size: MIB,
        });
        let b = s.fork();
        assert_eq!(s.fork_count(), 2);
        assert!(s.restore(a));
        assert!(!s.restore(b), "restore(a) must invalidate deeper mark b");
        assert_eq!(s.fork_count(), 1);
        s.release(a);
        assert_eq!(s.fork_count(), 0);
        assert!(!s.restore(a), "released marks are gone");
    }

    #[test]
    fn reset_discards_fork_marks() {
        let mut s = DfsSim::new(Flavor::LeoFs, BugSet::None);
        let mark = s.fork();
        let _ = s.execute(&DfsRequest::Create {
            path: "/x".into(),
            size: MIB,
        });
        s.reset();
        assert!(!s.restore(mark), "reset abandons the forked lineage");
        assert_eq!(s.fork_count(), 0);
    }

    #[test]
    fn state_audit_stays_clean_under_fork_restore_churn() {
        // Every restore below also runs the audit implicitly (debug
        // builds); the explicit calls document the contract and keep the
        // test meaningful under --release.
        let mut s = DfsSim::new(Flavor::GlusterFs, BugSet::All);
        for i in 0..20 {
            let _ = s.execute(&DfsRequest::Create {
                path: format!("/seed{i}"),
                size: (1 + i as u64 % 7) * MIB,
            });
        }
        s.audit_state().expect("pre-fork state must audit clean");
        let mark = s.fork();
        for i in 0..30 {
            let _ = s.execute(&DfsRequest::Create {
                path: format!("/fork{i}"),
                size: (1 + i as u64 % 5) * MIB,
            });
            if i % 3 == 0 {
                let _ = s.execute(&DfsRequest::Delete {
                    path: format!("/seed{}", i % 20),
                });
            }
        }
        assert!(s.restore(mark));
        s.audit_state().expect("restored state must audit clean");
        for i in 0..10 {
            let _ = s.execute(&DfsRequest::Overwrite {
                path: format!("/seed{i}"),
                size: 2 * MIB,
            });
        }
        assert!(s.restore(mark));
        s.audit_state()
            .expect("second restore of the same mark must audit clean");
    }

    #[test]
    fn restore_to_base_without_mark_is_a_noop() {
        let mut s = sim(Flavor::Hdfs);
        let before = fingerprint(&s);
        assert!(!s.has_base());
        assert!(!s.restore_to_base());
        assert_eq!(fingerprint(&s), before);
    }

    #[test]
    fn restore_to_base_matches_a_fresh_deploy() {
        // A reused sim, rewound to base, must be indistinguishable from a
        // brand-new one running the same workload — including coverage,
        // stats, and the clock, none of which fork marks capture.
        let mut reused = DfsSim::new(Flavor::GlusterFs, BugSet::All);
        reused.mark_base();
        churn(&mut reused, 0);
        assert!(reused.coverage_count() > 0, "churn must produce coverage");
        assert!(reused.restore_to_base());

        let mut fresh = DfsSim::new(Flavor::GlusterFs, BugSet::All);
        assert_eq!(fingerprint(&reused), fingerprint(&fresh));
        assert_eq!(reused.coverage_count(), fresh.coverage_count());

        churn(&mut reused, 1);
        churn(&mut fresh, 1);
        assert_eq!(
            fingerprint(&reused),
            fingerprint(&fresh),
            "replay after base restore must be bit-identical to fresh"
        );
        assert_eq!(reused.coverage_count(), fresh.coverage_count());
    }

    #[test]
    fn restore_to_base_survives_reset_and_kills_fork_marks() {
        let mut s = DfsSim::new(Flavor::Hdfs, BugSet::None);
        s.mark_base();
        let base = fingerprint(&s);
        churn(&mut s, 0);
        let mark = s.fork();
        churn(&mut s, 1);
        s.reset(); // kills `mark`, keeps the base
        assert!(!s.restore(mark));
        churn(&mut s, 2);
        assert!(s.restore_to_base(), "base must outlive resets");
        assert_eq!(fingerprint(&s), base);
        assert_eq!(s.fork_count(), 0);
        assert!(s.has_base(), "base stays marked for the next cell");
        // And again: the base is reusable indefinitely.
        churn(&mut s, 3);
        assert!(s.restore_to_base());
        assert_eq!(fingerprint(&s), base);
    }

    #[test]
    fn restore_to_base_clears_the_fault_plan() {
        let mut s = DfsSim::new(Flavor::CephFs, BugSet::None);
        s.mark_base();
        s.set_fault_plan(FaultPlan::new(vec![fault_at(
            1_000,
            FaultKind::CrashStorage { index: 0 },
        )]));
        churn(&mut s, 0);
        assert!(s.restore_to_base());
        assert!(
            !s.fault_injector().any(),
            "base restore must drop the per-cell fault plan"
        );
        assert!(s.crashed_nodes().is_empty());
    }

    // ------------------------------------------------------------------
    // Crash-point exploration
    // ------------------------------------------------------------------

    /// A Gluster sim with enough queued imbalance that a rebalance window
    /// executes a healthy number of migrations to crash inside.
    fn crashable_sim() -> DfsSim {
        let mut s = sim(Flavor::GlusterFs);
        for i in 0..30 {
            s.execute(&DfsRequest::Create {
                path: format!("/f{i}"),
                size: 16 * MIB,
            })
            .unwrap();
        }
        s.execute(&DfsRequest::AddStorageNode {
            volumes: 2,
            capacity: 4 << 30,
        })
        .unwrap();
        s
    }

    /// Starts a rebalance and drives a fixed window of fixed-size ticks —
    /// identical driving on every run, so crash-point indices line up
    /// between an enumeration pass and a crash-at pass. Stops early once
    /// an armed crash fires.
    fn drive_window(s: &mut DfsSim, ticks: u32) {
        s.rebalance();
        for _ in 0..ticks {
            if s.crashed_in_flight().is_some() {
                return;
            }
            s.tick(1_500);
        }
    }

    /// Enumerates the window, re-runs it with a crash armed at the first
    /// point whose label starts with `step`, recovers, and returns the
    /// oracle verdict.
    fn crash_at_first(step: &str) -> Result<(), CrashViolation> {
        let mut s = crashable_sim();
        let mark = s.fork();
        s.arm_crash_enumeration();
        drive_window(&mut s, 60);
        let labels = s.disarm_crash();
        let k = labels
            .iter()
            .position(|l| l.starts_with(step))
            .unwrap_or_else(|| panic!("no '{step}' point in {labels:?}"));
        assert!(s.restore(mark));
        s.arm_crash_at(k as u64);
        drive_window(&mut s, 60);
        let inf = s.recover_crashed_machine().expect("armed crash must fire");
        assert!(
            inf.label().starts_with(step),
            "point {k} replayed as '{}', expected a '{step}' step",
            inf.label()
        );
        s.check_crash_invariants()
    }

    #[test]
    fn armed_enumeration_is_behaviour_transparent() {
        // The micro-step path composed with no crash must be
        // byte-identical to the atomic fast path.
        let mut plain = crashable_sim();
        let mut armed = crashable_sim();
        armed.arm_crash_enumeration();
        drive_window(&mut plain, 60);
        drive_window(&mut armed, 60);
        let labels = armed.disarm_crash();
        assert!(!labels.is_empty(), "the window must pass crash points");
        assert_eq!(fingerprint(&plain), fingerprint(&armed));
        assert_eq!(plain.coverage_count(), armed.coverage_count());
        // All five micro-step shapes appear in a real window.
        for step in ["plan", "copy", "commit-swap", "commit-account", "cleanup"] {
            assert!(
                labels.iter().any(|l| l.starts_with(step)),
                "no '{step}' point in {labels:?}"
            );
        }
    }

    #[test]
    fn crash_mid_copy_leaves_an_orphan_replica() {
        let v = crash_at_first("copy").unwrap_err();
        assert_eq!(v.class, CrashClass::OrphanReplica, "got: {v}");
    }

    #[test]
    fn crash_between_commit_and_account_double_counts_blocks() {
        let v = crash_at_first("commit-swap").unwrap_err();
        assert_eq!(v.class, CrashClass::DoubleCountedBlocks, "got: {v}");
    }

    #[test]
    fn plan_and_cleanup_crashes_recover_clean() {
        for step in ["plan", "cleanup"] {
            let verdict = crash_at_first(step);
            assert!(
                verdict.is_ok(),
                "'{step}' crash must recover clean: {verdict:?}"
            );
        }
    }

    #[test]
    fn crash_after_commit_account_loses_a_linkfile_in_the_window() {
        // The lost-linkfile class only manifests on moves whose post-move
        // layout requires a different linkfile than the pre-move one, so
        // scan every commit-account point in the window — exactly what
        // the bounded explorer does.
        let mut s = crashable_sim();
        let mark = s.fork();
        s.arm_crash_enumeration();
        drive_window(&mut s, 60);
        let labels = s.disarm_crash();
        assert!(s.restore(mark));
        let mut found = false;
        for (k, label) in labels.iter().enumerate() {
            if !label.starts_with("commit-account") {
                continue;
            }
            s.arm_crash_at(k as u64);
            drive_window(&mut s, 60);
            s.recover_crashed_machine().expect("armed crash must fire");
            match s.check_crash_invariants() {
                Err(v) if v.class == CrashClass::LostLinkfile => found = true,
                Err(v) => panic!("unexpected violation at point {k}: {v}"),
                Ok(()) => {}
            }
            assert!(s.restore(mark));
            if found {
                break;
            }
        }
        assert!(
            found,
            "some commit-account crash in the window must lose a linkfile"
        );
    }

    // ------------------------------------------------------------------
    // Release-mode oracle (the audit must not depend on debug_assertions;
    // scripts/ci.sh re-runs these tests under `cargo test --release`)
    // ------------------------------------------------------------------

    #[test]
    fn release_oracle_catches_counter_drift() {
        let mut s = sim(Flavor::Hdfs);
        s.execute(&DfsRequest::Create {
            path: "/a".into(),
            size: 8 * MIB,
        })
        .unwrap();
        s.audit_state().expect("fresh state audits clean");
        // Bypass the journaling accessors — the corruption a buggy
        // recovery would leave behind.
        let node = s.cluster.online_storage()[0];
        // detlint:allow(journal-coverage): deliberate counter corruption to exercise the release-mode auditor
        s.cluster.storage.get_mut(&node).unwrap().volumes[0].used += 1;
        let err = s.audit_state().unwrap_err();
        assert!(err.contains("file table"), "unexpected message: {err}");
    }

    #[test]
    fn release_oracle_catches_ownership_divergence() {
        let mut s = sim(Flavor::CephFs);
        s.execute(&DfsRequest::Create {
            path: "/a".into(),
            size: 8 * MIB,
        })
        .unwrap();
        let vid = s.cluster.volume_owner.keys().next().unwrap();
        // detlint:allow(journal-coverage): deliberate ownership corruption to exercise the release-mode auditor
        s.cluster.volume_owner.remove(&vid);
        assert!(s.audit_state().is_err());
    }

    #[test]
    fn batch_matches_serial_data_path_state() {
        // The amortized batch path must leave the storage state — file
        // table, fill levels, streaming tracker, virtual clock, op stats —
        // exactly where serial execution leaves it: mutation stays per-op
        // and the clock advances once by the summed cost.
        let reqs: Vec<DfsRequest> = (0..40)
            .map(|i| DfsRequest::Create {
                path: format!("/f{i}"),
                size: (1 + i % 7) * MIB,
            })
            .chain((0..10).map(|i| DfsRequest::Delete {
                path: format!("/f{}", i * 3),
            }))
            .chain((0..10).map(|i| DfsRequest::Open {
                path: format!("/f{}", 1 + i * 2),
            }))
            .collect();
        for flavor in Flavor::all() {
            // Suppress balancer activation: a continuous balancer may start
            // a round *between* ops serially but only at the batch edge
            // when amortized — a documented semantic of the batch API, not
            // what this test isolates (the per-op mutation path).
            let mk = || {
                let mut cfg = flavor.config();
                cfg.base_fill = 0.0;
                cfg.balance_threshold = 1e9;
                DfsSim::with_config(cfg, BugSet::None)
            };
            let mut serial = mk();
            let mut batched = mk();
            let serial_res: Vec<_> = reqs.iter().map(|r| serial.execute(r)).collect();
            let mut batched_res = Vec::new();
            batched.execute_batch(&reqs, &mut batched_res);
            assert_eq!(serial_res.len(), batched_res.len());
            for (a, b) in serial_res.iter().zip(batched_res.iter()) {
                assert_eq!(a.is_ok(), b.is_ok(), "{flavor}");
            }
            assert_eq!(serial.cluster.total_used(), batched.cluster.total_used());
            assert_eq!(serial.cluster.files().len(), batched.cluster.files().len());
            assert_eq!(
                serial.cluster.util_stats(),
                batched.cluster.util_stats(),
                "{flavor} tracker diverged"
            );
            assert_eq!(serial.now(), batched.now(), "{flavor} clock diverged");
            assert_eq!(serial.stats().ops, batched.stats().ops);
            assert_eq!(serial.stats().failed_ops, batched.stats().failed_ops);
            batched.audit_state().expect("batched state audits clean");
        }
    }

    #[test]
    fn batch_falls_back_to_serial_when_not_quiescent() {
        // Membership requests need their own epilogue (balancer recovery,
        // fault bookkeeping), so a batch containing one must behave exactly
        // like serial execution — including the per-op clock advance.
        let reqs = vec![
            DfsRequest::Create {
                path: "/a".into(),
                size: 4 * MIB,
            },
            DfsRequest::AddStorageNode {
                volumes: 1,
                capacity: 1024 * MIB,
            },
            DfsRequest::Create {
                path: "/b".into(),
                size: 4 * MIB,
            },
        ];
        let mut serial = sim(Flavor::GlusterFs);
        let mut batched = sim(Flavor::GlusterFs);
        assert!(!batched.batch_fast_path(&reqs));
        for r in &reqs {
            let _ = serial.execute(r);
        }
        let mut out = Vec::new();
        batched.execute_batch(&reqs, &mut out);
        assert_eq!(out.len(), reqs.len());
        assert_eq!(serial.now(), batched.now());
        assert_eq!(serial.cluster.total_used(), batched.cluster.total_used());
        assert_eq!(serial.cluster.storage.len(), batched.cluster.storage.len());
        // A sim with armed bug specs is never quiescent.
        let armed = DfsSim::new(Flavor::Hdfs, BugSet::New);
        let data_only = [DfsRequest::Open { path: "/x".into() }];
        assert!(!armed.batch_fast_path(&data_only));
    }

    #[test]
    fn runtime_audit_flag_defaults_by_profile_and_toggles() {
        let mut s = sim(Flavor::Hdfs);
        assert_eq!(
            s.runtime_audit_enabled(),
            cfg!(debug_assertions),
            "debug builds audit by default; release builds opt in"
        );
        s.set_runtime_audit(true);
        s.execute(&DfsRequest::Create {
            path: "/a".into(),
            size: MIB,
        })
        .unwrap();
        // With the audit forced on, a fork/restore cycle passes it in any
        // build profile.
        let mark = s.fork();
        s.tick(1_000);
        assert!(s.restore(mark));
        s.set_runtime_audit(false);
        assert!(!s.runtime_audit_enabled());
    }
}
