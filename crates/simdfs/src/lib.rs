//! # simdfs — a deterministic distributed-file-system cluster simulator
//!
//! This crate is the substrate of the Themis (EuroSys'25) reproduction. The
//! paper tests four real distributed file systems (HDFS, CephFS, GlusterFS,
//! LeoFS) on a 10-node cluster; this crate provides behaviourally faithful,
//! fully deterministic simulations of those systems:
//!
//! - a tree-structured **namespace** with files, directories and DHT
//!   linkfiles ([`namespace`]);
//! - **management and storage nodes** with volumes and live load accounting
//!   ([`node`], [`cluster`], [`metrics`]);
//! - four **placement policies** — DHT hash ring, consistent hashing with
//!   vnodes, CRUSH/straw2, free-space weighting ([`placement`]);
//! - a **storage balancer** pipeline (collector → calculator → planner →
//!   executor) with flavor-specific activation styles ([`balancer`],
//!   [`flavor`]);
//! - a **bug engine** carrying the paper's 10 new and 53 historical
//!   imbalance failures as trigger/effect state machines ([`bugs`]);
//! - a behavioural **coverage model** standing in for gcov/JaCoCo
//!   ([`coverage`]);
//! - virtual **time** ([`clock`], [`types::SimTime`]) making 24-hour
//!   campaigns run in seconds, bit-reproducibly.
//!
//! The entry point is [`sim::DfsSim`]:
//!
//! ```
//! use simdfs::{BugSet, DfsRequest, DfsSim, Flavor};
//!
//! let mut dfs = DfsSim::new(Flavor::GlusterFs, BugSet::New);
//! dfs.execute(&DfsRequest::Create { path: "/data".into(), size: 4 << 20 }).unwrap();
//! let snapshot = dfs.load_snapshot();
//! assert!(snapshot.storage_imbalance() >= 1.0);
//! ```

pub mod arena;
pub mod balancer;
pub mod bugs;
pub mod clock;
pub mod cluster;
pub mod coverage;
pub mod crash;
pub mod error;
pub mod faults;
pub mod flavor;
pub mod hashing;
pub mod loadstats;
pub mod meanfield;
pub mod metrics;
pub mod namespace;
pub mod node;
pub mod placement;
pub mod request;
pub mod sim;
pub mod types;

pub use arena::{NodeArena, NodeHot, VolumeDirectory};
pub use balancer::{Balancer, MigrationMove, RebalanceStatus};
pub use bugs::{BugEngine, BugSpec, Effect, FailureKind, Gate, Metric, SimEvent, Trigger};
pub use cluster::Cluster;
pub use coverage::{CoverageModel, CoverageUniverse, Region};
pub use crash::{CrashClass, CrashViolation, InFlightMove, MigrationStepKind};
pub use error::{SimError, SimResult};
pub use faults::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use flavor::{BalancerStyle, Flavor, FlavorConfig, PlacementKind, RoutingKind};
pub use loadstats::UtilTracker;
pub use meanfield::MeanFieldModel;
pub use metrics::{ClusterSnapshot, NodeLoadSample};
pub use namespace::Namespace;
pub use request::{DfsRequest, OpClass, ReqOutcome};
pub use sim::{BugSet, DfsSim, SimStats};
pub use types::{Bytes, FileId, NodeId, NodeRole, SimTime, VolumeId, GIB, MIB};
