//! Streaming load-variance accumulators.
//!
//! The load variance model samples the storage-utilization imbalance ratio
//! after every executed operation. Recomputing it from live node state is
//! O(nodes) per op — fine for the paper's 10-node clusters, a blocker for
//! 10k-node campaigns. [`UtilTracker`] maintains the same statistic
//! incrementally: every cluster mutation that can change a node's
//! utilization (or its eligibility) reports the node's new quantized
//! utilization, and the imbalance ratio, mean and variance become O(1)
//! reads (O(log n) per update).
//!
//! ## Exactness contract
//!
//! All state is integer: utilizations are quantized to `used·2³²/capacity`
//! (a 32-bit fixed-point fraction), the sums are `u128`, and min/max come
//! from an ordered multiset of quantized values. Integer accumulation is
//! order-independent and loss-free, so the tracker is *exactly* equal to a
//! fresh recomputation from the node tables after any mutation sequence —
//! including snapshot-fork restores, where the tracker is cloned and
//! restored wholesale. `Cluster::audit` recomputes it from scratch and
//! fails on any drift.
//!
//! Quantization granularity is `capacity·2⁻³²` (about 12 bytes on a 48 GiB
//! node), so the ratio differs from the exact `f64` ratio by at most ~1e-9
//! relative at MiB file scales.

use crate::types::{Bytes, NodeId};
use std::collections::BTreeMap;

/// Fixed-point scale: utilizations are fractions with 32 fractional bits.
const Q_SCALE_BITS: u32 = 32;

/// Quantizes a node utilization `used/capacity` to 32-bit fixed point.
///
/// `used ≤ capacity` (a cluster invariant enforced by every byte mutation)
/// keeps the result in `0..=2³²`. A zero-capacity node — reachable after a
/// disk-full fault shrinks volumes or a resize detaches the last bytes —
/// has no meaningful utilization fraction; it reports as saturated full
/// (`2³²`) so imbalance detection treats it as the worst case instead of
/// dividing by zero (debug) or wrapping to garbage (release).
pub fn quantize(used: Bytes, capacity: Bytes) -> u64 {
    if capacity == 0 {
        return 1u64 << Q_SCALE_BITS;
    }
    ((used as u128 * (1u128 << Q_SCALE_BITS)) / capacity as u128) as u64
}

/// Sentinel marking an untracked arena slot. Valid quantized values are
/// at most `2³²` (saturated full), so `u64::MAX` is unreachable.
const NO_ENTRY: u64 = u64::MAX;

/// Streaming accumulator over per-node quantized utilizations.
///
/// Tracks Σx, Σx², count, and the exact min/max via an ordered multiset.
/// One entry per *eligible* node; the owner decides eligibility (for the
/// storage dimension: online, has volumes, positive capacity) and calls
/// [`UtilTracker::update`] with `None` to remove a node that became
/// ineligible.
///
/// Entries live in a dense arena indexed by the raw node id (see
/// `crate::arena`): updates are one array write plus the multiset
/// adjustment, and the per-node column is contiguous — at 100k nodes the
/// former `BTreeMap<NodeId, u64>` paid a pointer-chasing descent per
/// maintenance call on every store/free/migrate.
#[derive(Debug, Clone, Default)]
pub struct UtilTracker {
    /// Quantized utilization per node id slot; [`NO_ENTRY`] = untracked.
    entries: Vec<u64>,
    /// Number of tracked (eligible) nodes.
    live: usize,
    /// Multiset of the tracked values, for exact min/max under removal.
    dist: BTreeMap<u64, u32>,
    /// Σ quantized utilization. 100k nodes × 2³² < 2⁵⁰ — far inside u128.
    sum: u128,
    /// Σ (quantized utilization)². 100k × 2⁶⁴ < 2⁸¹ — far inside u128.
    sum_sq: u128,
}

/// Trackers compare by *content*: two trackers are equal when they track
/// the same nodes at the same values, regardless of how many trailing
/// sentinel slots each arena happens to carry (a fresh recomputation may
/// have a shorter entries vector than a tracker that once saw higher ids).
impl PartialEq for UtilTracker {
    fn eq(&self, other: &Self) -> bool {
        if self.live != other.live
            || self.sum != other.sum
            || self.sum_sq != other.sum_sq
            || self.dist != other.dist
        {
            return false;
        }
        let n = self.entries.len().max(other.entries.len());
        (0..n).all(|i| {
            self.entries.get(i).copied().unwrap_or(NO_ENTRY)
                == other.entries.get(i).copied().unwrap_or(NO_ENTRY)
        })
    }
}

impl Eq for UtilTracker {}

impl UtilTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets, replaces, or removes (`q = None`) a node's quantized
    /// utilization. One arena write plus an O(log distinct-values)
    /// multiset adjustment.
    pub fn update(&mut self, node: NodeId, q: Option<u64>) {
        let idx = node.0 as usize;
        if idx >= self.entries.len() {
            if q.is_none() {
                return; // removing a node that was never tracked
            }
            self.entries.resize(idx + 1, NO_ENTRY);
        }
        debug_assert!(q != Some(NO_ENTRY), "utilization collides with sentinel");
        let old = std::mem::replace(&mut self.entries[idx], q.unwrap_or(NO_ENTRY));
        if old != NO_ENTRY {
            self.live -= 1;
            self.sum -= old as u128;
            self.sum_sq -= (old as u128) * (old as u128);
            match self.dist.get_mut(&old) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    self.dist.remove(&old);
                }
            }
        }
        if let Some(v) = q {
            self.live += 1;
            self.sum += v as u128;
            self.sum_sq += (v as u128) * (v as u128);
            *self.dist.entry(v).or_insert(0) += 1;
        }
    }

    /// Number of eligible nodes.
    pub fn count(&self) -> usize {
        self.live
    }

    /// Smallest tracked quantized utilization, if any node is tracked.
    pub fn min_q(&self) -> Option<u64> {
        self.dist.keys().next().copied()
    }

    /// Largest tracked quantized utilization, if any node is tracked.
    pub fn max_q(&self) -> Option<u64> {
        self.dist.keys().next_back().copied()
    }

    /// Σ of quantized utilizations.
    pub fn sum_q(&self) -> u128 {
        self.sum
    }

    /// Σ of squared quantized utilizations.
    pub fn sum_sq_q(&self) -> u128 {
        self.sum_sq
    }

    /// Mean utilization as a fraction in `[0, 1]`.
    pub fn mean(&self) -> f64 {
        if self.live == 0 {
            return 0.0;
        }
        (self.sum as f64 / self.live as f64) / (1u64 << Q_SCALE_BITS) as f64
    }

    /// Population variance of the utilization fractions.
    pub fn variance(&self) -> f64 {
        let n = self.live;
        if n < 2 {
            return 0.0;
        }
        // E[x²] − E[x]² over the quantized values, then rescale. Both terms
        // are single divisions of exact integer sums — no float reduction.
        let n = n as f64;
        let scale = (1u64 << Q_SCALE_BITS) as f64;
        let mean = self.sum as f64 / n;
        let var_q = self.sum_sq as f64 / n - mean * mean;
        (var_q / (scale * scale)).max(0.0)
    }

    /// The imbalance ratio `max/mean` over tracked utilizations, matching
    /// [`ClusterSnapshot::imbalance_ratio_iter`]'s conventions: `1.0` for
    /// fewer than two nodes or an (effectively) zero mean.
    ///
    /// [`ClusterSnapshot::imbalance_ratio_iter`]: crate::metrics::ClusterSnapshot
    pub fn imbalance_ratio(&self) -> f64 {
        let n = self.live;
        if n < 2 || self.sum == 0 {
            return 1.0;
        }
        let max = self.max_q().unwrap_or(0);
        // max/mean = max·n/Σ — one float division over exact integers.
        (max as f64 * n as f64) / self.sum as f64
    }

    /// O(1) equivalent of the balancer's activation predicate
    /// `max > mean·(1 + threshold)`: false with fewer than two nodes or an
    /// all-zero load.
    pub fn is_imbalanced(&self, threshold: f64) -> bool {
        let n = self.live;
        if n < 2 || self.sum == 0 {
            return false;
        }
        let max = self.max_q().unwrap_or(0);
        max as f64 * n as f64 > (1.0 + threshold) * self.sum as f64
    }

    /// The tracked quantized utilization for `node`, if eligible.
    pub fn get(&self, node: NodeId) -> Option<u64> {
        self.entries
            .get(node.0 as usize)
            .copied()
            .filter(|&q| q != NO_ENTRY)
    }
}

/// From-scratch `f64` mean and population variance over utilization
/// fractions — the reference arm of the tracker's differential tests.
/// The tracker's integer accumulators must agree with this to float
/// precision after arbitrarily long churn sequences.
pub fn float_mean_variance(utils: impl Iterator<Item = f64>) -> (f64, f64) {
    let vals: Vec<f64> = utils.collect();
    if vals.is_empty() {
        return (0.0, 0.0);
    }
    let n = vals.len() as f64;
    // This is the float recompute the exact integer tracker is checked
    // against; it never feeds simulation state.
    // detlint:allow(float-accum): differential-test reference arm
    let mean = vals.iter().sum::<f64>() / n;
    // detlint:allow(float-accum): same reference arm as above.
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, if vals.len() < 2 { 0.0 } else { var })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(vals: &[(u32, u64)]) -> UtilTracker {
        let mut t = UtilTracker::new();
        for &(id, q) in vals {
            t.update(NodeId(id), Some(q));
        }
        t
    }

    #[test]
    fn quantize_is_monotone_and_bounded() {
        assert_eq!(quantize(0, 100), 0);
        assert_eq!(quantize(100, 100), 1 << 32);
        assert_eq!(quantize(50, 100), 1 << 31);
        let a = quantize(1 << 30, 48 << 30);
        let b = quantize(2 << 30, 48 << 30);
        assert!(a < b);
    }

    #[test]
    fn quantize_zero_capacity_saturates_full() {
        // A node whose volumes shrank to zero capacity must read as
        // saturated full, not divide by zero (debug) or wrap (release).
        assert_eq!(quantize(0, 0), 1 << 32);
        assert_eq!(quantize(12345, 0), 1 << 32);
        assert_eq!(quantize(0, 0), quantize(100, 100));
    }

    #[test]
    fn empty_and_singleton_are_balanced() {
        let mut t = UtilTracker::new();
        assert_eq!(t.imbalance_ratio(), 1.0);
        assert!(!t.is_imbalanced(0.1));
        t.update(NodeId(1), Some(1 << 31));
        assert_eq!(t.count(), 1);
        assert_eq!(t.imbalance_ratio(), 1.0);
        assert!(!t.is_imbalanced(0.1));
    }

    #[test]
    fn ratio_matches_direct_computation() {
        let t = tracker(&[(1, 100), (2, 200), (3, 300)]);
        // max/mean = 300/200 = 1.5
        assert!((t.imbalance_ratio() - 1.5).abs() < 1e-12);
        assert!(t.is_imbalanced(0.4));
        assert!(!t.is_imbalanced(0.6));
    }

    #[test]
    fn zero_sum_is_balanced() {
        let t = tracker(&[(1, 0), (2, 0), (3, 0)]);
        assert_eq!(t.imbalance_ratio(), 1.0);
        assert!(!t.is_imbalanced(0.0));
    }

    #[test]
    fn update_and_remove_keep_sums_and_extremes_exact() {
        let mut t = tracker(&[(1, 10), (2, 20), (3, 20), (4, 40)]);
        assert_eq!(t.min_q(), Some(10));
        assert_eq!(t.max_q(), Some(40));
        assert_eq!(t.sum_q(), 90);
        assert_eq!(t.sum_sq_q(), 100 + 400 + 400 + 1600);

        // Replace the max; extremes move.
        t.update(NodeId(4), Some(5));
        assert_eq!(t.min_q(), Some(5));
        assert_eq!(t.max_q(), Some(20));
        assert_eq!(t.sum_q(), 55);

        // Remove one of the duplicated values; the other remains.
        t.update(NodeId(2), None);
        assert_eq!(t.max_q(), Some(20));
        assert_eq!(t.count(), 3);
        assert_eq!(t.sum_q(), 35);

        // Remove everything; back to pristine.
        t.update(NodeId(1), None);
        t.update(NodeId(3), None);
        t.update(NodeId(4), None);
        assert_eq!(t, UtilTracker::new());
    }

    #[test]
    fn equality_ignores_trailing_sentinel_slots() {
        // A tracker that once saw a high node id keeps the (empty) slots;
        // a fresh recomputation does not. They must still compare equal.
        let mut a = tracker(&[(1, 7), (500, 9)]);
        a.update(NodeId(500), None);
        let b = tracker(&[(1, 7)]);
        assert_eq!(a, b);
        assert_eq!(b, a);
        let c = tracker(&[(2, 7)]);
        assert_ne!(b, c, "same value on a different node is not equal");
    }

    #[test]
    fn float_reference_matches_tracker_statistics() {
        let t = tracker(&[(0, 0), (1, 1 << 32), (2, 1 << 31)]);
        let (mean, var) = float_mean_variance([0.0, 1.0, 0.5].into_iter());
        assert!((t.mean() - mean).abs() < 1e-9);
        assert!((t.variance() - var).abs() < 1e-9);
        assert_eq!(float_mean_variance(std::iter::empty()), (0.0, 0.0));
    }

    #[test]
    fn removing_untracked_node_is_a_no_op() {
        let mut t = tracker(&[(1, 7)]);
        t.update(NodeId(99), None);
        assert_eq!(t.count(), 1);
        assert_eq!(t.sum_q(), 7);
    }

    #[test]
    fn tracker_equals_recomputation_after_random_walk() {
        // Deterministic pseudo-random mutation walk; compare against a
        // from-scratch rebuild after every step.
        let mut t = UtilTracker::new();
        let mut shadow: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = NodeId((x >> 33) as u32 % 16);
            let action = (x >> 13) % 3;
            match action {
                0 => {
                    let q = x % (1u64 << 32);
                    t.update(id, Some(q));
                    shadow.insert(id, q);
                }
                _ => {
                    t.update(id, None);
                    shadow.remove(&id);
                }
            }
            let mut fresh = UtilTracker::new();
            for (&id, &q) in &shadow {
                fresh.update(id, Some(q));
            }
            assert_eq!(t, fresh);
        }
    }

    #[test]
    fn variance_matches_two_point_distribution() {
        // Two nodes at 0 and full: mean 1/2, variance 1/4.
        let t = tracker(&[(1, 0), (2, 1 << 32)]);
        assert!((t.mean() - 0.5).abs() < 1e-12);
        assert!((t.variance() - 0.25).abs() < 1e-12);
    }
}
