//! Error types returned by the simulated DFS.
//!
//! These model the error surface a real DFS client/admin CLI would report
//! back to Themis: requests can fail because a path does not exist, a node
//! is unknown, the cluster is out of space, and so on. The fuzzer treats
//! failed operations as ordinary outcomes (the paper's operand repair keeps
//! them rare but they are legal executions).

use crate::types::{NodeId, VolumeId};

/// Error returned by a simulated DFS request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The referenced path does not exist in the namespace.
    NoSuchPath(String),
    /// The path exists but has the wrong kind (e.g. `rmdir` on a file).
    NotADirectory(String),
    /// The path exists but is a directory where a file was expected.
    IsADirectory(String),
    /// Attempt to create something that already exists.
    AlreadyExists(String),
    /// A directory could not be removed because it is not empty.
    DirectoryNotEmpty(String),
    /// The referenced node is not part of the cluster (or already removed).
    NoSuchNode(NodeId),
    /// The referenced volume is not part of the cluster.
    NoSuchVolume(VolumeId),
    /// The cluster has no online storage volume able to accept the data.
    OutOfSpace { requested: u64, free: u64 },
    /// The operation would remove the last management or storage node.
    LastNode(NodeId),
    /// The target node is offline and cannot serve the request.
    NodeOffline(NodeId),
    /// A volume reduction would drop below the data currently stored on it.
    VolumeBusy {
        volume: VolumeId,
        used: u64,
        requested_capacity: u64,
    },
    /// The testbed has no hardware left for another node or volume (the
    /// paper's environment is a fixed pool of 10 containers).
    ResourceLimit(String),
    /// The cluster has crashed (a crash-type imbalance failure fired) and
    /// refuses all further requests until reset.
    ClusterDown,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoSuchPath(p) => write!(f, "no such path: {p}"),
            SimError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            SimError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            SimError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            SimError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            SimError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            SimError::NoSuchVolume(v) => write!(f, "no such volume: {v}"),
            SimError::OutOfSpace { requested, free } => {
                write!(f, "out of space: requested {requested} B, free {free} B")
            }
            SimError::LastNode(n) => {
                write!(f, "cannot remove {n}: it is the last node of its role")
            }
            SimError::NodeOffline(n) => write!(f, "node offline: {n}"),
            SimError::VolumeBusy {
                volume,
                used,
                requested_capacity,
            } => write!(
                f,
                "volume {volume} holds {used} B, cannot shrink to {requested_capacity} B"
            ),
            SimError::ResourceLimit(what) => write!(f, "no resources left for {what}"),
            SimError::ClusterDown => write!(f, "cluster is down"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let errs: Vec<SimError> = vec![
            SimError::NoSuchPath("/a".into()),
            SimError::NotADirectory("/a".into()),
            SimError::IsADirectory("/a".into()),
            SimError::AlreadyExists("/a".into()),
            SimError::DirectoryNotEmpty("/a".into()),
            SimError::NoSuchNode(NodeId(1)),
            SimError::NoSuchVolume(VolumeId(2)),
            SimError::OutOfSpace {
                requested: 10,
                free: 5,
            },
            SimError::LastNode(NodeId(0)),
            SimError::NodeOffline(NodeId(3)),
            SimError::VolumeBusy {
                volume: VolumeId(1),
                used: 9,
                requested_capacity: 4,
            },
            SimError::ResourceLimit("node".into()),
            SimError::ClusterDown,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
