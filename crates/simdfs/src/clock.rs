//! Virtual clock driving the discrete-event simulation.

use crate::types::SimTime;

/// A monotonically advancing virtual clock.
///
/// All time in the simulator is virtual: request costs, balancer periods and
/// campaign budgets are expressed against this clock, which makes the
/// paper's 24-hour campaigns reproducible in seconds of real time and fully
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `ms` milliseconds and returns the new instant.
    pub fn advance(&mut self, ms: u64) -> SimTime {
        self.now = self.now.advanced(ms);
        self.now
    }

    /// Resets the clock to time zero.
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
    }
}

/// A repeating timer used for periodic balancer activations.
///
/// `PeriodicTimer` fires every `period_ms` of virtual time; `due` reports
/// how many whole periods elapsed since the last call, so a large clock jump
/// (e.g. a single expensive operation) still accounts for every missed
/// activation.
#[derive(Debug, Clone)]
pub struct PeriodicTimer {
    period_ms: u64,
    last_fire: SimTime,
}

impl PeriodicTimer {
    /// Creates a timer with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period_ms` is zero.
    pub fn new(period_ms: u64) -> Self {
        assert!(period_ms > 0, "timer period must be positive");
        PeriodicTimer {
            period_ms,
            last_fire: SimTime::ZERO,
        }
    }

    /// Returns the number of periods that elapsed since the last call and
    /// advances the internal fire marker accordingly.
    pub fn due(&mut self, now: SimTime) -> u64 {
        let elapsed = now.saturating_since(self.last_fire);
        let fires = elapsed / self.period_ms;
        if fires > 0 {
            self.last_fire = self.last_fire.advanced(fires * self.period_ms);
        }
        fires
    }

    /// Resets the timer so the next period starts at `now`.
    pub fn reset(&mut self, now: SimTime) {
        self.last_fire = now;
    }

    /// The configured period in milliseconds.
    pub fn period_ms(&self) -> u64 {
        self.period_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(100);
        c.advance(50);
        assert_eq!(c.now().as_millis(), 150);
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn timer_fires_once_per_period() {
        let mut t = PeriodicTimer::new(1_000);
        assert_eq!(t.due(SimTime(999)), 0);
        assert_eq!(t.due(SimTime(1_000)), 1);
        assert_eq!(t.due(SimTime(1_500)), 0);
        assert_eq!(t.due(SimTime(2_000)), 1);
    }

    #[test]
    fn timer_accounts_for_skipped_periods() {
        let mut t = PeriodicTimer::new(100);
        assert_eq!(t.due(SimTime(1_050)), 10);
        // Residual 50 ms still pending toward the next fire.
        assert_eq!(t.due(SimTime(1_100)), 1);
    }

    #[test]
    fn timer_reset_rebases_period() {
        let mut t = PeriodicTimer::new(100);
        t.reset(SimTime(250));
        assert_eq!(t.due(SimTime(300)), 0);
        assert_eq!(t.due(SimTime(350)), 1);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = PeriodicTimer::new(0);
    }
}
