//! # adaptors — Interaction Adaptors for the Themis reproduction
//!
//! The paper's third component (Figure 10): the only DFS-specific part of
//! Themis. This crate implements the [`themis::DfsAdaptor`] trait for the
//! four simulated flavors of [`simdfs`], including the flavor-specific
//! command translation a real deployment would execute ([`commands`]).
//!
//! Adapting Themis to a new DFS means implementing two interfaces —
//! `operation.send()` and `LoadMonitor()` — which in this crate correspond
//! to the adaptor's `send` and `load_report` methods. The
//! `custom_adaptor` example in the workspace root shows a from-scratch
//! implementation for a toy target.

pub mod commands;
pub mod sim_adaptor;

pub use commands::{render_command, render_monitor_command};
pub use sim_adaptor::{SimAdaptor, SimHandle};
