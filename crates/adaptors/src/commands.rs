//! Flavor-specific command translation.
//!
//! The paper's Interaction Adaptor converts Themis operations into target
//! commands (e.g. `remove_volume gluster1` becomes `gluster volume
//! remove-brick Themis-Test gluster1:brick1 start`). The simulator accepts
//! structured requests directly, but the translation layer is kept — it
//! documents exactly what a real deployment would execute, and the adaptor
//! records the rendered command log for reproduction.

use simdfs::Flavor;
use themis::spec::{Operand, Operation, Operator};

/// Renders the CLI command a real deployment would run for `op`.
///
/// File operations go through the FUSE mount (the paper notes they need no
/// per-target adaptation), so they render as plain shell file commands on
/// the mount point; node and volume operations render as the target's
/// administration CLI.
pub fn render_command(flavor: Flavor, op: &Operation) -> String {
    let mnt = "/mnt/themis-test";
    let opd = |i: usize| -> String { op.opds.get(i).map(|o| o.to_string()).unwrap_or_default() };
    let size = |i: usize| -> u64 {
        match op.opds.get(i) {
            Some(Operand::Size(s)) => *s,
            _ => 0,
        }
    };
    match op.opt {
        // FUSE-mounted file operations are target-independent.
        Operator::Create => format!(
            "dd if=/dev/urandom of={mnt}{} bs=1 count={}",
            opd(0),
            size(1)
        ),
        Operator::Delete => format!("rm {mnt}{}", opd(0)),
        Operator::Append => format!(
            "dd if=/dev/urandom bs=1 count={} >> {mnt}{}",
            size(1),
            opd(0)
        ),
        Operator::Overwrite => {
            format!(
                "dd if=/dev/urandom of={mnt}{} bs=1 count={} conv=notrunc",
                opd(0),
                size(1)
            )
        }
        Operator::Open => format!("cat {mnt}{} > /dev/null", opd(0)),
        Operator::TruncateOverwrite => {
            format!(
                "truncate -s 0 {mnt}{p} && dd if=/dev/urandom of={mnt}{p} bs=1 count={c}",
                p = opd(0),
                c = size(1)
            )
        }
        Operator::Mkdir => format!("mkdir {mnt}{}", opd(0)),
        Operator::Rmdir => format!("rmdir {mnt}{}", opd(0)),
        Operator::Rename => format!("mv {mnt}{} {mnt}{}", opd(0), opd(1)),
        // Administration commands are flavor-specific.
        Operator::AddMn => match flavor {
            Flavor::Hdfs => "hdfs --daemon start namenode".into(),
            Flavor::CephFs => "ceph orch apply mds themis --placement=+1".into(),
            Flavor::GlusterFs => "gluster peer probe <new-mgmt>".into(),
            Flavor::LeoFs => "leofs-adm start-gateway <new-gw>".into(),
        },
        Operator::RemoveMn => match flavor {
            Flavor::Hdfs => format!("hdfs --daemon stop namenode # {}", opd(0)),
            Flavor::CephFs => format!("ceph mds fail {}", opd(0)),
            Flavor::GlusterFs => format!("gluster peer detach {}", opd(0)),
            Flavor::LeoFs => format!("leofs-adm stop-gateway {}", opd(0)),
        },
        Operator::AddStorage => match flavor {
            Flavor::Hdfs => format!("hdfs --daemon start datanode # capacity {}", size(0)),
            Flavor::CephFs => format!("ceph orch daemon add osd <host>:<dev> # {}", size(0)),
            Flavor::GlusterFs => {
                format!(
                    "gluster volume add-brick Themis-Test <host>:/brick # {}",
                    size(0)
                )
            }
            Flavor::LeoFs => format!("leofs-adm start-storage <node> # {}", size(0)),
        },
        Operator::RemoveStorage => match flavor {
            Flavor::Hdfs => format!("hdfs dfsadmin -decommission {}", opd(0)),
            Flavor::CephFs => format!("ceph orch osd rm {}", opd(0)),
            Flavor::GlusterFs => {
                format!(
                    "gluster volume remove-brick Themis-Test {}:brick1 start",
                    opd(0)
                )
            }
            Flavor::LeoFs => format!("leofs-adm detach {}", opd(0)),
        },
        Operator::AddVolume => match flavor {
            Flavor::Hdfs => format!("hdfs dfsadmin -reconfig datanode {} add-volume", opd(0)),
            Flavor::CephFs => format!("ceph orch daemon add osd {}:<new-dev>", opd(0)),
            Flavor::GlusterFs => {
                format!(
                    "gluster volume add-brick Themis-Test {}:<new-brick>",
                    opd(0)
                )
            }
            Flavor::LeoFs => format!("leofs-adm add-avs {}", opd(0)),
        },
        Operator::RemoveVolume => match flavor {
            Flavor::Hdfs => format!("hdfs dfsadmin -reconfig datanode remove-volume {}", opd(0)),
            Flavor::CephFs => format!("ceph orch osd rm {} --zap", opd(0)),
            Flavor::GlusterFs => {
                format!(
                    "gluster volume remove-brick Themis-Test {}:brick start",
                    opd(0)
                )
            }
            Flavor::LeoFs => format!("leofs-adm remove-avs {}", opd(0)),
        },
        Operator::ExpandVolume => format!("lvextend -L +{} {}", size(1), opd(0)),
        Operator::ReduceVolume => format!("lvreduce -L -{} {}", size(1), opd(0)),
    }
}

/// Renders the load-monitor command used to gather a node's disk state
/// (the paper's `df | grep <disk mounted by ThemisTest>` example).
pub fn render_monitor_command(flavor: Flavor) -> &'static str {
    match flavor {
        Flavor::Hdfs => "hdfs dfsadmin -report && df | grep themis-test",
        Flavor::CephFs => "ceph osd df && ceph status --format json",
        Flavor::GlusterFs => "gluster volume status detail && df | grep themis-test",
        Flavor::LeoFs => "leofs-adm du <node> && df | grep themis-test",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis::spec::{Operand, Operation, Operator};

    #[test]
    fn gluster_remove_volume_matches_paper_example() {
        let op = Operation::new(Operator::RemoveVolume, vec![Operand::VolumeId(1)]);
        let cmd = render_command(Flavor::GlusterFs, &op);
        assert!(
            cmd.contains("gluster volume remove-brick Themis-Test"),
            "{cmd}"
        );
        assert!(cmd.contains("start"), "{cmd}");
    }

    #[test]
    fn file_ops_render_identically_across_flavors() {
        let op = Operation::new(
            Operator::Create,
            vec![Operand::FileName("/f1".into()), Operand::Size(42)],
        );
        let a = render_command(Flavor::Hdfs, &op);
        let b = render_command(Flavor::LeoFs, &op);
        assert_eq!(a, b, "FUSE file operations need no per-target adaptation");
    }

    #[test]
    fn every_operator_renders_for_every_flavor() {
        for flavor in Flavor::all() {
            for opt in themis::spec::ALL_OPERATORS {
                let opds: Vec<Operand> = opt
                    .operand_shape()
                    .iter()
                    .map(|k| match k {
                        themis::spec::OperandKind::FileName => Operand::FileName("/x".into()),
                        themis::spec::OperandKind::NodeId => Operand::NodeId(1),
                        themis::spec::OperandKind::VolumeId => Operand::VolumeId(1),
                        themis::spec::OperandKind::Size => Operand::Size(10),
                    })
                    .collect();
                let cmd = render_command(flavor, &Operation::new(opt, opds));
                assert!(!cmd.is_empty());
            }
            assert!(!render_monitor_command(flavor).is_empty());
        }
    }
}
