//! The Interaction Adaptor for simulated DFS flavors.
//!
//! [`SimAdaptor`] implements [`themis::DfsAdaptor`] over a shared
//! [`simdfs::DfsSim`]. Themis only ever sees the trait; the shared handle
//! exists so the *evaluation harness* (not Themis) can consult the
//! simulator's ground-truth bug oracle to attribute confirmed failures.

use crate::commands::render_command;
use simdfs::{
    BugSet, ClusterSnapshot, DfsRequest, DfsSim, Flavor, NodeRole, RebalanceStatus, SimError,
};
use std::cell::RefCell;
use std::rc::Rc;
use themis::adaptor::{
    AdaptorError, CrashExplorable, CrashOracleViolation, DfsAdaptor, LoadReport, NodeInventory,
    NodeLoad, Role, SnapshotCapable,
};
use themis::spec::{Operand, Operation, Operator};

/// A shared simulator handle.
pub type SimHandle = Rc<RefCell<DfsSim>>;

/// Client-side retry and timeout semantics for [`SimAdaptor::send`].
///
/// Real DFS clients do not give up on the first connection refusal: they
/// retry with backoff (surviving brief control-plane outages such as a
/// partition that later heals) and abandon requests that exceed a client
/// timeout. The defaults are chosen so a fault-free simulator never hits
/// either path: the costliest normal request is ~30.5 s, well under
/// `timeout_ms`, and `ClusterDown` cannot occur without faults or
/// node-removal operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failed send.
    pub max_retries: u32,
    /// Initial backoff between attempts (doubles per retry, virtual time).
    pub backoff_ms: u64,
    /// Client-side timeout: completed requests slower than this surface as
    /// rejected (the client hung up before the reply arrived).
    pub timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_ms: 5_000,
            timeout_ms: 120_000,
        }
    }
}

/// Adaptor binding Themis to one simulated DFS instance.
pub struct SimAdaptor {
    sim: SimHandle,
    /// Retry/backoff/timeout behavior applied by [`DfsAdaptor::send`].
    pub retry: RetryPolicy,
    /// Recently sent operations, oldest first (bounded ring). Commands are
    /// rendered on demand by [`SimAdaptor::command_log`] — rendering on
    /// every send would put string formatting on the campaign hot path.
    op_log: std::collections::VecDeque<Operation>,
    /// Cap on the retained command log (old entries are dropped). 0
    /// disables capture entirely, keeping the per-send operation clone off
    /// the hot path; campaign harnesses that never read the log use that.
    pub command_log_cap: usize,
    /// Reusable snapshot buffer for incremental load reporting.
    snap_buf: ClusterSnapshot,
    /// Whether [`DfsAdaptor::snapshots`] advertises the fork/restore
    /// capability (on by default). Benchmarks switch it off to time the
    /// redeploy-per-iteration fallback against the same target.
    advertise_snapshots: bool,
}

impl SimAdaptor {
    /// Builds a fresh simulator for `flavor` with the given bug set and
    /// wraps it.
    pub fn new(flavor: Flavor, bugs: BugSet) -> Self {
        Self::from_handle(Rc::new(RefCell::new(DfsSim::new(flavor, bugs))))
    }

    /// Wraps an existing simulator handle.
    pub fn from_handle(sim: SimHandle) -> Self {
        SimAdaptor {
            sim,
            retry: RetryPolicy::default(),
            op_log: std::collections::VecDeque::new(),
            command_log_cap: 4096,
            snap_buf: ClusterSnapshot::default(),
            advertise_snapshots: true,
        }
    }

    /// Enables or disables the [`SnapshotCapable`] advertisement. With it
    /// off, clean-slate campaigns take the full-redeploy fallback path —
    /// the pre-fork-engine baseline the benchmarks compare against.
    pub fn set_snapshot_capability(&mut self, enabled: bool) {
        self.advertise_snapshots = enabled;
    }

    /// The rendered command log (what a real deployment would have
    /// executed), oldest first.
    pub fn command_log(&self) -> Vec<String> {
        let flavor = self.sim.borrow().flavor();
        self.op_log
            .iter()
            .map(|op| render_command(flavor, op))
            .collect()
    }

    /// The shared simulator handle (for harness-side oracle access).
    pub fn handle(&self) -> SimHandle {
        Rc::clone(&self.sim)
    }

    /// Marks the simulator's current state as the reusable base for
    /// cross-campaign reuse (see [`simdfs::DfsSim::mark_base`]). Call once
    /// right after construction, before any traffic or fault plan.
    pub fn mark_base(&mut self) {
        self.sim.borrow_mut().mark_base();
    }

    /// Rewinds the wrapped simulator to its base mark — byte-identical to
    /// a fresh deploy — and clears the adaptor's own per-campaign client
    /// state (command log; retry policy is left as configured). Returns
    /// `false` if [`SimAdaptor::mark_base`] was never called.
    pub fn restore_to_base(&mut self) -> bool {
        if !self.sim.borrow_mut().restore_to_base() {
            return false;
        }
        self.op_log.clear();
        true
    }

    /// Translates a Themis operation into a simulator request.
    ///
    /// Returns `None` for operations whose operands cannot be represented
    /// (e.g. a node id that is not a valid u32) — these are rejected like a
    /// malformed CLI invocation would be.
    fn translate(&self, op: &Operation) -> Option<DfsRequest> {
        let path = |i: usize| -> Option<String> {
            match op.opds.get(i) {
                Some(Operand::FileName(p)) => Some(p.clone()),
                _ => None,
            }
        };
        let size = |i: usize| -> Option<u64> {
            match op.opds.get(i) {
                Some(Operand::Size(s)) => Some(*s),
                _ => None,
            }
        };
        let node = |i: usize| -> Option<simdfs::NodeId> {
            match op.opds.get(i) {
                Some(Operand::NodeId(n)) => u32::try_from(*n).ok().map(simdfs::NodeId),
                _ => None,
            }
        };
        let volume = |i: usize| -> Option<simdfs::VolumeId> {
            match op.opds.get(i) {
                Some(Operand::VolumeId(v)) => u32::try_from(*v).ok().map(simdfs::VolumeId),
                _ => None,
            }
        };
        let volumes_per_node = self.sim.borrow().config().volumes_per_node;
        Some(match op.opt {
            Operator::Create => DfsRequest::Create {
                path: path(0)?,
                size: size(1)?,
            },
            Operator::Delete => DfsRequest::Delete { path: path(0)? },
            Operator::Append => DfsRequest::Append {
                path: path(0)?,
                delta: size(1)?,
            },
            Operator::Overwrite => DfsRequest::Overwrite {
                path: path(0)?,
                size: size(1)?,
            },
            Operator::Open => DfsRequest::Open { path: path(0)? },
            Operator::TruncateOverwrite => DfsRequest::TruncateOverwrite {
                path: path(0)?,
                size: size(1)?,
            },
            Operator::Mkdir => DfsRequest::Mkdir { path: path(0)? },
            Operator::Rmdir => DfsRequest::Rmdir { path: path(0)? },
            Operator::Rename => DfsRequest::Rename {
                from: path(0)?,
                to: path(1)?,
            },
            Operator::AddMn => DfsRequest::AddMgmtNode,
            Operator::RemoveMn => DfsRequest::RemoveMgmtNode { node: node(0)? },
            Operator::AddStorage => DfsRequest::AddStorageNode {
                volumes: volumes_per_node,
                capacity: size(0)?,
            },
            Operator::RemoveStorage => DfsRequest::RemoveStorageNode { node: node(0)? },
            Operator::AddVolume => DfsRequest::AddVolume {
                node: node(0)?,
                capacity: size(1)?,
            },
            Operator::RemoveVolume => DfsRequest::RemoveVolume { volume: volume(0)? },
            Operator::ExpandVolume => DfsRequest::ExpandVolume {
                volume: volume(0)?,
                delta: size(1)?,
            },
            Operator::ReduceVolume => DfsRequest::ReduceVolume {
                volume: volume(0)?,
                delta: size(1)?,
            },
        })
    }
}

impl DfsAdaptor for SimAdaptor {
    fn name(&self) -> String {
        let sim = self.sim.borrow();
        format!("{} {}", sim.flavor().name(), sim.flavor().version())
    }

    fn send(&mut self, op: &Operation) -> Result<(), AdaptorError> {
        if self.command_log_cap > 0 {
            while self.op_log.len() >= self.command_log_cap {
                self.op_log.pop_front();
            }
            self.op_log.push_back(op.clone());
        }
        let req = self
            .translate(op)
            .ok_or_else(|| AdaptorError::Rejected(format!("untranslatable operation: {op}")))?;
        let mut backoff = self.retry.backoff_ms.max(1);
        let mut attempts_left = self.retry.max_retries;
        loop {
            // Bind before matching: the scrutinee's RefCell guard would
            // otherwise live through the arms and conflict with `tick`.
            let outcome = self.sim.borrow_mut().execute(&req);
            match outcome {
                Ok(out) => {
                    // The request completed server-side, but a client that
                    // waited past its timeout already hung up: report it
                    // as rejected. Only slow-node faults push latency this
                    // high (normal worst case ~30.5 s < 120 s default).
                    return if out.latency_ms > self.retry.timeout_ms {
                        Err(AdaptorError::Rejected(format!(
                            "client timeout after {} ms",
                            out.latency_ms
                        )))
                    } else {
                        Ok(())
                    };
                }
                Err(SimError::ClusterDown) if attempts_left > 0 => {
                    // Back off on the virtual clock before retrying — this
                    // lets scheduled Heal/Restart fault events fire, so a
                    // transient outage is survived rather than reported.
                    attempts_left -= 1;
                    self.sim.borrow_mut().tick(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(SimError::ClusterDown) => {
                    return Err(AdaptorError::Down("cluster down".into()));
                }
                Err(e) => return Err(AdaptorError::Rejected(e.to_string())),
            }
        }
    }

    fn load_report(&mut self) -> LoadReport {
        let mut report = LoadReport::default();
        self.load_report_into(&mut report);
        report
    }

    fn load_report_into(&mut self, out: &mut LoadReport) {
        let mut sim = self.sim.borrow_mut();
        sim.load_snapshot_into(&mut self.snap_buf);
        let crashed = sim.crashed_nodes();
        out.time_ms = self.snap_buf.time.as_millis();
        out.nodes.clear();
        out.nodes
            .extend(self.snap_buf.nodes.iter().map(|n| NodeLoad {
                node: n.node.0 as u64,
                role: match n.role {
                    NodeRole::Management => Role::Management,
                    NodeRole::Storage => Role::Storage,
                },
                online: n.online,
                crashed: crashed.contains(&n.node),
                cpu: n.cpu,
                rps: n.rps,
                read_io: n.read_io,
                write_io: n.write_io,
                storage: n.storage,
                capacity: n.capacity,
                uptime_ms: n.uptime_ms,
            }));
    }

    fn rebalance(&mut self) {
        self.sim.borrow_mut().rebalance();
    }

    fn rebalance_done(&mut self) -> bool {
        self.sim.borrow().rebalance_status() == RebalanceStatus::Done
    }

    fn wait(&mut self, ms: u64) {
        self.sim.borrow_mut().tick(ms);
    }

    fn reset(&mut self) {
        self.sim.borrow_mut().reset();
    }

    fn coverage(&mut self) -> u64 {
        self.sim.borrow().coverage_count()
    }

    fn now_ms(&mut self) -> u64 {
        self.sim.borrow().now().as_millis()
    }

    fn inventory(&mut self) -> NodeInventory {
        let sim = self.sim.borrow();
        let cluster = sim.cluster();
        let mut mgmt = Vec::new();
        let mut storage = Vec::new();
        for (id, role, online) in cluster.node_ids() {
            if !online {
                continue;
            }
            match role {
                NodeRole::Management => mgmt.push(id.0 as u64),
                NodeRole::Storage => storage.push(id.0 as u64),
            }
        }
        let mut volumes: Vec<u64> = cluster.volume_owner.keys().map(|v| v.0 as u64).collect();
        volumes.sort_unstable();
        let ns = sim.namespace();
        // `/sys` holds the deployment's pre-existing data; the tester's
        // FUSE mount only exposes its own test directory. The walk skips
        // that subtree outright — materializing thousands of preload paths
        // only to filter them back out dominated inventory cost.
        NodeInventory {
            mgmt,
            storage,
            volumes,
            free_space: sim.free_space(),
            files: ns
                .files_excluding_top("sys")
                .into_iter()
                .map(|(p, _, _)| p)
                .filter(|p| !p.starts_with("/sys"))
                .collect(),
            dirs: ns
                .directories_excluding_top("sys")
                .into_iter()
                .filter(|p| !p.starts_with("/sys"))
                .collect(),
        }
    }

    fn free_space(&mut self) -> u64 {
        self.sim.borrow().free_space()
    }

    fn topology(&mut self) -> NodeInventory {
        let sim = self.sim.borrow();
        let cluster = sim.cluster();
        let mut mgmt = Vec::new();
        let mut storage = Vec::new();
        for (id, role, online) in cluster.node_ids() {
            if !online {
                continue;
            }
            match role {
                NodeRole::Management => mgmt.push(id.0 as u64),
                NodeRole::Storage => storage.push(id.0 as u64),
            }
        }
        let mut volumes: Vec<u64> = cluster.volume_owner.keys().map(|v| v.0 as u64).collect();
        volumes.sort_unstable();
        NodeInventory {
            mgmt,
            storage,
            volumes,
            free_space: sim.free_space(),
            files: Vec::new(),
            dirs: Vec::new(),
        }
    }

    fn snapshots(&mut self) -> Option<&mut dyn SnapshotCapable> {
        if self.advertise_snapshots {
            Some(self)
        } else {
            None
        }
    }

    fn crash_points(&mut self) -> Option<&mut dyn CrashExplorable> {
        // Crash exploration replays windows through fork/restore; the
        // capability is only coherent while snapshots are advertised.
        if self.advertise_snapshots {
            Some(self)
        } else {
            None
        }
    }
}

/// Crash-point instrumentation over the simulator's migration pipeline
/// (see `simdfs::crash`). Labels and indices are deterministic, so the
/// explorer's enumerate-then-crash replays line up exactly.
impl CrashExplorable for SimAdaptor {
    fn arm_enumeration(&mut self) {
        self.sim.borrow_mut().arm_crash_enumeration();
    }

    fn arm_crash_at(&mut self, k: u64) {
        self.sim.borrow_mut().arm_crash_at(k);
    }

    fn disarm(&mut self) -> Vec<String> {
        self.sim.borrow_mut().disarm_crash()
    }

    fn crash_fired(&mut self) -> bool {
        self.sim.borrow().crashed_in_flight().is_some()
    }

    fn recover(&mut self) -> Option<String> {
        self.sim
            .borrow_mut()
            .recover_crashed_machine()
            .map(|inf| inf.label())
    }

    fn check_invariants(&mut self) -> Option<CrashOracleViolation> {
        self.sim
            .borrow_mut()
            .check_crash_invariants()
            .err()
            .map(|v| CrashOracleViolation {
                class: v.class.as_str().into(),
                detail: v.detail,
            })
    }

    fn window_step_ms(&self) -> u64 {
        self.sim.borrow().config().migrate_step_ms
    }

    fn set_runtime_audit(&mut self, on: bool) {
        self.sim.borrow_mut().set_runtime_audit(on);
    }
}

/// Fork/restore over the simulator's delta-journal snapshots. The sim
/// rewinds its own virtual clock, so restored replays see identical
/// timestamps; the diagnostic command log is intentionally not rewound
/// (it mirrors what a human operator's terminal history would show).
impl SnapshotCapable for SimAdaptor {
    fn snapshot(&mut self) -> u64 {
        self.sim.borrow_mut().fork()
    }

    fn restore(&mut self, id: u64) -> bool {
        self.sim.borrow_mut().restore(id)
    }

    fn release(&mut self, id: u64) {
        self.sim.borrow_mut().release(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis::spec::{Operand, Operation, Operator};

    fn adaptor(flavor: Flavor) -> SimAdaptor {
        SimAdaptor::new(flavor, BugSet::None)
    }

    fn create(path: &str, size: u64) -> Operation {
        Operation::new(
            Operator::Create,
            vec![Operand::FileName(path.into()), Operand::Size(size)],
        )
    }

    #[test]
    fn send_executes_against_the_sim() {
        let mut a = adaptor(Flavor::Hdfs);
        a.send(&create("/x", 1 << 20)).unwrap();
        let inv = a.inventory();
        assert_eq!(inv.files, vec!["/x".to_string()]);
        assert!(a.coverage() > 0);
        assert!(a.now_ms() > 0);
    }

    #[test]
    fn rejected_operations_surface_as_errors() {
        let mut a = adaptor(Flavor::GlusterFs);
        let del = Operation::new(Operator::Delete, vec![Operand::FileName("/nope".into())]);
        match a.send(&del) {
            Err(AdaptorError::Rejected(msg)) => assert!(msg.contains("no such path")),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn untranslatable_node_id_is_rejected() {
        let mut a = adaptor(Flavor::LeoFs);
        let bad = Operation::new(Operator::RemoveStorage, vec![Operand::NodeId(u64::MAX)]);
        assert!(matches!(a.send(&bad), Err(AdaptorError::Rejected(_))));
    }

    #[test]
    fn load_report_covers_ten_nodes() {
        let mut a = adaptor(Flavor::CephFs);
        let report = a.load_report();
        assert_eq!(report.nodes.len(), 10);
        assert_eq!(report.by_role(Role::Management).count(), 3);
        assert_eq!(report.by_role(Role::Storage).count(), 7);
    }

    #[test]
    fn inventory_tracks_topology_changes() {
        let mut a = adaptor(Flavor::Hdfs);
        let before = a.inventory();
        a.send(&Operation::new(
            Operator::AddStorage,
            vec![Operand::Size(1 << 30)],
        ))
        .unwrap();
        let after = a.inventory();
        assert_eq!(after.storage.len(), before.storage.len() + 1);
        assert!(after.volumes.len() > before.volumes.len());
    }

    #[test]
    fn reset_restores_initial_inventory() {
        let mut a = adaptor(Flavor::Hdfs);
        a.send(&create("/x", 1 << 20)).unwrap();
        a.send(&Operation::new(
            Operator::AddStorage,
            vec![Operand::Size(1 << 30)],
        ))
        .unwrap();
        a.reset();
        let inv = a.inventory();
        assert!(inv.files.is_empty());
        assert_eq!(inv.storage.len(), 8);
    }

    #[test]
    fn rebalance_api_roundtrip() {
        let mut a = adaptor(Flavor::GlusterFs);
        for i in 0..30 {
            a.send(&create(&format!("/f{i}"), 16 << 20)).unwrap();
        }
        a.send(&Operation::new(
            Operator::AddStorage,
            vec![Operand::Size(4 << 30)],
        ))
        .unwrap();
        a.rebalance();
        let mut guard = 0;
        while !a.rebalance_done() && guard < 10_000 {
            a.wait(1_000);
            guard += 1;
        }
        assert!(a.rebalance_done());
    }

    #[test]
    fn command_log_records_rendered_commands() {
        let mut a = adaptor(Flavor::GlusterFs);
        a.send(&create("/x", 1)).unwrap();
        let log = a.command_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].contains("dd if=/dev/urandom"));
    }

    #[test]
    fn command_log_is_bounded() {
        let mut a = adaptor(Flavor::Hdfs);
        a.command_log_cap = 10;
        for i in 0..50 {
            let _ = a.send(&create(&format!("/f{i}"), 1));
        }
        assert!(a.command_log().len() <= 10);
    }

    #[test]
    fn client_timeout_rejects_slow_requests() {
        let mut a = adaptor(Flavor::Hdfs);
        // Absurdly tight client timeout: every request is now "too slow".
        a.retry.timeout_ms = 0;
        match a.send(&create("/x", 1 << 20)) {
            Err(AdaptorError::Rejected(msg)) => assert!(msg.contains("client timeout")),
            other => panic!("expected client timeout, got {other:?}"),
        }
        // The file was still created server-side (the client only hung
        // up), so the default-policy adaptor behavior is unchanged.
        a.retry = RetryPolicy::default();
        a.send(&create("/y", 1 << 20)).unwrap();
    }

    #[test]
    fn retry_with_backoff_survives_transient_outage() {
        use simdfs::{FaultEvent, FaultKind, FaultPlan};
        let mut a = adaptor(Flavor::Hdfs);
        // Partition both management nodes away at t=1s, heal at t=10s: a
        // transient control-plane outage. The retry backoff (5 s, then
        // 10 s of virtual time) carries the client past the heal.
        a.handle().borrow_mut().set_fault_plan(FaultPlan::new(vec![
            FaultEvent {
                at_ms: 1_000,
                kind: FaultKind::PartitionMgmt { index: 0 },
            },
            FaultEvent {
                at_ms: 1_000,
                kind: FaultKind::PartitionMgmt { index: 0 },
            },
            FaultEvent {
                at_ms: 10_000,
                kind: FaultKind::Heal,
            },
        ]));
        a.wait(2_000);
        assert!(a.send(&create("/x", 1 << 20)).is_ok());

        // With retries disabled the same outage surfaces as Down.
        let mut b = adaptor(Flavor::Hdfs);
        b.retry.max_retries = 0;
        b.handle().borrow_mut().set_fault_plan(FaultPlan::new(vec![
            FaultEvent {
                at_ms: 1_000,
                kind: FaultKind::PartitionMgmt { index: 0 },
            },
            FaultEvent {
                at_ms: 1_000,
                kind: FaultKind::PartitionMgmt { index: 0 },
            },
        ]));
        b.wait(2_000);
        assert!(matches!(
            b.send(&create("/x", 1 << 20)),
            Err(AdaptorError::Down(_))
        ));
    }

    #[test]
    fn snapshot_capability_forwards_to_the_sim() {
        let mut a = adaptor(Flavor::GlusterFs);
        a.send(&create("/x", 1 << 20)).unwrap();
        let t0 = a.now_ms();
        let files0 = a.inventory().files;
        let mark = a.snapshots().expect("sim adaptor forks").snapshot();
        a.send(&create("/y", 1 << 20)).unwrap();
        assert!(a.now_ms() > t0);
        assert!(a.snapshots().unwrap().restore(mark));
        assert_eq!(a.now_ms(), t0, "restore rewinds the virtual clock");
        assert_eq!(a.inventory().files, files0);
        a.reset();
        assert!(
            !a.snapshots().unwrap().restore(mark),
            "reset invalidates marks"
        );
    }

    #[test]
    fn snapshot_capability_can_be_switched_off() {
        let mut a = adaptor(Flavor::Hdfs);
        assert!(a.snapshots().is_some());
        a.set_snapshot_capability(false);
        assert!(a.snapshots().is_none());
        a.set_snapshot_capability(true);
        assert!(a.snapshots().is_some());
    }

    #[test]
    fn base_restore_reproduces_a_fresh_adaptor() {
        let mut reused = adaptor(Flavor::GlusterFs);
        reused.mark_base();
        for i in 0..10 {
            reused.send(&create(&format!("/warm{i}"), 4 << 20)).unwrap();
        }
        assert!(reused.restore_to_base());
        assert!(reused.command_log().is_empty());

        let mut fresh = adaptor(Flavor::GlusterFs);
        assert_eq!(reused.now_ms(), fresh.now_ms());
        assert_eq!(reused.coverage(), fresh.coverage());
        for i in 0..10 {
            reused.send(&create(&format!("/f{i}"), 4 << 20)).unwrap();
            fresh.send(&create(&format!("/f{i}"), 4 << 20)).unwrap();
        }
        assert_eq!(reused.now_ms(), fresh.now_ms());
        assert_eq!(reused.coverage(), fresh.coverage());
        assert_eq!(reused.inventory().files, fresh.inventory().files);
        assert_eq!(reused.free_space(), fresh.free_space());
    }

    #[test]
    fn base_restore_without_mark_fails() {
        let mut a = adaptor(Flavor::Hdfs);
        assert!(!a.restore_to_base());
    }

    #[test]
    fn free_space_shrinks_with_data() {
        let mut a = adaptor(Flavor::Hdfs);
        let before = a.free_space();
        a.send(&create("/big", 64 << 20)).unwrap();
        assert!(a.free_space() < before);
    }

    #[test]
    fn crash_capability_follows_snapshot_advertisement() {
        let mut a = adaptor(Flavor::GlusterFs);
        assert!(a.crash_points().is_some());
        a.set_snapshot_capability(false);
        assert!(a.crash_points().is_none());
    }

    #[test]
    fn bounded_exploration_finds_all_seeded_classes_where_random_misses() {
        // The acceptance-criteria scenario: on GlusterFS (the linkfile
        // flavor) bounded exploration finds all three seeded
        // crash-window classes, while the random-time baseline with the
        // same fork budget misses at least one.
        let mut a = adaptor(Flavor::GlusterFs);
        let cfg = themis::CrashExplorerConfig::default();
        let result = themis::run_crash_campaign(&mut a, &cfg).unwrap();
        for class in ["orphan_replica", "double_counted_blocks", "lost_linkfile"] {
            assert!(
                result.bounded.found(class),
                "bounded arm must find {class}; found {:?}",
                result.bounded.by_class
            );
        }
        assert_eq!(result.baseline.forks, result.bounded.forks);
        let missed = ["orphan_replica", "double_counted_blocks", "lost_linkfile"]
            .iter()
            .filter(|c| !result.baseline.found(c))
            .count();
        assert!(
            missed >= 1,
            "random baseline with the same budget must miss a class; found {:?}",
            result.baseline.by_class
        );
    }

    #[test]
    fn non_linkfile_flavors_find_the_accounting_classes() {
        let mut a = adaptor(Flavor::Hdfs);
        let cfg = themis::CrashExplorerConfig::default();
        let result = themis::run_crash_campaign(&mut a, &cfg).unwrap();
        assert!(result.bounded.found("orphan_replica"));
        assert!(result.bounded.found("double_counted_blocks"));
        assert!(
            !result.bounded.found("lost_linkfile"),
            "HDFS has no linkfile machinery"
        );
    }

    #[test]
    fn crash_campaign_is_deterministic() {
        let cfg = themis::CrashExplorerConfig::default();
        let mut a = adaptor(Flavor::GlusterFs);
        let first = themis::run_crash_campaign(&mut a, &cfg).unwrap();
        let mut b = adaptor(Flavor::GlusterFs);
        let second = themis::run_crash_campaign(&mut b, &cfg).unwrap();
        assert_eq!(first, second, "same seed must reproduce bit-identically");
    }
}
