//! Property-based tests of the fault-injection subsystem as seen through
//! the adaptor: campaigns under faults stay deterministic, and a crash
//! fault is always detected and survives the detector's double-check.

use adaptors::SimAdaptor;
use proptest::prelude::*;
use simdfs::{BugSet, FaultPlan, Flavor};
use themis::adaptor::DfsAdaptor;
use themis::spec::TestCase;
use themis::{by_name, run_campaign, CampaignConfig, Detector, ImbalanceKind, NullObserver};

/// One full campaign against a faulted simulator, returning the complete
/// result (PartialEq covers confirmations, traces and counters).
fn campaign(profile: &str, seed: u64) -> themis::CampaignResult {
    let mut strategy = by_name("Themis").expect("strategy");
    let mut adaptor = SimAdaptor::new(Flavor::Hdfs, BugSet::None);
    let plan = FaultPlan::named(profile, seed).expect("profile");
    adaptor.handle().borrow_mut().set_fault_plan(plan);
    let cfg = CampaignConfig {
        budget_ms: 3_600_000,
        seed,
        ..Default::default()
    };
    run_campaign(strategy.as_mut(), &mut adaptor, &cfg, &mut NullObserver)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A faulted campaign is a pure function of (seed, fault profile):
    /// two runs with the same coordinates are bit-identical.
    #[test]
    fn faulted_campaigns_are_deterministic(
        seed in any::<u64>(),
        profile_idx in 0usize..FaultPlan::profiles().len(),
    ) {
        let profile = FaultPlan::profiles()[profile_idx];
        prop_assert_eq!(campaign(profile, seed), campaign(profile, seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the seed places in the crash plan, once the crash fires
    /// the detector raises a Crash candidate and the double-check cannot
    /// explain it away (the host stays down through rebalances, settles
    /// and probe traffic).
    #[test]
    fn crash_fault_always_survives_double_check(seed in any::<u64>()) {
        let mut adaptor = SimAdaptor::new(Flavor::CephFs, BugSet::None);
        let plan = FaultPlan::named("crash", seed).expect("profile");
        adaptor.handle().borrow_mut().set_fault_plan(plan);
        // The crash fires 20-40 virtual minutes in; wait well past it.
        adaptor.wait(3_600_000);
        let detector = Detector::with_threshold(0.25);
        let report = adaptor.load_report();
        let candidates = detector.check(&report);
        prop_assert!(
            candidates.iter().any(|c| c.kind == ImbalanceKind::Crash),
            "crashed node must raise a Crash candidate, got {candidates:?}"
        );
        let survivors = detector.double_check(&mut adaptor, &TestCase::new(vec![]));
        prop_assert!(
            survivors.iter().any(|c| c.kind == ImbalanceKind::Crash),
            "Crash candidate must survive the double-check, got {survivors:?}"
        );
    }
}
