//! Quick strategy-comparison matrix: runs every strategy against every
//! flavor for 24 virtual hours and prints found bugs, false positives and
//! coverage. Pass `hist` to use the historical bug set.

use adaptors::SimAdaptor;
use simdfs::{BugSet, Flavor};
use std::collections::BTreeSet;
use themis::{by_name, run_campaign, CampaignConfig, CampaignObserver, ConfirmedFailure};

struct Attr {
    handle: adaptors::SimHandle,
    found: BTreeSet<&'static str>,
    fp: u32,
}
impl CampaignObserver for Attr {
    fn on_confirmed(&mut self, _f: &ConfirmedFailure) {
        let sim = self.handle.borrow();
        let trig = sim.oracle_triggered();
        if trig.is_empty() {
            self.fp += 1;
        } else {
            self.found.extend(trig);
        }
    }
}

fn main() {
    // detlint:allow(env-read): example CLI picks which fixed bug set to run; seeds stay hardcoded, so results are unaffected by ambient state
    let mode = std::env::args().nth(1).unwrap_or_else(|| "new".into());
    let bugs = if mode == "hist" {
        BugSet::Historical
    } else {
        BugSet::New
    };
    for strat_name in [
        "Themis",
        "Fix_req",
        "Fix_conf",
        "Alternate",
        "Concurrent",
        "Themis-",
    ] {
        let mut all: BTreeSet<&'static str> = BTreeSet::new();
        let mut per = Vec::new();
        let mut fps = 0;
        let mut covs = Vec::new();
        for flavor in Flavor::all() {
            let mut strat = by_name(strat_name).unwrap();
            let mut adaptor = SimAdaptor::new(flavor, bugs.clone());
            let handle = adaptor.handle();
            let mut obs = Attr {
                handle: handle.clone(),
                found: BTreeSet::new(),
                fp: 0,
            };
            let cfg = CampaignConfig::hours(24);
            let res = run_campaign(strat.as_mut(), &mut adaptor, &cfg, &mut obs);
            per.push(format!("{}:{}", flavor.name(), obs.found.len()));
            fps += obs.fp;
            covs.push(res.final_coverage);
            all.extend(obs.found.iter());
        }
        println!(
            "{:<11} total={:<3} {} fp_confirms={} cov={:?}",
            strat_name,
            all.len(),
            per.join(" "),
            fps,
            covs
        );
        if mode != "hist" {
            println!("    bugs: {:?}", all);
        }
    }
}
