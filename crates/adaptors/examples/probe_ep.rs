//! Final discriminator measurement: per-iteration episode rates at the
//! detector-adjacent ratio (1.26) and near-band sustained occupancy.
use adaptors::SimAdaptor;
use simdfs::bugs::{BugSpec, Effect, FailureKind, Gate, Metric, Trigger};
use simdfs::{BugSet, Flavor};
use themis::{by_name, run_campaign, CampaignConfig, NullObserver};

fn templates(platform: Flavor) -> Vec<BugSpec> {
    let mk = |id: &'static str, trigger: Trigger| BugSpec {
        id,
        platform,
        kind: FailureKind::ImbalancedStorage,
        title: "cal",
        trigger,
        effect: Effect::Inert,
        gate: Gate::None,
        is_new: true,
    };
    vec![
        mk(
            "E26x04",
            Trigger::variance_episodes(Metric::Storage, 1.26, 4),
        ),
        mk(
            "E26x10",
            Trigger::variance_episodes(Metric::Storage, 1.26, 10),
        ),
        mk(
            "E26x20",
            Trigger::variance_episodes(Metric::Storage, 1.26, 20),
        ),
        mk(
            "E26x40",
            Trigger::variance_episodes(Metric::Storage, 1.26, 40),
        ),
        mk(
            "E32x06",
            Trigger::variance_episodes(Metric::Storage, 1.32, 6),
        ),
        mk(
            "E32x15",
            Trigger::variance_episodes(Metric::Storage, 1.32, 15),
        ),
    ]
}

fn main() {
    for flavor in Flavor::all() {
        println!("=== {} ===", flavor.name());
        for name in [
            "Themis",
            "Themis-",
            "Concurrent",
            "Alternate",
            "Fix_req",
            "Fix_conf",
        ] {
            let mut strat = by_name(name).unwrap();
            let mut adaptor = SimAdaptor::new(flavor, BugSet::Custom(templates(flavor)));
            let handle = adaptor.handle();
            let cfg = CampaignConfig::hours(24);
            let _ = run_campaign(strat.as_mut(), &mut adaptor, &cfg, &mut NullObserver);
            let sim = handle.borrow();
            let fired: Vec<String> = sim
                .oracle_bugs()
                .iter()
                .filter_map(|b| {
                    b.triggered_at
                        .map(|t| format!("{}@{}h", b.spec.id, t.as_millis() / 3600000))
                })
                .collect();
            println!("  {:<11} {:?}", name, fired);
        }
    }
}
