//! Criterion benches: one target per paper table/figure (reduced budgets)
//! plus micro-benchmarks of the hot paths (generation, mutation, detector,
//! simulator throughput).
//!
//! The full-budget artifacts are produced by the `repro` binary; these
//! benches time scaled-down versions of the same code paths so regressions
//! in the harness show up in `cargo bench`.

use bench::{run_eval, run_eval_baseline, run_matrix, run_strategy_all_flavors};
use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simdfs::{BugSet, DfsRequest, DfsSim, Flavor, MIB};
use std::hint::black_box;
use themis::{Detector, InputModel, NodeInventory, VarianceWeights};

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(8));
    g
}

fn bench_tables(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("table1_catalog", |b| {
        b.iter(|| black_box(bench::tables::table1().len()))
    });
    g.bench_function("figure2_reproduction", |b| {
        b.iter(|| black_box(bench::tables::figure2().len()))
    });
    g.bench_function("table2_themis_1h_gluster", |b| {
        b.iter(|| {
            let r = run_eval(
                Flavor::GlusterFs,
                "Themis",
                BugSet::New,
                1,
                0xbe,
                0.25,
                VarianceWeights::default(),
            );
            black_box(r.campaign.ops_sent)
        })
    });
    g.bench_function("table3_5_fig12_matrix_1h", |b| {
        b.iter(|| {
            let m = run_matrix(&["Themis"], BugSet::New, 1, 0xbe);
            black_box(m["Themis"].len())
        })
    });
    g.bench_function("table4_historical_1h", |b| {
        b.iter(|| {
            let rs = run_strategy_all_flavors(
                "Themis",
                BugSet::Historical,
                1,
                0xbe,
                0.25,
                VarianceWeights::default(),
            );
            black_box(rs.len())
        })
    });
    g.bench_function("table6_ablation_1h", |b| {
        b.iter(|| {
            let m = run_matrix(&["Themis", "Themis-"], BugSet::New, 1, 0xbe);
            black_box(m.len())
        })
    });
    g.bench_function("table7_low_threshold_1h", |b| {
        b.iter(|| {
            let r = run_eval(
                Flavor::LeoFs,
                "Themis",
                BugSet::New,
                1,
                0xbe,
                0.05,
                VarianceWeights::default(),
            );
            black_box(r.false_positive_confirms)
        })
    });
    g.bench_function("table8_storage_weight_1h", |b| {
        b.iter(|| {
            let r = run_eval(
                Flavor::LeoFs,
                "Themis",
                BugSet::New,
                1,
                0xbe,
                0.25,
                VarianceWeights::storage_weighted(1.0),
            );
            black_box(r.campaign.iterations)
        })
    });
    g.finish();
}

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    // Operation generation + mutation throughput.
    g.bench_function("generate_and_mutate_case", |b| {
        let mut model = InputModel::new();
        model.sync(&NodeInventory {
            mgmt: vec![0, 1],
            storage: (2..10).collect(),
            volumes: (10..26).collect(),
            free_space: 1 << 38,
            files: (0..256).map(|i| format!("/f{i}")).collect(),
            dirs: vec!["/d".into()],
        });
        let mut rng = StdRng::seed_from_u64(9);
        let mut case = themis::gen::random_case(&mut model, &mut rng, 8);
        b.iter(|| {
            case = themis::mutate::mutate(&case, &mut model, &mut rng, 8);
            black_box(case.len())
        })
    });

    // Detector check throughput over a 10-node report.
    g.bench_function("detector_check", |b| {
        let mut adaptor = adaptors::SimAdaptor::new(Flavor::Hdfs, BugSet::None);
        use themis::DfsAdaptor;
        let report = adaptor.load_report();
        let d = Detector::with_threshold(0.25);
        b.iter(|| black_box(d.check(&report).len()))
    });

    // Simulator request throughput (create-heavy stream).
    g.bench_function("sim_execute_create", |b| {
        let mut sim = DfsSim::new(Flavor::CephFs, BugSet::New);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let _ = sim.execute(&DfsRequest::Create {
                path: format!("/bench{i}"),
                size: 8 * MIB,
            });
            if i.is_multiple_of(512) {
                sim.reset();
            }
            black_box(i)
        })
    });

    // Placement policy throughput.
    g.bench_function("placement_crush", |b| {
        use simdfs::placement::{CrushStraw2, PlacementPolicy, VolumeView};
        let views: Vec<VolumeView> = (0..16)
            .map(|i| VolumeView {
                volume: simdfs::VolumeId(i),
                node: simdfs::NodeId(i / 2),
                capacity: 1 << 34,
                used: (i as u64) << 28,
                online: true,
            })
            .collect();
        let p = CrushStraw2;
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(p.place(k, 8 * MIB, 3, &views).len())
        })
    });

    g.finish();
}

/// 16 synthetic volume views on 8 nodes, shared by the placement
/// before/after pairs.
fn micro_views() -> Vec<simdfs::placement::VolumeView> {
    (0..16)
        .map(|i| simdfs::placement::VolumeView {
            volume: simdfs::VolumeId(i),
            node: simdfs::NodeId(i / 2),
            capacity: 1 << 34,
            used: (i as u64) << 28,
            online: true,
        })
        .collect()
}

/// Before/after pairs for the hot paths this PR caches: per-call placement
/// through the uncached reference path versus the generation-keyed cache,
/// and a full 1h campaign with caching off versus on.
fn bench_perf(c: &mut Criterion) {
    use simdfs::placement::{CrushStraw2, DhtHashRing, PlacementCache, PlacementPolicy, VnodeRing};

    let mut g = c.benchmark_group("perf");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(4));

    let views = micro_views();
    macro_rules! placement_pair {
        ($name:literal, $policy:expr) => {
            g.bench_function(concat!($name, "_uncached"), |b| {
                let p = $policy;
                let mut k = 0u64;
                b.iter(|| {
                    k += 1;
                    black_box(p.place(k, 8 * MIB, 3, &views).len())
                })
            });
            g.bench_function(concat!($name, "_cached"), |b| {
                let p = $policy;
                let mut cache = PlacementCache::new();
                let mut k = 0u64;
                b.iter(|| {
                    k += 1;
                    black_box(p.place_cached(&mut cache, 1, k, 8 * MIB, 3, &views).len())
                })
            });
        };
    }
    placement_pair!("placement_dht", DhtHashRing);
    placement_pair!("placement_vnode", VnodeRing::default());
    placement_pair!("placement_crush", CrushStraw2);

    g.bench_function("campaign_1h_baseline", |b| {
        b.iter(|| {
            let r = run_eval_baseline(
                Flavor::GlusterFs,
                "Themis",
                BugSet::New,
                1,
                0xbe,
                0.25,
                VarianceWeights::default(),
            );
            black_box(r.campaign.iterations)
        })
    });
    g.bench_function("campaign_1h_cached", |b| {
        b.iter(|| {
            let r = run_eval(
                Flavor::GlusterFs,
                "Themis",
                BugSet::New,
                1,
                0xbe,
                0.25,
                VarianceWeights::default(),
            );
            black_box(r.campaign.iterations)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_tables, bench_micro, bench_perf);

fn main() {
    benches();

    // Fold the recorded measurements plus one-shot campaign / grid-scaling
    // timings into the machine-readable artifact at the repo root.
    let raw: Vec<bench::perf::RawMeasurement> = criterion::take_measurements()
        .into_iter()
        .map(|m| bench::perf::RawMeasurement {
            id: m.id,
            samples: m.samples,
            iters_per_sample: m.iters_per_sample,
            mean_s: m.mean_s,
            min_s: m.min_s,
            max_s: m.max_s,
        })
        .collect();
    let campaign = bench::perf::measure_campaign(Flavor::GlusterFs, 1, 0xbe, 3);
    let spec = bench::perf::scaling_spec(1);
    let grid = bench::perf::measure_grid_scaling(&spec, &[2, 4]);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_1.json");
    bench::perf::write_bench_json(&path, &raw, &campaign, &grid).expect("write BENCH_1.json");
    println!("wrote {}", path.display());
}
