//! Sampled placement under the grid executor: the candidate-sampling
//! policies hash their probe sequences from the placement key, so a
//! batched campaign on a sampled flavor must stay a pure function of its
//! seed no matter how many workers race over the campaign matrix or
//! which steal schedule they happen to take.

use bench::scale100k::run_batched_campaign;
use bench::steal_execute;
use proptest::prelude::*;
use simdfs::Flavor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same-seed sampled campaigns render byte-identical canonical
    /// reports at 1 (serial reference), 2, 4 and 8 workers, across all
    /// flavors (exercising both the power-of-d and stride-sampled-ring
    /// policies) and randomized topology sizes.
    #[test]
    fn sampled_campaigns_identical_across_worker_counts(
        seed in any::<u64>(),
        flavor_ix in 0usize..4,
        nodes in 80u32..240,
        batches in 2u64..6,
    ) {
        let flavor = Flavor::all()[flavor_ix];
        let seeds: Vec<u64> = (0..4u64)
            .map(|k| seed.wrapping_add(k.wrapping_mul(0x9e37_79b9)))
            .collect();
        let serial: Vec<String> = seeds
            .iter()
            .map(|&s| run_batched_campaign(flavor, nodes, s, batches, 48).report)
            .collect();
        for workers in [2usize, 4, 8] {
            let seeds = &seeds;
            let (reports, _stats) = steal_execute(seeds.len(), workers, |_w| {
                move |i: usize| run_batched_campaign(flavor, nodes, seeds[i], batches, 48).report
            });
            prop_assert_eq!(&reports, &serial, "workers={} diverged", workers);
        }
    }
}
