//! A campaign is a pure function of (flavor, strategy, seed): the grid
//! executor must return bit-identical results to serial execution no
//! matter how many workers race over the matrix — and the snapshot-fork
//! engine must be bit-identical to full replay on every flavor, including
//! under an active fault profile.

use bench::harness::run_eval_mode;
use bench::{run_cell, run_grid, GridSpec};
use simdfs::{BugSet, Flavor};
use themis::{ExecutionMode, VarianceWeights};

#[test]
fn grid_results_are_identical_to_serial_at_any_worker_count() {
    // The reference is the fresh-deploy serial path (`run_cell`): one
    // brand-new simulator per cell, no reuse, no pool. Every worker count
    // — including 1, which also reuses simulators via base-restore — must
    // reproduce it bit for bit, both structurally and through the
    // canonical JSON report.
    let base = GridSpec::new(
        vec![Flavor::GlusterFs, Flavor::Hdfs],
        vec!["Themis".into()],
        vec![0xbe, 7],
        BugSet::New,
        1,
    );
    let serial: Vec<_> = (0..base.cells()).map(|i| run_cell(&base, i)).collect();
    for workers in [1, 2, 4, 8] {
        let spec = GridSpec {
            workers,
            ..base.clone()
        };
        let out = run_grid(&spec);
        assert_eq!(out.cells.len(), serial.len());
        assert_eq!(
            out.worker_stats.iter().map(|s| s.cells_run).sum::<u64>() as usize,
            serial.len()
        );
        // Reuse must cap deploys at workers × flavors (and at least one
        // worker deployed something).
        let redeploys = out.redeploys();
        assert!(
            redeploys >= 1 && redeploys <= (workers * spec.flavors.len()) as u64,
            "workers={workers}: {redeploys} redeploys"
        );
        for (g, s) in out.cells.iter().zip(&serial) {
            assert_eq!(g.index, s.index);
            assert_eq!(
                g.eval.campaign,
                s.eval.campaign,
                "worker count {workers} changed cell {} ({} / {} / seed {})",
                g.index,
                g.flavor.name(),
                g.strategy,
                g.seed
            );
            assert_eq!(
                g.eval.campaign.to_json(),
                s.eval.campaign.to_json(),
                "canonical JSON diverged at workers={workers}, cell {}",
                g.index
            );
            assert_eq!(g.eval.found, s.eval.found);
            assert_eq!(g.eval.first_trigger_min, s.eval.first_trigger_min);
            assert_eq!(
                g.eval.false_positive_confirms,
                s.eval.false_positive_confirms
            );
        }
    }
}

#[test]
fn scaled_grid_cells_are_identical_to_serial_reference() {
    // The BENCH_4 configuration in miniature: heavy cells on a scaled
    // topology, reused per-worker sims vs. fresh-deploy serial reference.
    let base = GridSpec {
        scale_nodes: Some(60),
        ..GridSpec::new(
            vec![Flavor::Hdfs, Flavor::CephFs],
            vec!["Themis".into()],
            vec![0xbe, 21],
            BugSet::None,
            1,
        )
    };
    let serial: Vec<_> = (0..base.cells()).map(|i| run_cell(&base, i)).collect();
    for workers in [2, 4] {
        let out = run_grid(&GridSpec {
            workers,
            ..base.clone()
        });
        for (g, s) in out.cells.iter().zip(&serial) {
            assert_eq!(
                g.eval.campaign.to_json(),
                s.eval.campaign.to_json(),
                "scaled cell {} diverged at workers={workers}",
                g.index
            );
        }
    }
}

#[test]
fn fork_engine_is_bit_identical_to_full_replay_on_every_flavor() {
    // Every flavor, unfaulted and under an active fault profile: the
    // O(suffix) fork engine and the full-replay engine must produce the
    // same campaign down to iterations, ops, detections, confirmed
    // failures and their reproduction logs (CampaignResult's PartialEq
    // covers all of it, including the Arc'd logs by content).
    for flavor in Flavor::all() {
        for profile in ["none", "crash"] {
            let run = |mode: ExecutionMode| {
                run_eval_mode(
                    flavor,
                    "Themis",
                    BugSet::New,
                    1,
                    0xbe,
                    0.25,
                    VarianceWeights::default(),
                    profile,
                    mode,
                )
            };
            let fork = run(ExecutionMode::Fork);
            let full = run(ExecutionMode::FullReplay);
            assert_eq!(
                fork.campaign,
                full.campaign,
                "fork engine diverged from full replay on {} / {profile}",
                flavor.name()
            );
            assert_eq!(fork.found, full.found, "{} / {profile}", flavor.name());
            assert_eq!(
                fork.first_trigger_min,
                full.first_trigger_min,
                "{} / {profile}",
                flavor.name()
            );
            assert_eq!(
                fork.false_positive_confirms,
                full.false_positive_confirms,
                "{} / {profile}",
                flavor.name()
            );
            assert!(fork.campaign.iterations > 0, "{}", flavor.name());
        }
    }
}
