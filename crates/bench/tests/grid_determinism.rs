//! A campaign is a pure function of (flavor, strategy, seed): the grid
//! executor must return bit-identical results to serial execution no
//! matter how many workers race over the matrix — and the snapshot-fork
//! engine must be bit-identical to full replay on every flavor, including
//! under an active fault profile.

use bench::harness::run_eval_mode;
use bench::{run_cell, run_grid, GridSpec};
use simdfs::{BugSet, Flavor};
use themis::{ExecutionMode, VarianceWeights};

#[test]
fn grid_results_are_identical_to_serial_at_any_worker_count() {
    let base = GridSpec::new(
        vec![Flavor::GlusterFs, Flavor::Hdfs],
        vec!["Themis".into()],
        vec![0xbe, 7],
        BugSet::New,
        1,
    );
    let serial: Vec<_> = (0..base.cells()).map(|i| run_cell(&base, i)).collect();
    for workers in [2, 4] {
        let spec = GridSpec {
            workers,
            ..base.clone()
        };
        let out = run_grid(&spec);
        assert_eq!(out.cells.len(), serial.len());
        assert_eq!(
            out.per_worker_completed.iter().sum::<u64>() as usize,
            serial.len()
        );
        for (g, s) in out.cells.iter().zip(&serial) {
            assert_eq!(g.index, s.index);
            assert_eq!(
                g.eval.campaign,
                s.eval.campaign,
                "worker count {workers} changed cell {} ({} / {} / seed {})",
                g.index,
                g.flavor.name(),
                g.strategy,
                g.seed
            );
            assert_eq!(g.eval.found, s.eval.found);
            assert_eq!(g.eval.first_trigger_min, s.eval.first_trigger_min);
            assert_eq!(
                g.eval.false_positive_confirms,
                s.eval.false_positive_confirms
            );
        }
    }
}

#[test]
fn fork_engine_is_bit_identical_to_full_replay_on_every_flavor() {
    // Every flavor, unfaulted and under an active fault profile: the
    // O(suffix) fork engine and the full-replay engine must produce the
    // same campaign down to iterations, ops, detections, confirmed
    // failures and their reproduction logs (CampaignResult's PartialEq
    // covers all of it, including the Arc'd logs by content).
    for flavor in Flavor::all() {
        for profile in ["none", "crash"] {
            let run = |mode: ExecutionMode| {
                run_eval_mode(
                    flavor,
                    "Themis",
                    BugSet::New,
                    1,
                    0xbe,
                    0.25,
                    VarianceWeights::default(),
                    profile,
                    mode,
                )
            };
            let fork = run(ExecutionMode::Fork);
            let full = run(ExecutionMode::FullReplay);
            assert_eq!(
                fork.campaign,
                full.campaign,
                "fork engine diverged from full replay on {} / {profile}",
                flavor.name()
            );
            assert_eq!(fork.found, full.found, "{} / {profile}", flavor.name());
            assert_eq!(
                fork.first_trigger_min,
                full.first_trigger_min,
                "{} / {profile}",
                flavor.name()
            );
            assert_eq!(
                fork.false_positive_confirms,
                full.false_positive_confirms,
                "{} / {profile}",
                flavor.name()
            );
            assert!(fork.campaign.iterations > 0, "{}", flavor.name());
        }
    }
}
