//! A campaign is a pure function of (flavor, strategy, seed): the grid
//! executor must return bit-identical results to serial execution no
//! matter how many workers race over the matrix.

use bench::{run_cell, run_grid, GridSpec};
use simdfs::{BugSet, Flavor};

#[test]
fn grid_results_are_identical_to_serial_at_any_worker_count() {
    let base = GridSpec::new(
        vec![Flavor::GlusterFs, Flavor::Hdfs],
        vec!["Themis".into()],
        vec![0xbe, 7],
        BugSet::New,
        1,
    );
    let serial: Vec<_> = (0..base.cells()).map(|i| run_cell(&base, i)).collect();
    for workers in [2, 4] {
        let spec = GridSpec {
            workers,
            ..base.clone()
        };
        let out = run_grid(&spec);
        assert_eq!(out.cells.len(), serial.len());
        assert_eq!(
            out.per_worker_completed.iter().sum::<u64>() as usize,
            serial.len()
        );
        for (g, s) in out.cells.iter().zip(&serial) {
            assert_eq!(g.index, s.index);
            assert_eq!(
                g.eval.campaign,
                s.eval.campaign,
                "worker count {workers} changed cell {} ({} / {} / seed {})",
                g.index,
                g.flavor.name(),
                g.strategy,
                g.seed
            );
            assert_eq!(g.eval.found, s.eval.found);
            assert_eq!(g.eval.first_trigger_min, s.eval.first_trigger_min);
            assert_eq!(
                g.eval.false_positive_confirms,
                s.eval.false_positive_confirms
            );
        }
    }
}
