//! Fault-injection grid acceptance tests.
//!
//! Two properties gate the fault subsystem:
//!  1. Determinism — a fault-profile campaign is a pure function of its
//!     grid coordinates, so parallel grid execution is bit-identical to
//!     the serial reference and to a repeat run with the same seed.
//!  2. Effect — crash, slow-node and lossy-migration faults demonstrably
//!     change detector outcomes relative to the fault-free baseline cell
//!     (no seeded DFS bugs, so the fault is the only possible cause).

use bench::{run_cell, run_grid, GridCell, GridSpec};
use simdfs::{BugSet, Flavor};
use themis::ImbalanceKind;

const SEED: u64 = 0x7e15;

fn fault_spec(workers: usize) -> GridSpec {
    GridSpec {
        workers,
        fault_profiles: vec!["none".into(), "crash".into(), "slow".into(), "lossy".into()],
        ..GridSpec::new(
            vec![Flavor::Hdfs, Flavor::CephFs],
            vec!["Themis".into()],
            vec![SEED],
            BugSet::None,
            2,
        )
    }
}

fn cell<'a>(cells: &'a [GridCell], flavor: Flavor, profile: &str) -> &'a GridCell {
    cells
        .iter()
        .find(|c| c.flavor == flavor && c.fault_profile == profile)
        .expect("cell present")
}

fn confirmed_kinds(c: &GridCell) -> Vec<ImbalanceKind> {
    c.eval.campaign.confirmed.iter().map(|f| f.kind).collect()
}

#[test]
fn fault_grid_is_bit_identical_across_runs_and_workers() {
    let base = fault_spec(1);
    let serial: Vec<_> = (0..base.cells()).map(|i| run_cell(&base, i)).collect();

    // Same seed, same plan: a second serial run reproduces every cell
    // bit-for-bit (CampaignResult is PartialEq over the full outcome,
    // including the coverage trace and every confirmed failure).
    for (i, first) in serial.iter().enumerate() {
        let again = run_cell(&base, i);
        assert_eq!(
            first.eval.campaign,
            again.eval.campaign,
            "cell {i} ({} / {}) not reproducible",
            first.flavor.name(),
            first.fault_profile
        );
        assert_eq!(first.eval.bytes_lost, again.eval.bytes_lost);
    }

    // Parallel execution matches the serial reference.
    let out = run_grid(&fault_spec(4));
    assert_eq!(out.cells.len(), serial.len());
    for (g, s) in out.cells.iter().zip(&serial) {
        assert_eq!(g.index, s.index);
        assert_eq!(g.fault_profile, s.fault_profile);
        assert_eq!(
            g.eval.campaign,
            s.eval.campaign,
            "parallel run changed cell {} ({} / {})",
            g.index,
            g.flavor.name(),
            g.fault_profile
        );
        assert_eq!(g.eval.bytes_lost, s.eval.bytes_lost);
    }
}

#[test]
fn faults_change_detector_outcomes_vs_baseline() {
    let spec = fault_spec(0);
    let cells = run_grid(&spec).cells;

    // Crash: the crashed storage node must surface as a confirmed Crash
    // failure — impossible in the fault-free cell.
    let baseline = cell(&cells, Flavor::Hdfs, "none");
    let crash = cell(&cells, Flavor::Hdfs, "crash");
    assert!(
        confirmed_kinds(crash).contains(&ImbalanceKind::Crash),
        "crash profile must confirm a Crash failure, got {:?}",
        confirmed_kinds(crash)
    );
    assert!(!confirmed_kinds(baseline).contains(&ImbalanceKind::Crash));
    assert_ne!(crash.eval.campaign, baseline.eval.campaign);

    // Slow management node: factor-6 latency/CPU skew on one of HDFS's
    // two management nodes clears the CPU ratio and load gates.
    let slow = cell(&cells, Flavor::Hdfs, "slow");
    assert!(
        confirmed_kinds(slow).contains(&ImbalanceKind::Cpu),
        "slow profile must confirm a Cpu imbalance, got {:?}",
        confirmed_kinds(slow)
    );
    assert_ne!(slow.eval.campaign, baseline.eval.campaign);

    // Lossy migration: CephFS rebalances continuously, so a 40% loss rate
    // sheds far more bytes than the fault-free cell (which only loses
    // replicas displaced by fuzzer node removals that found no new home).
    let ceph_base = cell(&cells, Flavor::CephFs, "none");
    let lossy = cell(&cells, Flavor::CephFs, "lossy");
    assert!(
        lossy.eval.bytes_lost > 2 * ceph_base.eval.bytes_lost,
        "lossy profile must shed migration bytes well beyond baseline \
         ({} vs {})",
        lossy.eval.bytes_lost,
        ceph_base.eval.bytes_lost
    );
    assert_ne!(lossy.eval.campaign, ceph_base.eval.campaign);
}
