//! Property tests of the work-stealing executor: whatever the steal
//! schedule — forced by random, wildly uneven task costs and random
//! worker counts — results stay a pure function of the task id, every
//! task runs exactly once, and the per-worker counters add up.

use bench::grid::{steal_execute, WorkerStats};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Burns deterministic CPU proportional to `cost` and returns a value
/// derived from it (so the work cannot be optimized away).
fn spin(cost: u64) -> u64 {
    let mut acc = cost;
    for k in 0..cost * 20_000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    acc
}

fn checked_run(costs: &[u64], workers: usize) -> (Vec<u64>, Vec<WorkerStats>) {
    let n = costs.len();
    let executions: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let executions = &executions;
    let (results, stats) = steal_execute(n, workers, |_w| {
        move |i: usize| {
            executions[i].fetch_add(1, Ordering::Relaxed);
            // The "result" folds the task id with work derived from its
            // cost; any double execution, lost task, or id/result mixup
            // changes the output.
            (i as u64) ^ spin(costs[i]).wrapping_shl(8)
        }
    });
    for (i, e) in executions.iter().enumerate() {
        assert_eq!(e.load(Ordering::Relaxed), 1, "task {i} execution count");
    }
    (results, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Steal-schedule perturbation never changes results: a serial run
    /// and parallel runs at a random worker count over tasks with random
    /// heavily-skewed costs produce identical outputs, and the counters
    /// account for every cell exactly once.
    #[test]
    fn perturbed_schedules_never_change_results(
        seed in any::<u64>(),
        workers in 2usize..=8,
        n in 1usize..=48,
    ) {
        // Skewed cost pattern: most tasks are free, a few are ~100x
        // heavier, placed by the seed. This forces real steals — heavy
        // tasks strand their home worker's deque.
        let costs: Vec<u64> = (0..n)
            .map(|i| {
                let h = seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15);
                if h % 5 == 0 { 50 + h % 100 } else { h % 3 }
            })
            .collect();
        let (serial, serial_stats) = checked_run(&costs, 1);
        prop_assert_eq!(serial_stats.len(), 1);
        prop_assert_eq!(serial_stats[0].cells_stolen, 0);
        let (parallel, stats) = checked_run(&costs, workers);
        prop_assert_eq!(&parallel, &serial, "workers={} diverged", workers);
        prop_assert_eq!(stats.len(), workers);
        let run: u64 = stats.iter().map(|s| s.cells_run).sum();
        prop_assert_eq!(run, n as u64);
        let stolen: u64 = stats.iter().map(|s| s.cells_stolen).sum();
        prop_assert!(stolen <= n as u64);
    }
}

#[test]
fn stats_len_matches_worker_count_even_with_excess_workers() {
    // More workers than tasks: everyone spins up, most find nothing.
    let (results, stats) = steal_execute(2, 6, |_w| |i: usize| i * 10);
    assert_eq!(results, vec![0, 10]);
    assert_eq!(stats.len(), 6);
    assert_eq!(stats.iter().map(|s| s.cells_run).sum::<u64>(), 2);
}
