//! One-shot performance measurements behind the `BENCH_1.json` and
//! `BENCH_2.json` artifacts: campaign throughput with the cached placement
//! hot path versus the uncached baseline, the snapshot-fork engine versus
//! full replay and versus a redeploy-per-iteration baseline, fork/restore
//! micro-costs, and grid-executor scaling across worker counts.
//!
//! The Criterion bench target (`benches/paper_artifacts.rs`) and the
//! `repro perf` subcommand both funnel through this module so the artifact
//! has one schema regardless of which entry point produced it.

use crate::grid::{run_cell, run_grid, GridSpec};
use crate::harness::{run_eval, run_eval_baseline, run_eval_mode, run_eval_redeploy};
use simdfs::{BugSet, DfsRequest, DfsSim, Flavor, MIB};
use std::time::Instant;
use themis::{ExecutionMode, VarianceWeights};

/// Mirror of the criterion shim's measurement record, so the JSON writer
/// does not need a criterion dependency in the library.
#[derive(Debug, Clone)]
pub struct RawMeasurement {
    /// `group/function` identifier.
    pub id: String,
    /// Samples taken.
    pub samples: u64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Slowest sample, seconds per iteration.
    pub max_s: f64,
}

/// Cached-vs-baseline timing of one full campaign.
#[derive(Debug, Clone)]
pub struct CampaignPerf {
    /// Target flavor.
    pub flavor: Flavor,
    /// Virtual budget in hours.
    pub hours: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Timed repetitions per variant (best run is reported).
    pub repeats: u32,
    /// Fuzzing iterations the campaign completed (identical across
    /// variants; placement caching never changes behavior).
    pub iterations: u64,
    /// Operations sent (identical across variants).
    pub ops_sent: u64,
    /// Best wall seconds per campaign with the cached hot path.
    pub cached_s: f64,
    /// Best wall seconds per campaign through the uncached reference path.
    pub baseline_s: f64,
    /// Whether cached and baseline campaigns produced identical results.
    pub results_match: bool,
}

impl CampaignPerf {
    /// Fuzzing iterations per wall second, cached hot path.
    pub fn cached_iters_per_sec(&self) -> f64 {
        self.iterations as f64 / self.cached_s
    }

    /// Fuzzing iterations per wall second, uncached baseline.
    pub fn baseline_iters_per_sec(&self) -> f64 {
        self.iterations as f64 / self.baseline_s
    }

    /// Operations per wall second, cached hot path.
    pub fn cached_ops_per_sec(&self) -> f64 {
        self.ops_sent as f64 / self.cached_s
    }

    /// Cached-over-baseline throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.cached_s
    }
}

/// Fork-engine vs. full-replay vs. redeploy-baseline timing of one
/// clean-slate campaign.
///
/// The fork and full-replay runs are the *same* campaign (bit-identical
/// results, checked into `results_match`); the redeploy run re-establishes
/// initial state through `reset()` each iteration — the only option before
/// the snapshot engine existed — and lives on a different virtual-time
/// axis (a redeploy charges one virtual minute), so it is compared by
/// wall-clock throughput rather than per-campaign results.
#[derive(Debug, Clone)]
pub struct ForkCampaignPerf {
    /// Target flavor.
    pub flavor: Flavor,
    /// Fault profile injected into every variant ("none" when unfaulted).
    pub fault_profile: String,
    /// Virtual budget in hours.
    pub hours: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Timed repetitions per variant (best run is reported).
    pub repeats: u32,
    /// Iterations of the snapshot-engine campaign (fork == full replay).
    pub iterations: u64,
    /// Operations sent by the snapshot-engine campaign.
    pub ops_sent: u64,
    /// Iterations of the redeploy-baseline campaign.
    pub redeploy_iterations: u64,
    /// Best wall seconds with the fork engine (O(suffix) resume).
    pub fork_s: f64,
    /// Best wall seconds with full replay over the snapshot base.
    pub replay_s: f64,
    /// Best wall seconds with the redeploy-per-iteration fallback.
    pub redeploy_s: f64,
    /// Whether the fork and full-replay campaigns produced identical
    /// results (iterations, ops, detections, confirmed failures, logs).
    pub results_match: bool,
}

impl ForkCampaignPerf {
    /// Fuzzing iterations per wall second with the fork engine.
    pub fn fork_iters_per_sec(&self) -> f64 {
        self.iterations as f64 / self.fork_s
    }

    /// Fuzzing iterations per wall second with full replay.
    pub fn replay_iters_per_sec(&self) -> f64 {
        self.iterations as f64 / self.replay_s
    }

    /// Fuzzing iterations per wall second with the redeploy fallback.
    pub fn redeploy_iters_per_sec(&self) -> f64 {
        self.redeploy_iterations as f64 / self.redeploy_s
    }

    /// Fork-over-full-replay wall ratio (same campaign, same iterations).
    pub fn speedup_vs_replay(&self) -> f64 {
        self.replay_s / self.fork_s
    }

    /// Fork-over-redeploy throughput ratio (iterations per wall second;
    /// the acceptance criterion's "vs the PR-1 baseline" number).
    pub fn speedup_vs_redeploy(&self) -> f64 {
        self.fork_iters_per_sec() / self.redeploy_iters_per_sec()
    }
}

/// Times the three clean-slate variants `repeats` times each and keeps the
/// best run of each, double-checking fork-vs-replay bit-identity.
pub fn measure_campaign_modes(
    flavor: Flavor,
    hours: u64,
    seed: u64,
    repeats: u32,
    fault_profile: &str,
) -> ForkCampaignPerf {
    let repeats = repeats.max(1);
    let mut fork_s = f64::INFINITY;
    let mut replay_s = f64::INFINITY;
    let mut redeploy_s = f64::INFINITY;
    let mut fork = None;
    let mut replay = None;
    let mut redeploy = None;
    let weights = VarianceWeights::default();
    for _ in 0..repeats {
        let start = Instant::now();
        let r = run_eval_mode(
            flavor,
            "Themis",
            BugSet::New,
            hours,
            seed,
            0.25,
            weights,
            fault_profile,
            ExecutionMode::Fork,
        );
        fork_s = fork_s.min(start.elapsed().as_secs_f64());
        fork = Some(r);

        let start = Instant::now();
        let r = run_eval_mode(
            flavor,
            "Themis",
            BugSet::New,
            hours,
            seed,
            0.25,
            weights,
            fault_profile,
            ExecutionMode::FullReplay,
        );
        replay_s = replay_s.min(start.elapsed().as_secs_f64());
        replay = Some(r);

        let start = Instant::now();
        let r = run_eval_redeploy(
            flavor,
            "Themis",
            BugSet::New,
            hours,
            seed,
            0.25,
            weights,
            fault_profile,
        );
        redeploy_s = redeploy_s.min(start.elapsed().as_secs_f64());
        redeploy = Some(r);
    }
    let fork = fork.expect("repeats >= 1");
    let replay = replay.expect("repeats >= 1");
    let redeploy = redeploy.expect("repeats >= 1");
    ForkCampaignPerf {
        flavor,
        fault_profile: fault_profile.to_string(),
        hours,
        seed,
        repeats,
        iterations: fork.campaign.iterations,
        ops_sent: fork.campaign.ops_sent,
        redeploy_iterations: redeploy.campaign.iterations,
        fork_s,
        replay_s,
        redeploy_s,
        results_match: fork.campaign == replay.campaign,
    }
}

/// Micro-costs behind the fork engine, as raw measurement records: one
/// full pristine `reset()` (what the redeploy fallback pays per
/// iteration), one fork mark on a journaling sim, and one
/// execute-8-ops-then-restore round trip (what the fork engine pays to
/// abandon a divergent suffix).
pub fn measure_fork_restore() -> Vec<RawMeasurement> {
    let mut out = Vec::new();

    let mut sim = DfsSim::new(Flavor::GlusterFs, BugSet::New);
    out.push(sample("perf/full_reset", 10, 20, || sim.reset()));

    let mut sim = DfsSim::new(Flavor::GlusterFs, BugSet::New);
    let base = sim.fork();
    out.push(sample("perf/fork_mark", 10, 100, || {
        let id = sim.fork();
        sim.release(id);
    }));
    out.push(sample("perf/fork_restore_suffix8", 10, 50, || {
        for k in 0..8 {
            let _ = sim.execute(&DfsRequest::Create {
                path: format!("/suffix{k}"),
                size: 4 * MIB,
            });
        }
        assert!(sim.restore(base), "base mark must stay valid");
    }));
    out
}

/// Times `f` and reports seconds-per-iteration statistics over
/// `samples` batches of `iters` calls each.
pub(crate) fn sample(id: &str, samples: u64, iters: u64, mut f: impl FnMut()) -> RawMeasurement {
    let mut mean_acc = 0.0;
    let mut min_s = f64::INFINITY;
    let mut max_s = 0.0f64;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = start.elapsed().as_secs_f64() / iters as f64;
        mean_acc += per;
        min_s = min_s.min(per);
        max_s = max_s.max(per);
    }
    RawMeasurement {
        id: id.into(),
        samples,
        iters_per_sample: iters,
        mean_s: mean_acc / samples as f64,
        min_s,
        max_s,
    }
}

/// Host CPU topology, recorded in every BENCH_*.json so a CI scaling gate
/// can distinguish "no speedup" from "single-core host" and skip honestly.
#[derive(Debug, Clone, Copy)]
pub struct HostTopology {
    /// What `std::thread::available_parallelism()` reported (affinity- and
    /// cgroup-aware: the parallelism actually available to this process).
    pub available_parallelism: usize,
    /// Logical CPUs the OS exposes (`/proc/cpuinfo` processor count where
    /// readable; falls back to `available_parallelism`).
    pub logical_cores: usize,
}

impl HostTopology {
    /// Probes the current host.
    pub fn detect() -> Self {
        let ap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let logical = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
            .filter(|&n| n > 0)
            .unwrap_or(ap);
        HostTopology {
            available_parallelism: ap,
            logical_cores: logical,
        }
    }

    /// Whether this host can exhibit real parallel speedup at all.
    pub fn multi_core(&self) -> bool {
        self.available_parallelism > 1
    }

    /// The topology as a JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"available_parallelism\": {}, \"logical_cores\": {}}}",
            self.available_parallelism, self.logical_cores
        )
    }
}

/// Wall-clock of the same campaign matrix at several worker counts.
#[derive(Debug, Clone)]
pub struct GridScaling {
    /// Cells in the matrix (flavors x strategies x seeds).
    pub cells: usize,
    /// `(workers, wall_seconds)` per measured run.
    pub runs: Vec<(usize, f64)>,
    /// Whether every measured run (including the one-worker pass, which
    /// reuses simulators like the rest) matched the fresh-deploy serial
    /// reference cell by cell.
    pub identical_to_serial: bool,
}

impl GridScaling {
    /// Wall seconds for the given worker count, if measured.
    pub fn seconds_at(&self, workers: usize) -> Option<f64> {
        self.runs
            .iter()
            .find(|(w, _)| *w == workers)
            .map(|(_, s)| *s)
    }

    /// Serial-over-parallel speedup for the given worker count.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        Some(self.seconds_at(1)? / self.seconds_at(workers)?)
    }
}

/// Times one campaign `repeats` times per variant and keeps the best run
/// of each, double-checking that both variants compute the same result.
pub fn measure_campaign(flavor: Flavor, hours: u64, seed: u64, repeats: u32) -> CampaignPerf {
    let repeats = repeats.max(1);
    let mut cached_s = f64::INFINITY;
    let mut baseline_s = f64::INFINITY;
    let mut cached = None;
    let mut baseline = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = run_eval(
            flavor,
            "Themis",
            BugSet::New,
            hours,
            seed,
            0.25,
            VarianceWeights::default(),
        );
        cached_s = cached_s.min(start.elapsed().as_secs_f64());
        cached = Some(r);

        let start = Instant::now();
        let r = run_eval_baseline(
            flavor,
            "Themis",
            BugSet::New,
            hours,
            seed,
            0.25,
            VarianceWeights::default(),
        );
        baseline_s = baseline_s.min(start.elapsed().as_secs_f64());
        baseline = Some(r);
    }
    let cached = cached.expect("repeats >= 1");
    let baseline = baseline.expect("repeats >= 1");
    CampaignPerf {
        flavor,
        hours,
        seed,
        repeats,
        iterations: cached.campaign.iterations,
        ops_sent: cached.campaign.ops_sent,
        cached_s,
        baseline_s,
        results_match: cached.campaign == baseline.campaign,
    }
}

/// The acceptance matrix: every flavor x {Themis, Themis-} x eight seeds
/// = 64 cells.
pub fn scaling_spec(hours: u64) -> GridSpec {
    GridSpec::new(
        Flavor::all().to_vec(),
        vec!["Themis".into(), "Themis-".into()],
        vec![0xbe, 7, 21, 42, 5, 11, 17, 99],
        BugSet::New,
        hours,
    )
}

/// Runs `spec` through the work-stealing executor once per worker count
/// (always including 1, the denominator of every speedup), timing each
/// pass, and checks every pass — the one-worker run included, since it
/// reuses simulators like the rest — against an untimed fresh-deploy
/// serial reference. Speedups therefore measure pure parallel scaling,
/// not deploy-elision, while the identity bit still pins the reuse
/// machinery to the reference semantics.
pub fn measure_grid_scaling(spec: &GridSpec, worker_counts: &[usize]) -> GridScaling {
    let reference: Vec<_> = (0..spec.cells()).map(|i| run_cell(spec, i)).collect();
    let mut runs = Vec::new();
    let mut identical = true;
    for workers in std::iter::once(1usize).chain(worker_counts.iter().copied().filter(|&w| w > 1)) {
        let spec = GridSpec {
            workers,
            ..spec.clone()
        };
        let start = Instant::now();
        let out = run_grid(&spec);
        runs.push((workers, start.elapsed().as_secs_f64()));
        identical &= out.cells.len() == reference.len()
            && out
                .cells
                .iter()
                .zip(&reference)
                .all(|(g, s)| g.index == s.index && g.eval.campaign == s.eval.campaign);
    }
    GridScaling {
        cells: spec.cells(),
        runs,
        identical_to_serial: identical,
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".into()
    }
}

/// Renders the full artifact. Hand-rolled JSON: the workspace's serde shim
/// is a no-op, so this is the one place structure meets bytes.
pub fn bench_json(raw: &[RawMeasurement], campaign: &CampaignPerf, grid: &GridScaling) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"themis-bench-v1\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!(
        "  \"host\": {},\n",
        HostTopology::detect().to_json()
    ));

    out.push_str("  \"campaign\": {\n");
    out.push_str(&format!(
        "    \"flavor\": \"{}\",\n",
        campaign.flavor.name()
    ));
    out.push_str(&format!("    \"hours\": {},\n", campaign.hours));
    out.push_str(&format!("    \"seed\": {},\n", campaign.seed));
    out.push_str(&format!("    \"repeats\": {},\n", campaign.repeats));
    out.push_str(&format!("    \"iterations\": {},\n", campaign.iterations));
    out.push_str(&format!("    \"ops_sent\": {},\n", campaign.ops_sent));
    out.push_str(&format!(
        "    \"cached_s\": {},\n",
        json_f64(campaign.cached_s)
    ));
    out.push_str(&format!(
        "    \"baseline_s\": {},\n",
        json_f64(campaign.baseline_s)
    ));
    out.push_str(&format!(
        "    \"cached_iters_per_sec\": {},\n",
        json_f64(campaign.cached_iters_per_sec())
    ));
    out.push_str(&format!(
        "    \"baseline_iters_per_sec\": {},\n",
        json_f64(campaign.baseline_iters_per_sec())
    ));
    out.push_str(&format!(
        "    \"cached_ops_per_sec\": {},\n",
        json_f64(campaign.cached_ops_per_sec())
    ));
    out.push_str(&format!(
        "    \"speedup\": {},\n",
        json_f64(campaign.speedup())
    ));
    out.push_str(&format!(
        "    \"results_match\": {}\n",
        campaign.results_match
    ));
    out.push_str("  },\n");

    out.push_str("  \"grid\": {\n");
    out.push_str(&format!("    \"cells\": {},\n", grid.cells));
    out.push_str(&format!(
        "    \"identical_to_serial\": {},\n",
        grid.identical_to_serial
    ));
    out.push_str("    \"runs\": [");
    for (i, (workers, secs)) in grid.runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"workers\": {workers}, \"wall_s\": {}, \"speedup\": {}}}",
            json_f64(*secs),
            json_f64(grid.speedup_at(*workers).unwrap_or(f64::NAN)),
        ));
    }
    out.push_str("]\n  },\n");

    out.push_str("  \"measurements\": [\n");
    push_measurements(&mut out, raw, "    ");
    out.push_str("  ]\n}\n");
    out
}

/// Writes the artifact to `path`.
pub fn write_bench_json(
    path: &std::path::Path,
    raw: &[RawMeasurement],
    campaign: &CampaignPerf,
    grid: &GridScaling,
) -> std::io::Result<()> {
    std::fs::write(path, bench_json(raw, campaign, grid))
}

pub(crate) fn push_measurements(out: &mut String, raw: &[RawMeasurement], indent: &str) {
    for (i, m) in raw.iter().enumerate() {
        out.push_str(indent);
        out.push_str("{\"id\": ");
        push_json_str(out, &m.id);
        out.push_str(&format!(
            ", \"samples\": {}, \"iters_per_sample\": {}, \"mean_s\": {}, \"min_s\": {}, \"max_s\": {}}}{}\n",
            m.samples,
            m.iters_per_sample,
            json_f64(m.mean_s),
            json_f64(m.min_s),
            json_f64(m.max_s),
            if i + 1 < raw.len() { "," } else { "" },
        ));
    }
}

/// Renders the snapshot-fork engine artifact (`BENCH_2.json`).
pub fn bench2_json(
    cores: usize,
    fork_restore: &[RawMeasurement],
    campaigns: &[ForkCampaignPerf],
    grid: &GridScaling,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"themis-bench-v2\",\n");
    out.push_str("  \"schema_version\": 2,\n");
    let topo = HostTopology::detect();
    out.push_str(&format!(
        "  \"host\": {{\"cores\": {cores}, \"available_parallelism\": {}, \"logical_cores\": {}}},\n",
        topo.available_parallelism, topo.logical_cores
    ));

    out.push_str("  \"fork_restore\": [\n");
    push_measurements(&mut out, fork_restore, "    ");
    out.push_str("  ],\n");

    out.push_str("  \"campaign_fork_vs_replay\": [\n");
    for (i, c) in campaigns.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"flavor\": \"{}\",\n", c.flavor.name()));
        out.push_str("      \"fault_profile\": ");
        push_json_str(&mut out, &c.fault_profile);
        out.push_str(",\n");
        out.push_str(&format!("      \"hours\": {},\n", c.hours));
        out.push_str(&format!("      \"seed\": {},\n", c.seed));
        out.push_str(&format!("      \"repeats\": {},\n", c.repeats));
        out.push_str(&format!("      \"iterations\": {},\n", c.iterations));
        out.push_str(&format!("      \"ops_sent\": {},\n", c.ops_sent));
        out.push_str(&format!(
            "      \"redeploy_iterations\": {},\n",
            c.redeploy_iterations
        ));
        out.push_str(&format!("      \"fork_s\": {},\n", json_f64(c.fork_s)));
        out.push_str(&format!("      \"replay_s\": {},\n", json_f64(c.replay_s)));
        out.push_str(&format!(
            "      \"redeploy_s\": {},\n",
            json_f64(c.redeploy_s)
        ));
        out.push_str(&format!(
            "      \"fork_iters_per_sec\": {},\n",
            json_f64(c.fork_iters_per_sec())
        ));
        out.push_str(&format!(
            "      \"replay_iters_per_sec\": {},\n",
            json_f64(c.replay_iters_per_sec())
        ));
        out.push_str(&format!(
            "      \"redeploy_iters_per_sec\": {},\n",
            json_f64(c.redeploy_iters_per_sec())
        ));
        out.push_str(&format!(
            "      \"speedup_vs_replay\": {},\n",
            json_f64(c.speedup_vs_replay())
        ));
        out.push_str(&format!(
            "      \"speedup_vs_redeploy\": {},\n",
            json_f64(c.speedup_vs_redeploy())
        ));
        out.push_str(&format!("      \"results_match\": {}\n", c.results_match));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < campaigns.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"grid\": {\n");
    out.push_str(&format!("    \"cells\": {},\n", grid.cells));
    out.push_str(&format!(
        "    \"identical_to_serial\": {},\n",
        grid.identical_to_serial
    ));
    out.push_str("    \"runs\": [");
    for (i, (workers, secs)) in grid.runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"workers\": {workers}, \"wall_s\": {}, \"speedup\": {}}}",
            json_f64(*secs),
            json_f64(grid.speedup_at(*workers).unwrap_or(f64::NAN)),
        ));
    }
    out.push_str("]\n  }\n}\n");
    out
}

/// Writes the snapshot-fork artifact to `path`.
pub fn write_bench2_json(
    path: &std::path::Path,
    cores: usize,
    fork_restore: &[RawMeasurement],
    campaigns: &[ForkCampaignPerf],
    grid: &GridScaling,
) -> std::io::Result<()> {
    std::fs::write(path, bench2_json(cores, fork_restore, campaigns, grid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_perf_variants_agree_and_cached_is_not_slower() {
        let p = measure_campaign(Flavor::GlusterFs, 1, 0xbe, 1);
        assert!(p.results_match, "cached and baseline campaigns diverged");
        assert!(p.iterations > 0 && p.ops_sent > 0);
        assert!(p.cached_s > 0.0 && p.baseline_s > 0.0);
    }

    #[test]
    fn bench_json_is_well_formed_enough() {
        let campaign = CampaignPerf {
            flavor: Flavor::Hdfs,
            hours: 1,
            seed: 7,
            repeats: 1,
            iterations: 100,
            ops_sent: 1000,
            cached_s: 0.5,
            baseline_s: 1.5,
            results_match: true,
        };
        let grid = GridScaling {
            cells: 4,
            runs: vec![(1, 4.0), (4, 1.1)],
            identical_to_serial: true,
        };
        let raw = vec![RawMeasurement {
            id: "micro/placement \"x\"".into(),
            samples: 3,
            iters_per_sample: 10,
            mean_s: 1e-6,
            min_s: 9e-7,
            max_s: 2e-6,
        }];
        let j = bench_json(&raw, &campaign, &grid);
        assert!(j.contains("\"schema\": \"themis-bench-v1\""));
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"host\": {\"available_parallelism\": "));
        assert!(j.contains("\"speedup\": 3.0"));
        assert!(j.contains("\\\"x\\\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!((campaign.speedup() - 3.0).abs() < 1e-9);
        assert_eq!(grid.speedup_at(4), Some(4.0 / 1.1));
    }

    #[test]
    fn fork_vs_replay_modes_agree_bit_for_bit() {
        let p = measure_campaign_modes(Flavor::GlusterFs, 1, 0xbe, 1, "none");
        assert!(p.results_match, "fork and full-replay campaigns diverged");
        assert!(p.iterations > 0 && p.ops_sent > 0);
        assert!(p.redeploy_iterations > 0);
        assert!(p.fork_s > 0.0 && p.replay_s > 0.0 && p.redeploy_s > 0.0);
    }

    #[test]
    fn fork_restore_micro_measurements_cover_the_primitive() {
        let ms = measure_fork_restore();
        let ids: Vec<&str> = ms.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "perf/full_reset",
                "perf/fork_mark",
                "perf/fork_restore_suffix8"
            ]
        );
        for m in &ms {
            assert!(m.mean_s > 0.0 && m.min_s <= m.mean_s && m.mean_s <= m.max_s);
        }
    }

    #[test]
    fn scaling_spec_is_at_least_64_cells() {
        assert!(scaling_spec(1).cells() >= 64);
    }

    #[test]
    fn host_topology_probe_is_sane() {
        let t = HostTopology::detect();
        assert!(t.available_parallelism >= 1);
        assert!(t.logical_cores >= 1);
        let j = t.to_json();
        assert!(j.starts_with("{\"available_parallelism\": "));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn bench2_json_is_well_formed_enough() {
        let c = ForkCampaignPerf {
            flavor: Flavor::CephFs,
            fault_profile: "crash".into(),
            hours: 1,
            seed: 7,
            repeats: 2,
            iterations: 100,
            ops_sent: 1000,
            redeploy_iterations: 40,
            fork_s: 0.1,
            replay_s: 0.5,
            redeploy_s: 0.8,
            results_match: true,
        };
        let grid = GridScaling {
            cells: 64,
            runs: vec![(1, 4.0), (4, 2.0)],
            identical_to_serial: true,
        };
        let raw = vec![RawMeasurement {
            id: "perf/fork_restore_suffix8".into(),
            samples: 3,
            iters_per_sample: 10,
            mean_s: 1e-6,
            min_s: 9e-7,
            max_s: 2e-6,
        }];
        let j = bench2_json(4, &raw, std::slice::from_ref(&c), &grid);
        assert!(j.contains("\"schema\": \"themis-bench-v2\""));
        assert!(j.contains("\"schema_version\": 2"));
        assert!(j.contains("\"host\": {\"cores\": 4, \"available_parallelism\": "));
        assert!(j.contains("\"fault_profile\": \"crash\""));
        assert!(j.contains("\"speedup_vs_replay\": 5.0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!((c.speedup_vs_replay() - 5.0).abs() < 1e-9);
        assert!((c.speedup_vs_redeploy() - 20.0).abs() < 1e-9);
    }
}
