//! One-shot performance measurements behind the `BENCH_1.json` artifact:
//! campaign throughput with the cached placement hot path versus the
//! uncached baseline, and grid-executor scaling across worker counts.
//!
//! The Criterion bench target (`benches/paper_artifacts.rs`) and the
//! `repro perf` subcommand both funnel through this module so the artifact
//! has one schema regardless of which entry point produced it.

use crate::grid::{run_cell, run_grid, GridSpec};
use crate::harness::{run_eval, run_eval_baseline};
use simdfs::{BugSet, Flavor};
use std::time::Instant;
use themis::VarianceWeights;

/// Mirror of the criterion shim's measurement record, so the JSON writer
/// does not need a criterion dependency in the library.
#[derive(Debug, Clone)]
pub struct RawMeasurement {
    /// `group/function` identifier.
    pub id: String,
    /// Samples taken.
    pub samples: u64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Slowest sample, seconds per iteration.
    pub max_s: f64,
}

/// Cached-vs-baseline timing of one full campaign.
#[derive(Debug, Clone)]
pub struct CampaignPerf {
    /// Target flavor.
    pub flavor: Flavor,
    /// Virtual budget in hours.
    pub hours: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Timed repetitions per variant (best run is reported).
    pub repeats: u32,
    /// Fuzzing iterations the campaign completed (identical across
    /// variants; placement caching never changes behavior).
    pub iterations: u64,
    /// Operations sent (identical across variants).
    pub ops_sent: u64,
    /// Best wall seconds per campaign with the cached hot path.
    pub cached_s: f64,
    /// Best wall seconds per campaign through the uncached reference path.
    pub baseline_s: f64,
    /// Whether cached and baseline campaigns produced identical results.
    pub results_match: bool,
}

impl CampaignPerf {
    /// Fuzzing iterations per wall second, cached hot path.
    pub fn cached_iters_per_sec(&self) -> f64 {
        self.iterations as f64 / self.cached_s
    }

    /// Fuzzing iterations per wall second, uncached baseline.
    pub fn baseline_iters_per_sec(&self) -> f64 {
        self.iterations as f64 / self.baseline_s
    }

    /// Operations per wall second, cached hot path.
    pub fn cached_ops_per_sec(&self) -> f64 {
        self.ops_sent as f64 / self.cached_s
    }

    /// Cached-over-baseline throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.cached_s
    }
}

/// Wall-clock of the same campaign matrix at several worker counts.
#[derive(Debug, Clone)]
pub struct GridScaling {
    /// Cells in the matrix (flavors x strategies x seeds).
    pub cells: usize,
    /// `(workers, wall_seconds)` per measured run.
    pub runs: Vec<(usize, f64)>,
    /// Whether every parallel run matched the serial cell-by-cell results.
    pub identical_to_serial: bool,
}

impl GridScaling {
    /// Wall seconds for the given worker count, if measured.
    pub fn seconds_at(&self, workers: usize) -> Option<f64> {
        self.runs
            .iter()
            .find(|(w, _)| *w == workers)
            .map(|(_, s)| *s)
    }

    /// Serial-over-parallel speedup for the given worker count.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        Some(self.seconds_at(1)? / self.seconds_at(workers)?)
    }
}

/// Times one campaign `repeats` times per variant and keeps the best run
/// of each, double-checking that both variants compute the same result.
pub fn measure_campaign(flavor: Flavor, hours: u64, seed: u64, repeats: u32) -> CampaignPerf {
    let repeats = repeats.max(1);
    let mut cached_s = f64::INFINITY;
    let mut baseline_s = f64::INFINITY;
    let mut cached = None;
    let mut baseline = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = run_eval(
            flavor,
            "Themis",
            BugSet::New,
            hours,
            seed,
            0.25,
            VarianceWeights::default(),
        );
        cached_s = cached_s.min(start.elapsed().as_secs_f64());
        cached = Some(r);

        let start = Instant::now();
        let r = run_eval_baseline(
            flavor,
            "Themis",
            BugSet::New,
            hours,
            seed,
            0.25,
            VarianceWeights::default(),
        );
        baseline_s = baseline_s.min(start.elapsed().as_secs_f64());
        baseline = Some(r);
    }
    let cached = cached.expect("repeats >= 1");
    let baseline = baseline.expect("repeats >= 1");
    CampaignPerf {
        flavor,
        hours,
        seed,
        repeats,
        iterations: cached.campaign.iterations,
        ops_sent: cached.campaign.ops_sent,
        cached_s,
        baseline_s,
        results_match: cached.campaign == baseline.campaign,
    }
}

/// The acceptance matrix: every flavor x {Themis, Themis-} x four seeds.
pub fn scaling_spec(hours: u64) -> GridSpec {
    GridSpec::new(
        Flavor::all().to_vec(),
        vec!["Themis".into(), "Themis-".into()],
        vec![0xbe, 7, 21, 42],
        BugSet::New,
        hours,
    )
}

/// Runs `spec` serially (cell by cell) and then once per requested worker
/// count, timing each pass and checking parallel results against serial.
pub fn measure_grid_scaling(spec: &GridSpec, worker_counts: &[usize]) -> GridScaling {
    let start = Instant::now();
    let serial: Vec<_> = (0..spec.cells()).map(|i| run_cell(spec, i)).collect();
    let mut runs = vec![(1usize, start.elapsed().as_secs_f64())];
    let mut identical = true;
    for &workers in worker_counts {
        if workers <= 1 {
            continue;
        }
        let spec = GridSpec {
            workers,
            ..spec.clone()
        };
        let start = Instant::now();
        let out = run_grid(&spec);
        runs.push((workers, start.elapsed().as_secs_f64()));
        identical &= out.cells.len() == serial.len()
            && out
                .cells
                .iter()
                .zip(&serial)
                .all(|(g, s)| g.index == s.index && g.eval.campaign == s.eval.campaign);
    }
    GridScaling {
        cells: spec.cells(),
        runs,
        identical_to_serial: identical,
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".into()
    }
}

/// Renders the full artifact. Hand-rolled JSON: the workspace's serde shim
/// is a no-op, so this is the one place structure meets bytes.
pub fn bench_json(raw: &[RawMeasurement], campaign: &CampaignPerf, grid: &GridScaling) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"themis-bench-v1\",\n");

    out.push_str("  \"campaign\": {\n");
    out.push_str(&format!(
        "    \"flavor\": \"{}\",\n",
        campaign.flavor.name()
    ));
    out.push_str(&format!("    \"hours\": {},\n", campaign.hours));
    out.push_str(&format!("    \"seed\": {},\n", campaign.seed));
    out.push_str(&format!("    \"repeats\": {},\n", campaign.repeats));
    out.push_str(&format!("    \"iterations\": {},\n", campaign.iterations));
    out.push_str(&format!("    \"ops_sent\": {},\n", campaign.ops_sent));
    out.push_str(&format!(
        "    \"cached_s\": {},\n",
        json_f64(campaign.cached_s)
    ));
    out.push_str(&format!(
        "    \"baseline_s\": {},\n",
        json_f64(campaign.baseline_s)
    ));
    out.push_str(&format!(
        "    \"cached_iters_per_sec\": {},\n",
        json_f64(campaign.cached_iters_per_sec())
    ));
    out.push_str(&format!(
        "    \"baseline_iters_per_sec\": {},\n",
        json_f64(campaign.baseline_iters_per_sec())
    ));
    out.push_str(&format!(
        "    \"cached_ops_per_sec\": {},\n",
        json_f64(campaign.cached_ops_per_sec())
    ));
    out.push_str(&format!(
        "    \"speedup\": {},\n",
        json_f64(campaign.speedup())
    ));
    out.push_str(&format!(
        "    \"results_match\": {}\n",
        campaign.results_match
    ));
    out.push_str("  },\n");

    out.push_str("  \"grid\": {\n");
    out.push_str(&format!("    \"cells\": {},\n", grid.cells));
    out.push_str(&format!(
        "    \"identical_to_serial\": {},\n",
        grid.identical_to_serial
    ));
    out.push_str("    \"runs\": [");
    for (i, (workers, secs)) in grid.runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"workers\": {workers}, \"wall_s\": {}, \"speedup\": {}}}",
            json_f64(*secs),
            json_f64(grid.speedup_at(*workers).unwrap_or(f64::NAN)),
        ));
    }
    out.push_str("]\n  },\n");

    out.push_str("  \"measurements\": [\n");
    for (i, m) in raw.iter().enumerate() {
        out.push_str("    {\"id\": ");
        push_json_str(&mut out, &m.id);
        out.push_str(&format!(
            ", \"samples\": {}, \"iters_per_sample\": {}, \"mean_s\": {}, \"min_s\": {}, \"max_s\": {}}}{}\n",
            m.samples,
            m.iters_per_sample,
            json_f64(m.mean_s),
            json_f64(m.min_s),
            json_f64(m.max_s),
            if i + 1 < raw.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the artifact to `path`.
pub fn write_bench_json(
    path: &std::path::Path,
    raw: &[RawMeasurement],
    campaign: &CampaignPerf,
    grid: &GridScaling,
) -> std::io::Result<()> {
    std::fs::write(path, bench_json(raw, campaign, grid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_perf_variants_agree_and_cached_is_not_slower() {
        let p = measure_campaign(Flavor::GlusterFs, 1, 0xbe, 1);
        assert!(p.results_match, "cached and baseline campaigns diverged");
        assert!(p.iterations > 0 && p.ops_sent > 0);
        assert!(p.cached_s > 0.0 && p.baseline_s > 0.0);
    }

    #[test]
    fn bench_json_is_well_formed_enough() {
        let campaign = CampaignPerf {
            flavor: Flavor::Hdfs,
            hours: 1,
            seed: 7,
            repeats: 1,
            iterations: 100,
            ops_sent: 1000,
            cached_s: 0.5,
            baseline_s: 1.5,
            results_match: true,
        };
        let grid = GridScaling {
            cells: 4,
            runs: vec![(1, 4.0), (4, 1.1)],
            identical_to_serial: true,
        };
        let raw = vec![RawMeasurement {
            id: "micro/placement \"x\"".into(),
            samples: 3,
            iters_per_sample: 10,
            mean_s: 1e-6,
            min_s: 9e-7,
            max_s: 2e-6,
        }];
        let j = bench_json(&raw, &campaign, &grid);
        assert!(j.contains("\"schema\": \"themis-bench-v1\""));
        assert!(j.contains("\"speedup\": 3.0"));
        assert!(j.contains("\\\"x\\\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!((campaign.speedup() - 3.0).abs() < 1e-9);
        assert_eq!(grid.speedup_at(4), Some(4.0 / 1.1));
    }
}
