//! Grid-executor scaling measurements behind the `BENCH_4.json` artifact:
//! the BENCH_3-class heavy-cell grid (scaled topologies, ~100 ms cells)
//! run through the rebuilt work-stealing executor at several worker
//! counts, with per-worker counters, the reuse redeploy count, a
//! fresh-deploy identity check at every worker count, and a speedup gate
//! that records an honest skip on single-core hosts instead of passing
//! vacuously.

use crate::grid::{run_cell, run_grid, GridSpec, WorkerStats};
use crate::perf::{json_f64, HostTopology};
use simdfs::{BugSet, Flavor};
use std::time::Instant;

/// One timed pass of the grid at a fixed worker count.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// Workers in the pool.
    pub workers: usize,
    /// Wall seconds for the whole grid.
    pub wall_s: f64,
    /// Whether every cell matched the fresh-deploy serial reference bit
    /// for bit (structurally and through the canonical JSON report).
    pub identical_to_serial: bool,
    /// Full simulator deploys across the pool — at most
    /// `workers × flavors` thanks to per-worker base-mark reuse.
    pub redeploys: u64,
    /// Per-worker {cells_run, cells_stolen, busy_ns, redeploys}.
    pub worker_stats: Vec<WorkerStats>,
}

/// The BENCH_4 measurement: one heavy grid, several worker counts.
#[derive(Debug, Clone)]
pub struct ScalingBench {
    /// The measured matrix (axes + topology scale).
    pub spec: GridSpec,
    /// Host CPU topology at measurement time.
    pub host: HostTopology,
    /// One pass per worker count, in measurement order (1 always first:
    /// it is the denominator of every speedup).
    pub runs: Vec<ScalingRun>,
}

/// Required speedup per worker count: 0.7 × workers (the CI gate's
/// near-linear-scaling bar).
pub const GATE_FACTOR: f64 = 0.7;

/// Outcome of the scaling gate.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// Multi-core host, all gated worker counts met `0.7 × workers`, and
    /// every pass was identical to serial.
    Passed,
    /// Multi-core host but a requirement failed; the message names it.
    Failed(String),
    /// Single-core host: no worker count ≤ cores exists beyond 1, so the
    /// speedup criterion is unmeasurable here. Identity is still checked.
    SkippedSingleCore,
}

impl ScalingBench {
    /// Wall seconds at the given worker count, if measured.
    pub fn seconds_at(&self, workers: usize) -> Option<f64> {
        self.runs
            .iter()
            .find(|r| r.workers == workers)
            .map(|r| r.wall_s)
    }

    /// One-worker-over-N speedup for the given worker count.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        Some(self.seconds_at(1)? / self.seconds_at(workers)?)
    }

    /// Whether every pass (all worker counts) matched the fresh-deploy
    /// serial reference.
    pub fn identical_everywhere(&self) -> bool {
        self.runs.iter().all(|r| r.identical_to_serial)
    }

    /// Evaluates the CI gate: on a multi-core host every measured worker
    /// count `1 < w ≤ available_parallelism` must reach
    /// [`GATE_FACTOR`]` × w` speedup and every pass must be identical to
    /// serial; a single-core host records an explicit skip (identity is
    /// still enforced — it does not need cores to be meaningful).
    pub fn gate(&self) -> GateOutcome {
        if !self.identical_everywhere() {
            return GateOutcome::Failed("a pass diverged from the serial reference".into());
        }
        if !self.host.multi_core() {
            return GateOutcome::SkippedSingleCore;
        }
        let cores = self.host.available_parallelism;
        for r in &self.runs {
            if r.workers <= 1 || r.workers > cores {
                continue;
            }
            let need = GATE_FACTOR * r.workers as f64;
            match self.speedup_at(r.workers) {
                Some(got) if got >= need => {}
                Some(got) => {
                    return GateOutcome::Failed(format!(
                        "speedup {:.2} at {} workers, need {:.2}",
                        got, r.workers, need
                    ));
                }
                None => {
                    return GateOutcome::Failed(format!(
                        "no one-worker baseline to gate {} workers against",
                        r.workers
                    ));
                }
            }
        }
        GateOutcome::Passed
    }
}

/// The BENCH_4 heavy matrix: every flavor at a 200-node topology, the full
/// Themis strategy, `seeds_per_flavor` seeds — cells land around 100 ms in
/// release builds, heavy enough that per-cell scheduling cost cannot mask
/// worker scaling (the failure mode that motivated BENCH_3's heavy grid).
pub fn heavy_spec(seeds_per_flavor: usize) -> GridSpec {
    GridSpec {
        scale_nodes: Some(200),
        ..GridSpec::new(
            Flavor::all().to_vec(),
            vec!["Themis".into()],
            [0xbe, 7, 21, 42, 5, 11, 17, 99][..seeds_per_flavor.clamp(1, 8)].to_vec(),
            BugSet::None,
            1,
        )
    }
}

/// Runs the scaling measurement: one untimed fresh-deploy serial reference
/// pass, then one timed executor pass per worker count (1 first).
pub fn measure_scaling(spec: &GridSpec, worker_counts: &[usize]) -> ScalingBench {
    let reference: Vec<String> = (0..spec.cells())
        .map(|i| run_cell(spec, i).eval.campaign.to_json())
        .collect();
    let mut runs = Vec::new();
    for workers in std::iter::once(1usize).chain(worker_counts.iter().copied().filter(|&w| w > 1)) {
        let spec = GridSpec {
            workers,
            ..spec.clone()
        };
        let start = Instant::now();
        let out = run_grid(&spec);
        let wall_s = start.elapsed().as_secs_f64();
        let identical = out.cells.len() == reference.len()
            && out
                .cells
                .iter()
                .zip(&reference)
                .all(|(g, want)| g.eval.campaign.to_json() == *want);
        runs.push(ScalingRun {
            workers,
            wall_s,
            identical_to_serial: identical,
            redeploys: out.redeploys(),
            worker_stats: out.worker_stats,
        });
    }
    ScalingBench {
        spec: spec.clone(),
        host: HostTopology::detect(),
        runs,
    }
}

/// Renders the scaling artifact (`BENCH_4.json`).
pub fn bench4_json(bench: &ScalingBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"themis-bench-v4\",\n");
    out.push_str("  \"schema_version\": 4,\n");
    out.push_str(&format!("  \"host\": {},\n", bench.host.to_json()));

    out.push_str("  \"grid\": {\n");
    out.push_str(&format!("    \"cells\": {},\n", bench.spec.cells()));
    out.push_str(&format!(
        "    \"scale_nodes\": {},\n",
        bench
            .spec
            .scale_nodes
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".into())
    ));
    out.push_str(&format!("    \"hours\": {},\n", bench.spec.hours));
    out.push_str("    \"flavors\": [");
    for (i, f) in bench.spec.flavors.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", f.name()));
    }
    out.push_str("],\n");
    out.push_str(&format!("    \"seeds\": {}\n", bench.spec.seeds.len()));
    out.push_str("  },\n");

    out.push_str(&format!(
        "  \"identical_to_serial\": {},\n",
        bench.identical_everywhere()
    ));

    out.push_str("  \"runs\": [\n");
    for (i, r) in bench.runs.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"workers\": {},\n", r.workers));
        out.push_str(&format!("      \"wall_s\": {},\n", json_f64(r.wall_s)));
        out.push_str(&format!(
            "      \"speedup\": {},\n",
            json_f64(bench.speedup_at(r.workers).unwrap_or(f64::NAN))
        ));
        out.push_str(&format!(
            "      \"identical_to_serial\": {},\n",
            r.identical_to_serial
        ));
        out.push_str(&format!("      \"redeploys\": {},\n", r.redeploys));
        out.push_str("      \"worker_stats\": [");
        for (j, s) in r.worker_stats.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"cells_run\": {}, \"cells_stolen\": {}, \"busy_ns\": {}, \"redeploys\": {}}}",
                s.cells_run, s.cells_stolen, s.busy_ns, s.redeploys
            ));
        }
        out.push_str("]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < bench.runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"gate\": {\n");
    out.push_str(&format!("    \"factor\": {},\n", json_f64(GATE_FACTOR)));
    match bench.gate() {
        GateOutcome::Passed => {
            out.push_str("    \"passed\": true,\n");
            out.push_str("    \"skipped\": null\n");
        }
        GateOutcome::Failed(why) => {
            out.push_str("    \"passed\": false,\n");
            out.push_str("    \"skipped\": null,\n");
            out.push_str("    \"why\": ");
            crate::perf::push_json_str(&mut out, &why);
            out.push('\n');
        }
        GateOutcome::SkippedSingleCore => {
            out.push_str("    \"passed\": true,\n");
            out.push_str("    \"skipped\": \"single-core\"\n");
        }
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_bench(cores: usize, runs: Vec<(usize, f64, bool)>) -> ScalingBench {
        ScalingBench {
            spec: heavy_spec(2),
            host: HostTopology {
                available_parallelism: cores,
                logical_cores: cores,
            },
            runs: runs
                .into_iter()
                .map(|(workers, wall_s, identical)| ScalingRun {
                    workers,
                    wall_s,
                    identical_to_serial: identical,
                    redeploys: workers as u64,
                    worker_stats: vec![WorkerStats::default(); workers],
                })
                .collect(),
        }
    }

    #[test]
    fn gate_passes_on_near_linear_scaling() {
        let b = fake_bench(4, vec![(1, 8.0, true), (2, 4.4, true), (4, 2.4, true)]);
        assert!(b.speedup_at(2).unwrap() > 1.8);
        assert_eq!(b.gate(), GateOutcome::Passed);
    }

    #[test]
    fn gate_fails_on_flat_scaling() {
        let b = fake_bench(4, vec![(1, 8.0, true), (2, 7.9, true)]);
        assert!(matches!(b.gate(), GateOutcome::Failed(_)));
    }

    #[test]
    fn gate_ignores_worker_counts_beyond_the_host() {
        // 8 workers on a 4-core host may legitimately not reach 5.6x;
        // only counts ≤ cores are gated.
        let b = fake_bench(
            4,
            vec![
                (1, 8.0, true),
                (2, 4.0, true),
                (4, 2.2, true),
                (8, 2.2, true),
            ],
        );
        assert_eq!(b.gate(), GateOutcome::Passed);
    }

    #[test]
    fn gate_skips_on_single_core_but_still_requires_identity() {
        let b = fake_bench(1, vec![(1, 8.0, true), (2, 8.5, true)]);
        assert_eq!(b.gate(), GateOutcome::SkippedSingleCore);
        let bad = fake_bench(1, vec![(1, 8.0, true), (2, 8.5, false)]);
        assert!(matches!(bad.gate(), GateOutcome::Failed(_)));
    }

    #[test]
    fn bench4_json_is_well_formed_enough() {
        let b = fake_bench(1, vec![(1, 2.0, true), (2, 2.1, true)]);
        let j = bench4_json(&b);
        assert!(j.contains("\"schema\": \"themis-bench-v4\""));
        assert!(j.contains("\"schema_version\": 4"));
        assert!(j.contains("\"available_parallelism\": 1"));
        assert!(j.contains("\"skipped\": \"single-core\""));
        assert!(j.contains("\"worker_stats\": ["));
        assert!(j.contains("\"cells_stolen\": "));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn measure_scaling_smoke_on_a_tiny_grid() {
        // Not the heavy spec (this must stay fast in debug builds): a
        // 2-cell stock-topology grid through the full measurement path.
        let spec = GridSpec::new(
            vec![Flavor::GlusterFs],
            vec!["Themis-".into()],
            vec![3, 11],
            BugSet::None,
            1,
        );
        let b = measure_scaling(&spec, &[2]);
        assert_eq!(b.runs.len(), 2);
        assert!(b.identical_everywhere(), "reuse diverged from reference");
        assert!(b.runs.iter().all(|r| r.redeploys >= 1));
        assert!(b.speedup_at(2).is_some());
        let j = bench4_json(&b);
        assert!(j.contains("\"identical_to_serial\": true"));
    }
}
