//! Regenerates every table and figure of the paper into `results/`.
//!
//! Usage: `repro [--workers N] [artifact...]` where artifact is one of
//! `table1..table8`, `figure2`, `figure12`, `perf`, `faults`, `scale`,
//! `scaling`, `crash`, `scale100k`, or `all` (default; excludes `perf`,
//! `faults`, `scale`, `scaling`, `crash`, and `scale100k`). The comparison tables share one
//! matrix run (Table 3 /
//! Table 5 / Figure 12). `perf` times the cached-vs-baseline campaign hot
//! path, the snapshot-fork engine against full replay and the redeploy
//! fallback, and grid-executor scaling, and dumps `results/BENCH_1.json`
//! plus `results/BENCH_2.json`. `faults` sweeps the fault-injection
//! matrix at a reduced budget and writes `results/faults.txt`. `scale`
//! measures variance-sampling cost from 10 to 10k storage nodes plus
//! heavy-traffic campaigns at scale and writes `results/BENCH_3.json`.
//! `scaling` runs the heavy-cell grid through the work-stealing executor
//! at 1/2/4/8 workers and writes `results/BENCH_4.json`. `crash` runs
//! bounded crash-point exploration of the migration pipeline (plus the
//! equal-budget random baseline) on every flavor and writes
//! `results/BENCH_5.json`. `scale100k` measures 100k-node topologies —
//! variance-probe flatness to 100k nodes, sampled-vs-full placement
//! quality, batch amortization, and a batched 100k campaign with a
//! same-seed identity check — and writes `results/BENCH_6.json`.
//!
//! `--workers N` pins the grid executor's worker count for every matrix
//! run whose spec does not set one explicitly (0 restores the default of
//! one worker per core), so scaling behavior is reproducible from the CLI
//! without editing code.

use bench::tables;
use std::fs;
use std::path::Path;

const HOURS: u64 = 24;
const SEED: u64 = 0x7e15;

fn write(name: &str, content: &str) {
    fs::create_dir_all("results").expect("create results dir");
    let path = Path::new("results").join(name);
    fs::write(&path, content).expect("write artifact");
    println!("--- {name} ---\n{content}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Strip `--workers N` before artifact matching.
    if let Some(i) = args.iter().position(|a| a == "--workers") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("--workers needs a number, got {:?}", args.get(i + 1)));
        bench::grid::set_default_workers(n);
        args.drain(i..=i + 1);
    }
    let want = |n: &str| args.is_empty() || args.iter().any(|a| a == n || a == "all");

    if want("table1") {
        write("table1.txt", &tables::table1());
    }
    if want("figure2") {
        write("figure2.txt", &tables::figure2());
    }
    if want("table2") {
        write("table2.txt", &tables::table2(HOURS, SEED));
    }
    if want("table3") || want("table5") || want("figure12") {
        let (t3, matrix) = tables::table3(HOURS, SEED);
        write("table3.txt", &t3);
        write("table5.txt", &tables::table5(&matrix));
        write("figure12.txt", &tables::figure12(&matrix));
    }
    if want("table4") {
        write("table4.txt", &tables::table4(HOURS, SEED));
    }
    if want("table6") {
        write("table6.txt", &tables::table6(HOURS, SEED));
    }
    if want("table7") {
        write("table7.txt", &tables::table7(HOURS, SEED));
    }
    if want("table8") {
        write("table8.txt", &tables::table8(HOURS, SEED));
    }
    // Faults is opt-in like perf: a reduced-budget fault-injection sweep
    // (CI smoke), not a paper table.
    if args.iter().any(|a| a == "faults") {
        write("faults.txt", &tables::fault_matrix(2, SEED));
    }
    // Perf is opt-in: it is a timing artifact, not a paper table.
    if args.iter().any(|a| a == "perf") {
        let campaign = bench::perf::measure_campaign(simdfs::Flavor::GlusterFs, 1, 0xbe, 3);
        let spec = bench::perf::scaling_spec(1);
        let grid = bench::perf::measure_grid_scaling(&spec, &[2, 4, 8]);
        write(
            "BENCH_1.json",
            &bench::perf::bench_json(&[], &campaign, &grid),
        );

        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let micro = bench::perf::measure_fork_restore();
        // One fork-vs-replay triple per flavor, clean and under an active
        // crash fault profile (the bit-identity claim must survive faults,
        // and a faulted redeploy is what a real clean-slate campaign on
        // flaky hardware pays).
        let mut modes = Vec::new();
        for profile in ["none", "crash"] {
            for flavor in simdfs::Flavor::all() {
                modes.push(bench::perf::measure_campaign_modes(
                    flavor, 1, 0xbe, 3, profile,
                ));
            }
        }
        write(
            "BENCH_2.json",
            &bench::perf::bench2_json(cores, &micro, &modes, &grid),
        );
    }
    // Scaling is opt-in: the heavy-cell grid through the work-stealing
    // executor at 1/2/4/8 workers, with per-worker counters, the reuse
    // redeploy count, fresh-deploy identity at every worker count, and
    // the 0.7x-per-worker CI gate (recorded as skipped on single-core
    // hosts). Writes `results/BENCH_4.json`.
    if args.iter().any(|a| a == "scaling") {
        let spec = bench::scaling::heavy_spec(4);
        let bench4 = bench::scaling::measure_scaling(&spec, &[2, 4, 8]);
        write("BENCH_4.json", &bench::scaling::bench4_json(&bench4));
    }
    // Crash is opt-in: bounded crash-point exploration of the migration
    // pipeline — one campaign per flavor (bounded arm plus the
    // equal-budget random-time baseline) through the work-stealing
    // executor, with a from-scratch byte-identity check. Writes
    // `results/BENCH_5.json`.
    if args.iter().any(|a| a == "crash") {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4);
        let bench5 =
            bench::crashbench::measure_crashbench(&themis::CrashExplorerConfig::default(), workers);
        write("BENCH_5.json", &bench::crashbench::bench5_json(&bench5));
    }
    // Scale is opt-in: large-topology scaling measurements (10 to 10k
    // storage nodes), heavy-traffic campaigns with the mean-field
    // cross-check, a same-seed determinism check at 10k nodes, and
    // worker scaling over heavy cells. Writes `results/BENCH_3.json`.
    if args.iter().any(|a| a == "scale") {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let variance = bench::scale::measure_variance_scaling(&[10, 100, 1_000, 10_000]);
        let mut campaigns = vec![
            bench::scale::run_heavy_campaign(simdfs::Flavor::Hdfs, 1_000, 0xbe, 12),
            bench::scale::run_heavy_campaign(simdfs::Flavor::CephFs, 1_000, 0xbe, 12),
        ];
        // The determinism check doubles as the flagship 10k-node campaign:
        // it runs the same campaign twice from scratch and compares the
        // canonical reports byte for byte.
        let det = bench::scale::check_campaign_determinism(simdfs::Flavor::Hdfs, 10_000, 0xbe, 12);
        campaigns.push(det.campaign.clone());
        let grid = bench::scale::measure_heavy_grid_scaling(
            simdfs::Flavor::Hdfs,
            500,
            &[0xbe, 7, 21, 42, 5, 11, 17, 99],
            24,
            &[2, 4],
        );
        write(
            "BENCH_3.json",
            &bench::scale::bench3_json(cores, &variance, &campaigns, &det, &grid),
        );
    }
    // Scale100k is opt-in: 100k-node topology measurements — variance-probe
    // flatness at 10/10k/100k (with preload wall time per point),
    // sampled-vs-full placement quality differentials, the serial-vs-batched
    // request-loop amortization, and a batched 100k-node campaign run twice
    // for a same-seed byte-identity check. Writes `results/BENCH_6.json`.
    if args.iter().any(|a| a == "scale100k") {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let probe = bench::scale100k::measure_probe_scaling(&[10, 10_000, 100_000]);
        let diffs = vec![
            bench::scale100k::run_sampled_vs_full(simdfs::Flavor::Hdfs, 10_000, 0xbe, 2_000),
            bench::scale100k::run_sampled_vs_full(simdfs::Flavor::GlusterFs, 10_000, 0xbe, 2_000),
            bench::scale100k::run_sampled_vs_full(simdfs::Flavor::Hdfs, 100_000, 0xbe, 800),
        ];
        let amort =
            bench::scale100k::measure_batch_amortization(simdfs::Flavor::Hdfs, 10_000, 20_000, 64);
        let det = bench::scale100k::check_batched_determinism(
            simdfs::Flavor::Hdfs,
            100_000,
            0xbe,
            64,
            128,
        );
        write(
            "BENCH_6.json",
            &bench::scale100k::bench6_json(cores, &probe, &diffs, &amort, &det),
        );
    }
}
