//! 100k-node topology measurements behind the `BENCH_6.json` artifact:
//! variance-probe flatness from 10 to 100k storage nodes (with the
//! bulk-load preload wall time per point), differential campaigns
//! quantifying what candidate-sampling placement gives up against the
//! full-scan policies, the serial-vs-batched request-loop amortization,
//! and a batched heavy campaign at 100k nodes with a same-seed
//! byte-identity check.
//!
//! The documented sampling-quality bound gated by CI is
//! `sampled_cv <= SAMPLED_CV_SLACK_FACTOR * full_cv + SAMPLED_CV_SLACK_ABS`
//! where `cv` is the coefficient of variation (sqrt of the population
//! variance over the mean) of node utilization after an identical
//! placement-driven fill.

use crate::perf::{json_f64, push_json_str, push_measurements, sample, RawMeasurement};
use simdfs::{BugSet, DfsRequest, DfsSim, Flavor, FlavorConfig, MIB};
use std::time::Instant;

/// Splitmix-style bit mixer used to derive deterministic request streams
/// from a seed without pulling an RNG into the bench crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Coefficient of variation of the cluster's node-utilization tracker.
fn util_cv(sim: &DfsSim) -> f64 {
    let t = sim.cluster().util_stats();
    let mean = t.mean();
    if mean > 0.0 {
        t.variance().max(0.0).sqrt() / mean
    } else {
        0.0
    }
}

/// Per-size probe cost plus the preload wall time paid to get there.
#[derive(Debug, Clone)]
pub struct ProbePoint {
    /// Storage fleet size.
    pub nodes: u32,
    /// Wall seconds to build and preload the topology (bulk-load mode;
    /// recorded for context, not gated).
    pub preload_s: f64,
    /// Per-call cost of the three-dimension variance probe.
    pub probe: RawMeasurement,
}

/// Variance-probe cost across fleet sizes up to 100k nodes.
#[derive(Debug, Clone)]
pub struct ProbeScaling {
    /// One point per measured fleet size, in measurement order.
    pub points: Vec<ProbePoint>,
}

impl ProbeScaling {
    /// Best-sample probe cost at the given fleet size, if measured.
    pub fn probe_cost_at(&self, nodes: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.nodes == nodes)
            .map(|p| p.probe.min_s)
    }

    /// Probe cost at the largest fleet over the cost at the second-largest
    /// — the CI flatness gate. With the shipped `[10, 10k, 100k]` point
    /// set this is exactly the 10k→100k ratio: the last order of magnitude
    /// must be free because the probe reads O(1) streaming accumulators.
    ///
    /// Best samples are compared rather than means for the same reason as
    /// [`crate::scale::VarianceScaling::probe_cost_ratio`]: one scheduler
    /// preemption would dominate a mean of tens-of-nanosecond calls.
    pub fn top_pair_ratio(&self) -> f64 {
        let mut sorted: Vec<&ProbePoint> = self.points.iter().collect();
        sorted.sort_by_key(|p| p.nodes);
        match sorted.as_slice() {
            [.., second, largest] if second.probe.min_s > 0.0 => {
                largest.probe.min_s / second.probe.min_s
            }
            _ => f64::NAN,
        }
    }
}

/// Builds a scaled HDFS-flavor sim and warms it through the batched
/// request path so probe measurements see a working cluster.
fn build_scaled(flavor: Flavor, nodes: u32, warmup_files: u32) -> DfsSim {
    let cfg = FlavorConfig::scaled(flavor, nodes);
    let mut sim = DfsSim::with_config(cfg, BugSet::None);
    let reqs: Vec<DfsRequest> = (0..warmup_files)
        .map(|k| DfsRequest::Create {
            path: format!("/warmup{k}"),
            size: 4 * MIB,
        })
        .collect();
    let mut out = Vec::new();
    sim.execute_batch(&reqs, &mut out);
    sim
}

/// Measures preload wall time and per-call variance-probe cost at each
/// requested fleet size.
pub fn measure_probe_scaling(node_counts: &[u32]) -> ProbeScaling {
    let mut points = Vec::new();
    for &nodes in node_counts {
        let start = Instant::now();
        let mut sim = build_scaled(Flavor::Hdfs, nodes, 64);
        let preload_s = start.elapsed().as_secs_f64();

        let probe = sample(
            &format!("scale100k/variance_probe_{nodes}"),
            10,
            2000,
            || {
                let _ = sim.variance_probe();
            },
        );

        points.push(ProbePoint {
            nodes,
            preload_s,
            probe,
        });
    }
    ProbeScaling { points }
}

/// Multiplicative slack of the documented sampling-quality bound.
pub const SAMPLED_CV_SLACK_FACTOR: f64 = 2.0;
/// Additive slack of the documented sampling-quality bound (absorbs the
/// near-zero-CV regime where a ratio alone would be meaningless).
pub const SAMPLED_CV_SLACK_ABS: f64 = 0.05;

/// One differential fill: the same deterministic create stream driven
/// through a full-scan flavor and its candidate-sampling counterpart.
#[derive(Debug, Clone)]
pub struct SampledVsFull {
    /// Target flavor (decides which policy pair is compared).
    pub flavor: Flavor,
    /// Storage fleet size.
    pub nodes: u32,
    /// Stream seed.
    pub seed: u64,
    /// Creates driven through each sim.
    pub files: u32,
    /// Utilization CV after the fill under the full-scan policy.
    pub full_cv: f64,
    /// Utilization CV after the same fill under the sampled policy.
    pub sampled_cv: f64,
    /// Wall seconds for the full-scan fill (placement is O(V) per create).
    pub full_wall_s: f64,
    /// Wall seconds for the sampled fill (placement is O(d) per create).
    pub sampled_wall_s: f64,
    /// Canonical deterministic summary (no wall-clock quantities).
    pub report: String,
}

impl SampledVsFull {
    /// The documented quality bound for this pair.
    pub fn bound(&self) -> f64 {
        SAMPLED_CV_SLACK_FACTOR * self.full_cv + SAMPLED_CV_SLACK_ABS
    }

    /// Whether the sampled policy stayed within the documented bound.
    pub fn within_bound(&self) -> bool {
        self.sampled_cv <= self.bound()
    }
}

/// Runs one side of the differential: `files` creates with seed-derived
/// sizes through the batched request path, CV read at the end.
fn fill_with(cfg: FlavorConfig, seed: u64, files: u32) -> (f64, f64) {
    let start = Instant::now();
    let mut sim = DfsSim::with_config(cfg, BugSet::None);
    let mut out = Vec::new();
    let mut batch = Vec::with_capacity(64);
    for i in 0..files {
        let size = (1 + mix(seed ^ u64::from(i)) % 32) * MIB;
        batch.push(DfsRequest::Create {
            path: format!("/fill{i}"),
            size,
        });
        if batch.len() == 64 {
            sim.execute_batch(&batch, &mut out);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        sim.execute_batch(&batch, &mut out);
    }
    (util_cv(&sim), start.elapsed().as_secs_f64())
}

/// Runs the differential fill for one flavor/size. Base preload is
/// disabled on both sides so every placed byte went through the policy
/// under test, and the balancer is suppressed so migrations cannot mask
/// placement quality — this isolates the policy exactly like the
/// policy-level tests in `simdfs::placement`, but through the full
/// request pipeline.
pub fn run_sampled_vs_full(flavor: Flavor, nodes: u32, seed: u64, files: u32) -> SampledVsFull {
    let mut full_cfg = FlavorConfig::scaled(flavor, nodes);
    full_cfg.base_fill = 0.0;
    full_cfg.balance_threshold = 1e9;
    let mut sampled_cfg = FlavorConfig::sampled_scaled(flavor, nodes);
    sampled_cfg.base_fill = 0.0;
    sampled_cfg.balance_threshold = 1e9;

    let (full_cv, full_wall_s) = fill_with(full_cfg, seed, files);
    let (sampled_cv, sampled_wall_s) = fill_with(sampled_cfg, seed, files);

    let mut out = SampledVsFull {
        flavor,
        nodes,
        seed,
        files,
        full_cv,
        sampled_cv,
        full_wall_s,
        sampled_wall_s,
        report: String::new(),
    };
    out.report = format!(
        "sampled-vs-full flavor={} nodes={nodes} seed={seed} files={files} \
         full_cv={full_cv:.9} sampled_cv={sampled_cv:.9} within_bound={}",
        flavor.name(),
        out.within_bound(),
    );
    out
}

/// Serial-vs-batched wall time for the same request stream: what
/// `execute_batch` buys by amortizing the clock advance, fault-schedule
/// checks and variance sampling across a quiescent run of requests.
#[derive(Debug, Clone)]
pub struct BatchAmortization {
    /// Target flavor (sampled placement, so bookkeeping dominates).
    pub flavor: Flavor,
    /// Storage fleet size.
    pub nodes: u32,
    /// Requests in the stream.
    pub requests: u64,
    /// Batch size used on the batched side.
    pub batch: usize,
    /// Wall seconds executing the stream one request at a time.
    pub serial_s: f64,
    /// Wall seconds executing the stream in batches.
    pub batched_s: f64,
}

impl BatchAmortization {
    /// Serial-over-batched speedup.
    pub fn speedup(&self) -> f64 {
        if self.batched_s > 0.0 {
            self.serial_s / self.batched_s
        } else {
            f64::NAN
        }
    }
}

/// Times the same create stream serially and in batches on fresh
/// sampled-flavor sims. The batched run legitimately advances the clock
/// and samples variance once per batch instead of once per request, so
/// only wall time is compared here; state equivalence of the per-request
/// mutation path is pinned by the simdfs-level batch tests.
pub fn measure_batch_amortization(
    flavor: Flavor,
    nodes: u32,
    requests: u64,
    batch: usize,
) -> BatchAmortization {
    let reqs: Vec<DfsRequest> = (0..requests)
        .map(|k| DfsRequest::Create {
            path: format!("/amort{k}"),
            size: (1 + mix(k) % 16) * MIB,
        })
        .collect();

    let cfg = FlavorConfig::sampled_scaled(flavor, nodes);
    let mut serial_sim = DfsSim::with_config(cfg.clone(), BugSet::None);
    let start = Instant::now();
    for r in &reqs {
        let _ = serial_sim.execute(r);
    }
    let serial_s = start.elapsed().as_secs_f64();

    let mut batched_sim = DfsSim::with_config(cfg, BugSet::None);
    let mut out = Vec::new();
    let start = Instant::now();
    for chunk in reqs.chunks(batch.max(1)) {
        batched_sim.execute_batch(chunk, &mut out);
    }
    let batched_s = start.elapsed().as_secs_f64();

    BatchAmortization {
        flavor,
        nodes,
        requests,
        batch,
        serial_s,
        batched_s,
    }
}

/// Result of one batched heavy campaign on a sampled-flavor cluster.
#[derive(Debug, Clone)]
pub struct BatchedCampaign {
    /// Target flavor.
    pub flavor: Flavor,
    /// Storage fleet size.
    pub nodes: u32,
    /// Stream seed.
    pub seed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests per batch.
    pub batch_size: usize,
    /// Requests executed (including failed ones).
    pub ops: u64,
    /// Requests that returned an error.
    pub failed_ops: u64,
    /// Final max-over-mean storage imbalance ratio.
    pub final_imbalance: f64,
    /// Whether the full state audit passed at the end of the run.
    pub audit_ok: bool,
    /// Wall seconds for the run (not part of `report`).
    pub wall_s: f64,
    /// Canonical deterministic summary — byte-identical across same-seed
    /// runs; contains no wall-clock quantities.
    pub report: String,
}

/// Derives the `i`-th request of a campaign stream: a create-heavy mix
/// of creates, appends, overwrites, deletes and opens over a bounded
/// path population, all sized from the mixed seed.
fn campaign_request(seed: u64, i: u64) -> DfsRequest {
    let r = mix(seed ^ i.wrapping_mul(0x9e37_79b9));
    let id = (r >> 8) % 4096;
    let path = format!("/camp{id}");
    let size = (1 + (r >> 24) % 24) * MIB;
    match r % 8 {
        0..=3 => DfsRequest::Create { path, size },
        4 => DfsRequest::Append { path, delta: size },
        5 => DfsRequest::Overwrite { path, size },
        6 => DfsRequest::Delete { path },
        _ => DfsRequest::Open { path },
    }
}

/// Runs one batched heavy campaign: a deterministic create-heavy stream
/// through `execute_batch` on a sampled-flavor scaled cluster (the
/// combination that makes a 100k-node campaign tractable: O(d) placement
/// per create, per-batch clock/variance bookkeeping), with the full
/// state audit at the end.
pub fn run_batched_campaign(
    flavor: Flavor,
    nodes: u32,
    seed: u64,
    batches: u64,
    batch_size: usize,
) -> BatchedCampaign {
    let start = Instant::now();
    let cfg = FlavorConfig::sampled_scaled(flavor, nodes);
    let mut sim = DfsSim::with_config(cfg, BugSet::None);
    let mut out = Vec::new();
    let mut batch = Vec::with_capacity(batch_size);
    let mut k = 0u64;
    for _ in 0..batches {
        batch.clear();
        for _ in 0..batch_size {
            batch.push(campaign_request(seed, k));
            k += 1;
        }
        sim.execute_batch(&batch, &mut out);
    }

    let stats = sim.stats();
    let final_imbalance = sim.cluster().util_stats().imbalance_ratio();
    let audit_ok = sim.audit_state().is_ok();
    let wall_s = start.elapsed().as_secs_f64();

    let report = format!(
        "batched-campaign flavor={} nodes={nodes} seed={seed} batches={batches} \
         batch={batch_size} ops={} failed={} imbalance={final_imbalance:.9} \
         audit={audit_ok}",
        flavor.name(),
        stats.ops,
        stats.failed_ops,
    );
    BatchedCampaign {
        flavor,
        nodes,
        seed,
        batches,
        batch_size,
        ops: stats.ops,
        failed_ops: stats.failed_ops,
        final_imbalance,
        audit_ok,
        wall_s,
        report,
    }
}

/// Same-seed determinism at 100k: two fresh batched campaigns with
/// identical parameters must produce byte-identical reports.
#[derive(Debug, Clone)]
pub struct Determinism100k {
    /// The first run (the one reported in the artifact).
    pub campaign: BatchedCampaign,
    /// Whether the second run's report matched byte for byte.
    pub identical: bool,
}

/// Runs the batched campaign twice from scratch and compares reports.
pub fn check_batched_determinism(
    flavor: Flavor,
    nodes: u32,
    seed: u64,
    batches: u64,
    batch_size: usize,
) -> Determinism100k {
    let first = run_batched_campaign(flavor, nodes, seed, batches, batch_size);
    let second = run_batched_campaign(flavor, nodes, seed, batches, batch_size);
    let identical = first.report == second.report;
    Determinism100k {
        campaign: first,
        identical,
    }
}

/// Renders the 100k-topology artifact (`BENCH_6.json`).
pub fn bench6_json(
    cores: usize,
    probe: &ProbeScaling,
    diffs: &[SampledVsFull],
    amortization: &BatchAmortization,
    determinism: &Determinism100k,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"themis-bench-v6\",\n");
    out.push_str("  \"schema_version\": 6,\n");
    let topo = crate::perf::HostTopology::detect();
    out.push_str(&format!(
        "  \"host\": {{\"cores\": {cores}, \"available_parallelism\": {}, \"logical_cores\": {}}},\n",
        topo.available_parallelism, topo.logical_cores
    ));
    out.push_str(&format!(
        "  \"probe_cost_ratio_10k_100k\": {},\n",
        json_f64(probe.top_pair_ratio())
    ));

    out.push_str("  \"probe_scaling\": [\n");
    for (i, p) in probe.points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"nodes\": {},\n", p.nodes));
        out.push_str(&format!(
            "      \"preload_s\": {},\n",
            json_f64(p.preload_s)
        ));
        out.push_str("      \"measurements\": [\n");
        push_measurements(&mut out, std::slice::from_ref(&p.probe), "        ");
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < probe.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"sampled_vs_full\": [\n");
    for (i, d) in diffs.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"flavor\": \"{}\",\n", d.flavor.name()));
        out.push_str(&format!("      \"nodes\": {},\n", d.nodes));
        out.push_str(&format!("      \"seed\": {},\n", d.seed));
        out.push_str(&format!("      \"files\": {},\n", d.files));
        out.push_str(&format!("      \"full_cv\": {},\n", json_f64(d.full_cv)));
        out.push_str(&format!(
            "      \"sampled_cv\": {},\n",
            json_f64(d.sampled_cv)
        ));
        out.push_str(&format!("      \"bound\": {},\n", json_f64(d.bound())));
        out.push_str(&format!("      \"within_bound\": {},\n", d.within_bound()));
        out.push_str(&format!(
            "      \"full_wall_s\": {},\n",
            json_f64(d.full_wall_s)
        ));
        out.push_str(&format!(
            "      \"sampled_wall_s\": {},\n",
            json_f64(d.sampled_wall_s)
        ));
        out.push_str("      \"report\": ");
        push_json_str(&mut out, &d.report);
        out.push('\n');
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < diffs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"batch_amortization\": {\n");
    out.push_str(&format!(
        "    \"flavor\": \"{}\",\n",
        amortization.flavor.name()
    ));
    out.push_str(&format!("    \"nodes\": {},\n", amortization.nodes));
    out.push_str(&format!("    \"requests\": {},\n", amortization.requests));
    out.push_str(&format!("    \"batch\": {},\n", amortization.batch));
    out.push_str(&format!(
        "    \"serial_s\": {},\n",
        json_f64(amortization.serial_s)
    ));
    out.push_str(&format!(
        "    \"batched_s\": {},\n",
        json_f64(amortization.batched_s)
    ));
    out.push_str(&format!(
        "    \"speedup\": {}\n",
        json_f64(amortization.speedup())
    ));
    out.push_str("  },\n");

    let c = &determinism.campaign;
    out.push_str("  \"batched_campaign\": {\n");
    out.push_str(&format!("    \"flavor\": \"{}\",\n", c.flavor.name()));
    out.push_str(&format!("    \"nodes\": {},\n", c.nodes));
    out.push_str(&format!("    \"seed\": {},\n", c.seed));
    out.push_str(&format!("    \"batches\": {},\n", c.batches));
    out.push_str(&format!("    \"batch_size\": {},\n", c.batch_size));
    out.push_str(&format!("    \"ops\": {},\n", c.ops));
    out.push_str(&format!("    \"failed_ops\": {},\n", c.failed_ops));
    out.push_str(&format!(
        "    \"final_imbalance\": {},\n",
        json_f64(c.final_imbalance)
    ));
    out.push_str(&format!("    \"audit_ok\": {},\n", c.audit_ok));
    out.push_str(&format!("    \"wall_s\": {},\n", json_f64(c.wall_s)));
    out.push_str(&format!("    \"identical\": {},\n", determinism.identical));
    out.push_str("    \"report\": ");
    push_json_str(&mut out, &c.report);
    out.push_str("\n  }\n}\n");
    out
}

/// Writes the 100k-topology artifact to `path`.
pub fn write_bench6_json(
    path: &std::path::Path,
    cores: usize,
    probe: &ProbeScaling,
    diffs: &[SampledVsFull],
    amortization: &BatchAmortization,
    determinism: &Determinism100k,
) -> std::io::Result<()> {
    std::fs::write(
        path,
        bench6_json(cores, probe, diffs, amortization, determinism),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_cost_is_flat_small_scale() {
        // The CI gate measures 10k vs 100k; keep the in-tree test cheap
        // with 10 vs 500 — the probe is already size-independent there.
        let p = measure_probe_scaling(&[10, 500]);
        assert_eq!(p.points.len(), 2);
        let ratio = p.top_pair_ratio();
        assert!(ratio.is_finite() && ratio > 0.0);
        for point in &p.points {
            assert!(point.probe.min_s > 0.0 && point.preload_s > 0.0);
        }
    }

    #[test]
    fn sampled_vs_full_holds_the_documented_bound_small_scale() {
        for flavor in [Flavor::Hdfs, Flavor::GlusterFs] {
            let d = run_sampled_vs_full(flavor, 200, 0xbe, 600);
            assert!(
                d.within_bound(),
                "sampled CV {} exceeds bound {}: {}",
                d.sampled_cv,
                d.bound(),
                d.report
            );
            assert!(d.full_cv >= 0.0 && d.sampled_cv >= 0.0);
        }
    }

    #[test]
    fn batch_amortization_measures_both_arms() {
        let a = measure_batch_amortization(Flavor::Hdfs, 200, 512, 64);
        assert!(a.serial_s > 0.0 && a.batched_s > 0.0);
        assert!(a.speedup().is_finite());
    }

    #[test]
    fn batched_campaigns_are_deterministic_per_seed() {
        let d = check_batched_determinism(Flavor::CephFs, 150, 7, 6, 48);
        assert!(d.identical, "same-seed reports diverged");
        assert!(d.campaign.audit_ok, "audit failed: {}", d.campaign.report);
        assert!(d.campaign.ops > 0);
        let other = run_batched_campaign(Flavor::CephFs, 150, 8, 6, 48);
        assert_ne!(d.campaign.report, other.report, "seed must matter");
    }

    #[test]
    fn bench6_json_is_well_formed_enough() {
        let p = ProbeScaling {
            points: vec![
                ProbePoint {
                    nodes: 10_000,
                    preload_s: 0.5,
                    probe: RawMeasurement {
                        id: "scale100k/variance_probe_10000".into(),
                        samples: 2,
                        iters_per_sample: 10,
                        mean_s: 1e-7,
                        min_s: 1e-7,
                        max_s: 2e-7,
                    },
                },
                ProbePoint {
                    nodes: 100_000,
                    preload_s: 5.0,
                    probe: RawMeasurement {
                        id: "scale100k/variance_probe_100000".into(),
                        samples: 2,
                        iters_per_sample: 10,
                        mean_s: 1.2e-7,
                        min_s: 1.2e-7,
                        max_s: 2e-7,
                    },
                },
            ],
        };
        let d = SampledVsFull {
            flavor: Flavor::Hdfs,
            nodes: 100_000,
            seed: 0xbe,
            files: 800,
            full_cv: 0.01,
            sampled_cv: 0.02,
            full_wall_s: 2.0,
            sampled_wall_s: 0.1,
            report: "sampled-vs-full \"quoted\"".into(),
        };
        let a = BatchAmortization {
            flavor: Flavor::Hdfs,
            nodes: 10_000,
            requests: 20_000,
            batch: 64,
            serial_s: 2.0,
            batched_s: 1.0,
        };
        let det = Determinism100k {
            campaign: BatchedCampaign {
                flavor: Flavor::Hdfs,
                nodes: 100_000,
                seed: 0xbe,
                batches: 64,
                batch_size: 128,
                ops: 8192,
                failed_ops: 17,
                final_imbalance: 1.25,
                audit_ok: true,
                wall_s: 9.0,
                report: "batched-campaign ok".into(),
            },
            identical: true,
        };
        let j = bench6_json(4, &p, std::slice::from_ref(&d), &a, &det);
        assert!(j.contains("\"schema\": \"themis-bench-v6\""));
        assert!(j.contains("\"schema_version\": 6"));
        assert!(j.contains("\"probe_cost_ratio_10k_100k\": 1.2"));
        assert!(j.contains("\"within_bound\": true"));
        assert!(j.contains("\"speedup\": 2.0"));
        assert!(j.contains("\"identical\": true"));
        assert!(j.contains("\\\"quoted\\\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
