//! Large-topology scaling measurements behind the `BENCH_3.json` artifact:
//! per-operation variance-sampling cost from 10 to 10k storage nodes
//! (proving the streaming accumulators keep `sample_variance` O(1)),
//! heavy-traffic campaigns (Zipfian hotspot, diurnal cycle, flash crowd)
//! on scaled clusters with a mean-field cross-check of the simulated mean
//! load trajectory, a same-seed determinism check at 10k nodes, and a
//! worker-scaling pass over large-topology cells (the grid cells in
//! `BENCH_1.json` finish in milliseconds, so scheduling overhead masks the
//! worker speedup there; these cells are three orders of magnitude
//! heavier).

use crate::perf::{json_f64, push_json_str, push_measurements, sample, RawMeasurement};
use adaptors::SimAdaptor;
use simdfs::{BugSet, DfsRequest, DfsSim, Flavor, FlavorConfig, MeanFieldModel, MIB};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;
use themis::spec::{Operand, Operation, Operator};
use themis::DfsAdaptor;
use workload::{DiurnalCycle, FlashCrowd, Workload, ZipfianHotspot};

/// Per-operation costs measured on one cluster size.
#[derive(Debug, Clone)]
pub struct VarianceScalingPoint {
    /// Storage fleet size.
    pub nodes: u32,
    /// Wall seconds to build and preload the topology (context, not gated).
    pub build_s: f64,
    /// Per-call cost of the full three-dimension variance probe
    /// (storage/CPU/network — exactly what `sample_variance` pays per
    /// executed operation).
    pub probe: RawMeasurement,
    /// Per-call cost of executing a create (places fragments, maintains
    /// the streaming accumulators).
    pub execute: RawMeasurement,
}

/// Variance-probe cost across cluster sizes.
#[derive(Debug, Clone)]
pub struct VarianceScaling {
    /// One point per measured fleet size, in measurement order.
    pub points: Vec<VarianceScalingPoint>,
}

impl VarianceScaling {
    /// Best-sample probe cost at the given fleet size, if measured.
    pub fn probe_cost_at(&self, nodes: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.nodes == nodes)
            .map(|p| p.probe.min_s)
    }

    /// Probe cost at the largest fleet over the cost at the smallest —
    /// the acceptance criterion's flatness number (O(1) sampling keeps
    /// this near 1.0; the old full-recompute walk would scale it with n).
    ///
    /// Best samples are compared rather than means: the probe costs
    /// tens of nanoseconds, where one scheduler preemption in a sample
    /// batch would dominate a mean.
    pub fn probe_cost_ratio(&self) -> f64 {
        let min_nodes = self.points.iter().min_by_key(|p| p.nodes);
        let max_nodes = self.points.iter().max_by_key(|p| p.nodes);
        match (min_nodes, max_nodes) {
            (Some(a), Some(b)) if a.probe.min_s > 0.0 => b.probe.min_s / a.probe.min_s,
            _ => f64::NAN,
        }
    }
}

/// Builds a scaled HDFS-flavor sim and dirties it with enough traffic
/// that probe measurements see a working cluster, not a fresh one.
fn build_scaled(flavor: Flavor, nodes: u32, warmup_files: u32) -> DfsSim {
    let cfg = FlavorConfig::scaled(flavor, nodes);
    let mut sim = DfsSim::with_config(cfg, BugSet::None);
    for k in 0..warmup_files {
        let _ = sim.execute(&DfsRequest::Create {
            path: format!("/warmup{k}"),
            size: 4 * MIB,
        });
    }
    sim
}

/// Measures the per-operation variance-probe and execute costs at each
/// requested fleet size.
pub fn measure_variance_scaling(node_counts: &[u32]) -> VarianceScaling {
    let mut points = Vec::new();
    for &nodes in node_counts {
        let start = Instant::now();
        let mut sim = build_scaled(Flavor::Hdfs, nodes, 64);
        let build_s = start.elapsed().as_secs_f64();

        let probe = sample(&format!("scale/variance_probe_{nodes}"), 10, 2000, || {
            let _ = sim.variance_probe();
        });

        let mut k = 0u64;
        let execute = sample(&format!("scale/execute_create_{nodes}"), 5, 200, || {
            k += 1;
            let _ = sim.execute(&DfsRequest::Create {
                path: format!("/bench{k}"),
                size: 4 * MIB,
            });
        });

        points.push(VarianceScalingPoint {
            nodes,
            build_s,
            probe,
            execute,
        });
    }
    VarianceScaling { points }
}

/// Result of one heavy-traffic campaign on a scaled cluster.
#[derive(Debug, Clone)]
pub struct HeavyCampaign {
    /// Target flavor.
    pub flavor: Flavor,
    /// Storage fleet size.
    pub nodes: u32,
    /// Generator seed.
    pub seed: u64,
    /// Blocks drawn from each generator.
    pub blocks: u64,
    /// Operations sent through the adaptor.
    pub ops_sent: u64,
    /// Operations the cluster accepted.
    pub ops_accepted: u64,
    /// Final max-over-mean storage imbalance ratio.
    pub final_imbalance: f64,
    /// Largest |observed − predicted| mean utilization across the run
    /// (the mean-field cross-check; see `simdfs::MeanFieldModel`).
    pub max_mean_field_dev: f64,
    /// Mean-field observations folded in (one per generator block).
    pub mean_field_samples: u64,
    /// Whether the full state audit (including streaming-accumulator
    /// recomputation) passed at the end of the run.
    pub audit_ok: bool,
    /// Wall seconds for the run (not part of `report`).
    pub wall_s: f64,
    /// Canonical deterministic summary — byte-identical across same-seed
    /// runs; contains no wall-clock quantities.
    pub report: String,
}

/// Tolerance for the mean-field cross-check. The model is fed the exact
/// logical byte flow, so the only legitimate gap is utilization
/// quantization (2^-32 per node) plus float rounding in the mean.
pub const MEAN_FIELD_TOLERANCE: f64 = 1e-6;

impl HeavyCampaign {
    /// Whether the simulated mean tracked the analytic mean-field curve.
    pub fn mean_field_ok(&self) -> bool {
        self.max_mean_field_dev <= MEAN_FIELD_TOLERANCE
    }
}

/// Applies one accepted operation's logical byte flow to the mean-field
/// model, using `sizes` to recover overwrite deltas. Only storage-bearing
/// operators move bytes; opens, mkdirs and the rest are no-ops here.
fn track_logical_flow(
    op: &Operation,
    sizes: &mut BTreeMap<String, u64>,
    model: &mut MeanFieldModel,
) {
    let (path, size) = match (op.opds.first(), op.opds.get(1)) {
        (Some(Operand::FileName(p)), Some(Operand::Size(s))) => (p, *s),
        _ => return,
    };
    match op.opt {
        Operator::Create => {
            model.ingest(size);
            sizes.insert(path.clone(), size);
        }
        Operator::Append => {
            model.ingest(size);
            *sizes.entry(path.clone()).or_insert(0) += size;
        }
        Operator::Overwrite | Operator::TruncateOverwrite => {
            let old = sizes.insert(path.clone(), size).unwrap_or(0);
            if size >= old {
                model.ingest(size - old);
            } else {
                model.remove(old - size);
            }
        }
        _ => {}
    }
}

/// Runs one heavy-traffic campaign: all three heavy generators drive a
/// scaled bug-free cluster through the adaptor, the mean-field model is
/// fed the exact logical byte flow and cross-checked against the
/// cluster's observed mean utilization after every block, and the full
/// state audit runs at the end.
pub fn run_heavy_campaign(flavor: Flavor, nodes: u32, seed: u64, blocks: u64) -> HeavyCampaign {
    let start = Instant::now();
    let cfg = FlavorConfig::scaled(flavor, nodes);
    let replicas = cfg.replicas as u32;
    let sim = DfsSim::with_config(cfg, BugSet::None);
    let (base_used, capacity) = {
        let c = sim.cluster();
        (c.total_capacity() - c.total_free(), c.total_capacity())
    };
    let mut model = MeanFieldModel::new(base_used, capacity, replicas);
    let handle = Rc::new(RefCell::new(sim));
    let mut adaptor = SimAdaptor::from_handle(handle.clone());
    adaptor.command_log_cap = 0;

    let mut generators: Vec<Box<dyn Workload>> = vec![
        Box::new(ZipfianHotspot::new(seed, 4096, 96)),
        Box::new(DiurnalCycle::new(seed ^ 1, 4)),
        Box::new(FlashCrowd::new(seed ^ 2, 6, 64, 8)),
    ];

    let mut sizes: BTreeMap<String, u64> = BTreeMap::new();
    let mut ops_sent = 0u64;
    let mut ops_accepted = 0u64;
    let mut max_dev = 0.0f64;
    let mut samples = 0u64;
    for _ in 0..blocks {
        for gen in &mut generators {
            for op in gen.next_block() {
                ops_sent += 1;
                if adaptor.send(&op).is_ok() {
                    ops_accepted += 1;
                    track_logical_flow(&op, &mut sizes, &mut model);
                }
            }
            let observed = handle.borrow().cluster().util_stats().mean();
            let dev = model.observe(observed).abs();
            max_dev = max_dev.max(dev);
            samples += 1;
        }
    }

    let (final_imbalance, audit_ok) = {
        let sim = handle.borrow();
        (
            sim.cluster().util_stats().imbalance_ratio(),
            sim.audit_state().is_ok(),
        )
    };
    let wall_s = start.elapsed().as_secs_f64();

    let report = format!(
        "heavy-campaign flavor={} nodes={nodes} seed={seed} blocks={blocks} \
         sent={ops_sent} accepted={ops_accepted} live_files={} \
         imbalance={final_imbalance:.9} max_mean_field_dev={max_dev:.12} \
         audit={audit_ok}",
        flavor.name(),
        sizes.len(),
    );
    HeavyCampaign {
        flavor,
        nodes,
        seed,
        blocks,
        ops_sent,
        ops_accepted,
        final_imbalance,
        max_mean_field_dev: max_dev,
        mean_field_samples: samples,
        audit_ok,
        wall_s,
        report,
    }
}

/// Same-seed determinism at scale: two fresh heavy campaigns with
/// identical parameters must produce byte-identical reports.
#[derive(Debug, Clone)]
pub struct DeterminismCheck {
    /// The first run (the one reported in the artifact).
    pub campaign: HeavyCampaign,
    /// Whether the second run's report matched byte for byte.
    pub identical: bool,
}

/// Runs the campaign twice from scratch and compares reports.
pub fn check_campaign_determinism(
    flavor: Flavor,
    nodes: u32,
    seed: u64,
    blocks: u64,
) -> DeterminismCheck {
    let first = run_heavy_campaign(flavor, nodes, seed, blocks);
    let second = run_heavy_campaign(flavor, nodes, seed, blocks);
    let identical = first.report == second.report;
    DeterminismCheck {
        campaign: first,
        identical,
    }
}

/// Wall-clock of the same heavy-cell matrix at several worker counts.
///
/// This is the corrected form of the `BENCH_1.json` grid-scaling
/// measurement: its campaign cells finish in single-digit milliseconds,
/// so per-cell scheduling overhead swamps the worker speedup. A heavy
/// cell builds a large topology and pushes thousands of operations,
/// giving each worker enough work to show real scaling.
#[derive(Debug, Clone)]
pub struct HeavyGridScaling {
    /// Cells in the matrix (one heavy campaign per seed).
    pub cells: usize,
    /// Storage fleet size per cell.
    pub nodes: u32,
    /// `(workers, wall_seconds)` per measured pass.
    pub runs: Vec<(usize, f64)>,
    /// Whether every parallel pass reproduced the serial reports exactly.
    pub identical_to_serial: bool,
}

impl HeavyGridScaling {
    /// Wall seconds for the given worker count, if measured.
    pub fn seconds_at(&self, workers: usize) -> Option<f64> {
        self.runs
            .iter()
            .find(|(w, _)| *w == workers)
            .map(|(_, s)| *s)
    }

    /// Serial-over-parallel speedup for the given worker count.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        Some(self.seconds_at(1)? / self.seconds_at(workers)?)
    }
}

/// Runs one heavy campaign per seed, serially and then at each requested
/// worker count on the grid's work-stealing executor
/// ([`crate::grid::steal_execute`] — the ad-hoc claim-cursor pool this
/// module used to carry is gone), checking parallel reports against
/// serial.
pub fn measure_heavy_grid_scaling(
    flavor: Flavor,
    nodes: u32,
    seeds: &[u64],
    blocks: u64,
    worker_counts: &[usize],
) -> HeavyGridScaling {
    let start = Instant::now();
    let serial: Vec<String> = seeds
        .iter()
        .map(|&s| run_heavy_campaign(flavor, nodes, s, blocks).report)
        .collect();
    let mut runs = vec![(1usize, start.elapsed().as_secs_f64())];
    let mut identical = true;

    for &workers in worker_counts {
        if workers <= 1 {
            continue;
        }
        let start = Instant::now();
        let (reports, _stats) = crate::grid::steal_execute(seeds.len(), workers, |_w| {
            move |i: usize| run_heavy_campaign(flavor, nodes, seeds[i], blocks).report
        });
        runs.push((workers, start.elapsed().as_secs_f64()));
        identical &= reports.iter().zip(&serial).all(|(got, want)| got == want);
    }

    HeavyGridScaling {
        cells: seeds.len(),
        nodes,
        runs,
        identical_to_serial: identical,
    }
}

/// Renders the scaling artifact (`BENCH_3.json`).
pub fn bench3_json(
    cores: usize,
    variance: &VarianceScaling,
    campaigns: &[HeavyCampaign],
    determinism: &DeterminismCheck,
    grid: &HeavyGridScaling,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"themis-bench-v3\",\n");
    out.push_str("  \"schema_version\": 3,\n");
    let topo = crate::perf::HostTopology::detect();
    out.push_str(&format!(
        "  \"host\": {{\"cores\": {cores}, \"available_parallelism\": {}, \"logical_cores\": {}}},\n",
        topo.available_parallelism, topo.logical_cores
    ));
    out.push_str(&format!(
        "  \"variance_probe_cost_ratio\": {},\n",
        json_f64(variance.probe_cost_ratio())
    ));

    out.push_str("  \"variance_scaling\": [\n");
    for (i, p) in variance.points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"nodes\": {},\n", p.nodes));
        out.push_str(&format!("      \"build_s\": {},\n", json_f64(p.build_s)));
        out.push_str("      \"measurements\": [\n");
        push_measurements(&mut out, &[p.probe.clone(), p.execute.clone()], "        ");
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < variance.points.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"heavy_campaigns\": [\n");
    for (i, c) in campaigns.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"flavor\": \"{}\",\n", c.flavor.name()));
        out.push_str(&format!("      \"nodes\": {},\n", c.nodes));
        out.push_str(&format!("      \"seed\": {},\n", c.seed));
        out.push_str(&format!("      \"blocks\": {},\n", c.blocks));
        out.push_str(&format!("      \"ops_sent\": {},\n", c.ops_sent));
        out.push_str(&format!("      \"ops_accepted\": {},\n", c.ops_accepted));
        out.push_str(&format!(
            "      \"final_imbalance\": {},\n",
            json_f64(c.final_imbalance)
        ));
        out.push_str(&format!(
            "      \"max_mean_field_dev\": {},\n",
            json_f64(c.max_mean_field_dev)
        ));
        out.push_str(&format!(
            "      \"mean_field_samples\": {},\n",
            c.mean_field_samples
        ));
        out.push_str(&format!(
            "      \"mean_field_ok\": {},\n",
            c.mean_field_ok()
        ));
        out.push_str(&format!("      \"audit_ok\": {},\n", c.audit_ok));
        out.push_str(&format!("      \"wall_s\": {},\n", json_f64(c.wall_s)));
        out.push_str("      \"report\": ");
        push_json_str(&mut out, &c.report);
        out.push('\n');
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < campaigns.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"determinism\": {\n");
    out.push_str(&format!("    \"nodes\": {},\n", determinism.campaign.nodes));
    out.push_str(&format!("    \"seed\": {},\n", determinism.campaign.seed));
    out.push_str(&format!("    \"identical\": {},\n", determinism.identical));
    out.push_str("    \"report\": ");
    push_json_str(&mut out, &determinism.campaign.report);
    out.push_str("\n  },\n");

    out.push_str("  \"heavy_grid\": {\n");
    out.push_str(&format!("    \"cells\": {},\n", grid.cells));
    out.push_str(&format!("    \"nodes\": {},\n", grid.nodes));
    out.push_str(&format!(
        "    \"identical_to_serial\": {},\n",
        grid.identical_to_serial
    ));
    out.push_str("    \"runs\": [");
    for (i, (workers, secs)) in grid.runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"workers\": {workers}, \"wall_s\": {}, \"speedup\": {}}}",
            json_f64(*secs),
            json_f64(grid.speedup_at(*workers).unwrap_or(f64::NAN)),
        ));
    }
    out.push_str("]\n  }\n}\n");
    out
}

/// Writes the scaling artifact to `path`.
pub fn write_bench3_json(
    path: &std::path::Path,
    cores: usize,
    variance: &VarianceScaling,
    campaigns: &[HeavyCampaign],
    determinism: &DeterminismCheck,
    grid: &HeavyGridScaling,
) -> std::io::Result<()> {
    std::fs::write(
        path,
        bench3_json(cores, variance, campaigns, determinism, grid),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_probe_cost_is_flat_small_scale() {
        // The CI gate measures 10 vs 10k; keep the in-tree test cheap with
        // 10 vs 500 — the probe must already be size-independent there.
        let v = measure_variance_scaling(&[10, 500]);
        assert_eq!(v.points.len(), 2);
        let ratio = v.probe_cost_ratio();
        assert!(ratio.is_finite() && ratio > 0.0);
        for p in &v.points {
            assert!(p.probe.min_s > 0.0 && p.execute.min_s > 0.0);
        }
    }

    #[test]
    fn heavy_campaign_audits_and_tracks_mean_field() {
        let c = run_heavy_campaign(Flavor::Hdfs, 200, 0xbe, 4);
        assert!(c.audit_ok, "state audit failed: {}", c.report);
        assert!(c.ops_accepted > 0, "no operations landed: {}", c.report);
        assert!(
            c.mean_field_ok(),
            "mean-field deviation {} exceeds tolerance: {}",
            c.max_mean_field_dev,
            c.report
        );
        assert!(c.final_imbalance >= 1.0);
        assert_eq!(c.mean_field_samples, 4 * 3);
    }

    #[test]
    fn heavy_campaigns_are_deterministic_per_seed() {
        let d = check_campaign_determinism(Flavor::GlusterFs, 120, 7, 3);
        assert!(d.identical, "same-seed reports diverged");
        let other = run_heavy_campaign(Flavor::GlusterFs, 120, 8, 3);
        assert_ne!(d.campaign.report, other.report, "seed must matter");
    }

    #[test]
    fn heavy_grid_parallel_matches_serial() {
        let g = measure_heavy_grid_scaling(Flavor::Hdfs, 60, &[1, 2, 3, 4], 2, &[2]);
        assert!(g.identical_to_serial);
        assert_eq!(g.cells, 4);
        assert!(g.seconds_at(1).is_some() && g.seconds_at(2).is_some());
    }

    #[test]
    fn bench3_json_is_well_formed_enough() {
        let v = VarianceScaling {
            points: vec![VarianceScalingPoint {
                nodes: 10,
                build_s: 0.01,
                probe: RawMeasurement {
                    id: "scale/variance_probe_10".into(),
                    samples: 2,
                    iters_per_sample: 10,
                    mean_s: 1e-7,
                    min_s: 9e-8,
                    max_s: 2e-7,
                },
                execute: RawMeasurement {
                    id: "scale/execute_create_10".into(),
                    samples: 2,
                    iters_per_sample: 10,
                    mean_s: 1e-5,
                    min_s: 9e-6,
                    max_s: 2e-5,
                },
            }],
        };
        let c = HeavyCampaign {
            flavor: Flavor::Hdfs,
            nodes: 10_000,
            seed: 0xbe,
            blocks: 8,
            ops_sent: 1000,
            ops_accepted: 990,
            final_imbalance: 1.25,
            max_mean_field_dev: 1e-9,
            mean_field_samples: 24,
            audit_ok: true,
            wall_s: 3.0,
            report: "heavy-campaign \"quoted\"".into(),
        };
        let d = DeterminismCheck {
            campaign: c.clone(),
            identical: true,
        };
        let g = HeavyGridScaling {
            cells: 8,
            nodes: 500,
            runs: vec![(1, 4.0), (4, 1.25)],
            identical_to_serial: true,
        };
        let j = bench3_json(4, &v, std::slice::from_ref(&c), &d, &g);
        assert!(j.contains("\"schema\": \"themis-bench-v3\""));
        assert!(j.contains("\"schema_version\": 3"));
        assert!(j.contains("\"variance_probe_cost_ratio\""));
        assert!(j.contains("\"mean_field_ok\": true"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"speedup\": 3.2"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
