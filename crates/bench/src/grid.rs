//! Parallel campaign grid executor.
//!
//! Evaluation workloads are embarrassingly parallel across campaign cells:
//! every `(flavor, strategy, seed)` combination is an independent,
//! deterministic computation. [`run_grid`] executes such a matrix on a
//! self-scheduling worker pool (crossbeam scoped threads claiming cell
//! index batches from a shared atomic cursor, so fast cells never leave a
//! slow worker's queue stranded) and returns the results keyed by grid
//! index — the output is bit-identical regardless of worker count or
//! scheduling order, because each cell is a pure function of its
//! coordinates.
//!
//! The pool is deliberately share-nothing on the hot path: each worker
//! appends finished cells into a buffer it owns and counts its own
//! progress, so the only cross-core traffic while cells run is the claim
//! cursor (one fetch-add per batch). Buffers are merged and index-sorted
//! once, at join.

use crate::harness::{run_eval_faulted, EvalResult};
use simdfs::{BugSet, Flavor};
use std::sync::atomic::{AtomicUsize, Ordering};
use themis::VarianceWeights;

/// A campaign matrix: the cross product of flavors, strategies and seeds,
/// all sharing one budget/detector configuration.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Target flavors (outermost grid axis).
    pub flavors: Vec<Flavor>,
    /// Strategy names (middle axis), resolved via [`themis::by_name`].
    pub strategies: Vec<String>,
    /// RNG seeds (third axis).
    pub seeds: Vec<u64>,
    /// Fault profile names (innermost axis), resolved via
    /// [`simdfs::FaultPlan::named`]. Defaults to `["none"]`, which leaves
    /// the pre-existing three-axis matrix unchanged.
    pub fault_profiles: Vec<String>,
    /// Bug set every cell's simulator is built with.
    pub bugs: BugSet,
    /// Virtual time budget per campaign, in hours.
    pub hours: u64,
    /// Detector threshold `t`.
    pub threshold_t: f64,
    /// Load-variance weighting factors.
    pub weights: VarianceWeights,
    /// Worker threads. 0 means one per available core.
    pub workers: usize,
}

impl GridSpec {
    /// A grid over the given axes with the defaults the evaluation tables
    /// use (threshold 0.25, default weights, one worker per core).
    pub fn new(
        flavors: Vec<Flavor>,
        strategies: Vec<String>,
        seeds: Vec<u64>,
        bugs: BugSet,
        hours: u64,
    ) -> Self {
        GridSpec {
            flavors,
            strategies,
            seeds,
            fault_profiles: vec!["none".to_string()],
            bugs,
            hours,
            threshold_t: 0.25,
            weights: VarianceWeights::default(),
            workers: 0,
        }
    }

    /// Number of cells in the matrix.
    pub fn cells(&self) -> usize {
        self.flavors.len() * self.strategies.len() * self.seeds.len() * self.fault_profiles.len()
    }

    /// The `(flavor, strategy, seed, fault_profile)` coordinates of cell
    /// `index` (row-major: flavor outermost, fault profile innermost).
    pub fn coords(&self, index: usize) -> (Flavor, &str, u64, &str) {
        let per_seed = self.fault_profiles.len();
        let per_strategy = self.seeds.len() * per_seed;
        let per_flavor = self.strategies.len() * per_strategy;
        let f = index / per_flavor;
        let s = (index % per_flavor) / per_strategy;
        let sd = (index % per_strategy) / per_seed;
        let fp = index % per_seed;
        (
            self.flavors[f],
            &self.strategies[s],
            self.seeds[sd],
            &self.fault_profiles[fp],
        )
    }

    fn resolved_workers(&self) -> usize {
        let w = if self.workers == 0 {
            match DEFAULT_WORKERS.load(Ordering::Relaxed) {
                0 => std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
                n => n,
            }
        } else {
            self.workers
        };
        w.clamp(1, self.cells().max(1))
    }
}

/// Process-wide override applied when a spec leaves `workers` at 0 (its
/// "one per core" default). 0 means no override. Set from the `repro`
/// CLI's `--workers N` flag so scaling runs are reproducible without
/// editing code.
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the default worker count for every subsequent grid run whose
/// spec does not set one explicitly. Pass 0 to restore one-per-core.
pub fn set_default_workers(n: usize) {
    DEFAULT_WORKERS.store(n, Ordering::Relaxed);
}

/// One completed cell of the grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Position in the matrix (see [`GridSpec::coords`]).
    pub index: usize,
    /// Target flavor.
    pub flavor: Flavor,
    /// Strategy name.
    pub strategy: String,
    /// Campaign seed.
    pub seed: u64,
    /// Fault profile injected into this cell's simulator.
    pub fault_profile: String,
    /// The attributed campaign outcome.
    pub eval: EvalResult,
}

/// The outcome of a grid run.
#[derive(Debug)]
pub struct GridOutcome {
    /// Every cell, ordered by grid index — the ordering is a function of
    /// the spec alone, never of worker count or scheduling.
    pub cells: Vec<GridCell>,
    /// Cells completed per worker (progress accounting; sums to
    /// `cells.len()`).
    pub per_worker_completed: Vec<u64>,
}

/// Runs one cell (also the serial reference path used by tests).
pub fn run_cell(spec: &GridSpec, index: usize) -> GridCell {
    let (flavor, strategy, seed, fault_profile) = spec.coords(index);
    let eval = run_eval_faulted(
        flavor,
        strategy,
        spec.bugs.clone(),
        spec.hours,
        seed,
        spec.threshold_t,
        spec.weights,
        fault_profile,
    );
    GridCell {
        index,
        flavor,
        strategy: strategy.to_string(),
        seed,
        fault_profile: fault_profile.to_string(),
        eval,
    }
}

/// Keeps the shared claim cursor on its own cache line so the only
/// genuinely shared hot word never false-shares with worker state.
#[repr(align(64))]
struct CacheAligned<T>(T);

/// Executes the full matrix on the worker pool.
///
/// Cell indices are handed out through a shared atomic cursor in small
/// batches: a worker finishing its batch immediately claims the next
/// unstarted one, so the pool stays busy even when cell runtimes vary
/// wildly (different flavors reach very different iteration counts in the
/// same virtual budget). Batches are sized so every worker makes at least
/// ~8 claims — coarse enough to keep cursor traffic negligible on big
/// matrices, fine enough that uneven cells still balance. Workers own
/// their output buffers and progress counts outright; results are merged
/// and sorted by grid index after the join, which keeps the hot path free
/// of locks and false sharing.
pub fn run_grid(spec: &GridSpec) -> GridOutcome {
    let n = spec.cells();
    let workers = spec.resolved_workers();
    if workers <= 1 || n <= 1 {
        // Serial fast path: no thread machinery at all.
        let cells: Vec<GridCell> = (0..n).map(|i| run_cell(spec, i)).collect();
        return GridOutcome {
            cells,
            per_worker_completed: vec![n as u64],
        };
    }
    let batch = (n / (workers * 8)).max(1);
    let next = CacheAligned(AtomicUsize::new(0));
    let next = &next;
    let outputs: Vec<(Vec<GridCell>, u64)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move |_| {
                    let mut mine: Vec<GridCell> = Vec::new();
                    loop {
                        let lo = next.0.fetch_add(batch, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + batch).min(n);
                        for i in lo..hi {
                            mine.push(run_cell(spec, i));
                        }
                    }
                    let done = mine.len() as u64;
                    (mine, done)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid worker panicked"))
            .collect()
    })
    .expect("grid scope failed");
    let per_worker_completed: Vec<u64> = outputs.iter().map(|(_, done)| *done).collect();
    let mut cells: Vec<GridCell> = outputs.into_iter().flat_map(|(cells, _)| cells).collect();
    cells.sort_unstable_by_key(|c| c.index);
    assert_eq!(
        cells.len(),
        n,
        "every cell index must be claimed exactly once"
    );
    GridOutcome {
        cells,
        per_worker_completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(workers: usize) -> GridSpec {
        GridSpec {
            workers,
            ..GridSpec::new(
                vec![Flavor::GlusterFs, Flavor::Hdfs],
                vec!["Themis-".into()],
                vec![3, 11],
                BugSet::None,
                1,
            )
        }
    }

    #[test]
    fn coords_cover_the_matrix_row_major() {
        let spec = tiny_spec(1);
        assert_eq!(spec.cells(), 4);
        assert_eq!(spec.coords(0), (Flavor::GlusterFs, "Themis-", 3, "none"));
        assert_eq!(spec.coords(1), (Flavor::GlusterFs, "Themis-", 11, "none"));
        assert_eq!(spec.coords(2), (Flavor::Hdfs, "Themis-", 3, "none"));
        assert_eq!(spec.coords(3), (Flavor::Hdfs, "Themis-", 11, "none"));
    }

    #[test]
    fn fault_axis_is_innermost() {
        let spec = GridSpec {
            fault_profiles: vec!["none".into(), "crash".into()],
            ..tiny_spec(1)
        };
        assert_eq!(spec.cells(), 8);
        assert_eq!(spec.coords(0), (Flavor::GlusterFs, "Themis-", 3, "none"));
        assert_eq!(spec.coords(1), (Flavor::GlusterFs, "Themis-", 3, "crash"));
        assert_eq!(spec.coords(2), (Flavor::GlusterFs, "Themis-", 11, "none"));
        assert_eq!(spec.coords(3), (Flavor::GlusterFs, "Themis-", 11, "crash"));
        assert_eq!(spec.coords(7), (Flavor::Hdfs, "Themis-", 11, "crash"));
    }

    #[test]
    fn grid_completes_every_cell_in_index_order() {
        let spec = tiny_spec(2);
        let out = run_grid(&spec);
        assert_eq!(out.cells.len(), 4);
        for (i, cell) in out.cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            let (f, s, sd, fp) = spec.coords(i);
            assert_eq!(
                (
                    cell.flavor,
                    cell.strategy.as_str(),
                    cell.seed,
                    cell.fault_profile.as_str()
                ),
                (f, s, sd, fp)
            );
            assert!(cell.eval.campaign.iterations > 0);
        }
        assert_eq!(out.per_worker_completed.len(), 2);
        assert_eq!(out.per_worker_completed.iter().sum::<u64>(), 4);
    }

    #[test]
    fn worker_count_is_clamped_to_cells() {
        let spec = tiny_spec(64);
        let out = run_grid(&spec);
        assert_eq!(out.per_worker_completed.len(), 4);
    }

    #[test]
    fn serial_path_reports_one_worker() {
        let spec = tiny_spec(1);
        let out = run_grid(&spec);
        assert_eq!(out.per_worker_completed, vec![4]);
        assert_eq!(out.cells.len(), 4);
    }

    #[test]
    fn batched_pickup_still_covers_every_cell_in_order() {
        // 32 cells on 2 workers → batch size 2: exercises the multi-cell
        // claim path and the merge-sort at join.
        let spec = GridSpec {
            workers: 2,
            ..GridSpec::new(
                vec![Flavor::GlusterFs, Flavor::Hdfs],
                vec!["Themis-".into()],
                (0..16u64).collect(),
                BugSet::None,
                1,
            )
        };
        assert_eq!(spec.cells(), 32);
        let out = run_grid(&spec);
        assert_eq!(out.cells.len(), 32);
        for (i, cell) in out.cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
        assert_eq!(out.per_worker_completed.iter().sum::<u64>(), 32);
    }
}
