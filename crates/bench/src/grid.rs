//! Parallel campaign grid executor.
//!
//! Evaluation workloads are embarrassingly parallel across campaign cells:
//! every `(flavor, strategy, seed, fault_profile)` combination is an
//! independent, deterministic computation. [`run_grid`] executes such a
//! matrix on a work-stealing pool and returns the results keyed by grid
//! index — the output is bit-identical regardless of worker count or steal
//! schedule, because each cell is a pure function of its coordinates.
//!
//! Three things make the pool scale where the previous shared-cursor
//! version did not:
//!
//! 1. **Per-worker simulator reuse.** Each worker owns one
//!    [`CellRunner`] per flavor it touches: a single deploy, base-marked,
//!    then rewound between cells via `restore_to_base` (a pristine-clone
//!    restore) instead of re-ingesting the whole topology per cell. A
//!    grid's total deploy count drops from `cells` to at most
//!    `workers × flavors`, which [`WorkerStats::redeploys`] proves.
//! 2. **Work stealing.** Cell indices are seeded into per-worker FIFO
//!    deques with a strided partition (`index % workers`), so neighboring
//!    indices — which correlate with the heavy axes, flavor above all —
//!    start on different workers. A worker that drains its own deque
//!    steals half a victim's queue at a time, scanning victims in ring
//!    order; a straggler's backlog migrates instead of stranding the pool.
//! 3. **Sharded collection.** Workers append finished cells into buffers
//!    they own (preallocated to the expected share) and the shards are
//!    merged by grid index once, at join. The hot path shares only the
//!    deques and one remaining-cells counter.

use crate::harness::{run_eval_cell, CellRunner, EvalResult};
use crossbeam::deque::{Steal, Stealer, Worker};
use simdfs::{BugSet, Flavor};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use themis::VarianceWeights;

/// A campaign matrix: the cross product of flavors, strategies and seeds,
/// all sharing one budget/detector configuration.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Target flavors (outermost grid axis).
    pub flavors: Vec<Flavor>,
    /// Strategy names (middle axis), resolved via [`themis::by_name`].
    pub strategies: Vec<String>,
    /// RNG seeds (third axis).
    pub seeds: Vec<u64>,
    /// Fault profile names (innermost axis), resolved via
    /// [`simdfs::FaultPlan::named`]. Defaults to `["none"]`, which leaves
    /// the pre-existing three-axis matrix unchanged.
    pub fault_profiles: Vec<String>,
    /// Bug set every cell's simulator is built with.
    pub bugs: BugSet,
    /// Virtual time budget per campaign, in hours.
    pub hours: u64,
    /// Detector threshold `t`.
    pub threshold_t: f64,
    /// Load-variance weighting factors.
    pub weights: VarianceWeights,
    /// Worker threads. 0 means one per available core.
    pub workers: usize,
    /// Deploy every cell's simulator at this many storage nodes
    /// ([`simdfs::FlavorConfig::scaled`]) instead of the flavor's stock
    /// topology. `None` (the default) keeps stock. This is what lets the
    /// BENCH_4 scaling artifact run heavy ~100 ms cells through the same
    /// executor the paper tables use.
    pub scale_nodes: Option<u32>,
}

impl GridSpec {
    /// A grid over the given axes with the defaults the evaluation tables
    /// use (threshold 0.25, default weights, one worker per core).
    pub fn new(
        flavors: Vec<Flavor>,
        strategies: Vec<String>,
        seeds: Vec<u64>,
        bugs: BugSet,
        hours: u64,
    ) -> Self {
        GridSpec {
            flavors,
            strategies,
            seeds,
            fault_profiles: vec!["none".to_string()],
            bugs,
            hours,
            threshold_t: 0.25,
            weights: VarianceWeights::default(),
            workers: 0,
            scale_nodes: None,
        }
    }

    /// Number of cells in the matrix.
    pub fn cells(&self) -> usize {
        self.flavors.len() * self.strategies.len() * self.seeds.len() * self.fault_profiles.len()
    }

    /// The `(flavor, strategy, seed, fault_profile)` coordinates of cell
    /// `index` (row-major: flavor outermost, fault profile innermost).
    pub fn coords(&self, index: usize) -> (Flavor, &str, u64, &str) {
        let per_seed = self.fault_profiles.len();
        let per_strategy = self.seeds.len() * per_seed;
        let per_flavor = self.strategies.len() * per_strategy;
        let f = index / per_flavor;
        let s = (index % per_flavor) / per_strategy;
        let sd = (index % per_strategy) / per_seed;
        let fp = index % per_seed;
        (
            self.flavors[f],
            &self.strategies[s],
            self.seeds[sd],
            &self.fault_profiles[fp],
        )
    }

    /// Position of cell `index`'s flavor within `self.flavors` (the
    /// worker-local [`CellRunner`] pool is indexed by this).
    fn flavor_slot(&self, index: usize) -> usize {
        let per_flavor = self.strategies.len() * self.seeds.len() * self.fault_profiles.len();
        index / per_flavor
    }

    fn resolved_workers(&self) -> usize {
        let w = if self.workers == 0 {
            match DEFAULT_WORKERS.load(Ordering::Relaxed) {
                0 => std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
                n => n,
            }
        } else {
            self.workers
        };
        w.clamp(1, self.cells().max(1))
    }
}

/// Process-wide override applied when a spec leaves `workers` at 0 (its
/// "one per core" default). 0 means no override. Set from the `repro`
/// CLI's `--workers N` flag so scaling runs are reproducible without
/// editing code.
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the default worker count for every subsequent grid run whose
/// spec does not set one explicitly. Pass 0 to restore one-per-core.
pub fn set_default_workers(n: usize) {
    DEFAULT_WORKERS.store(n, Ordering::Relaxed);
}

/// One completed cell of the grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Position in the matrix (see [`GridSpec::coords`]).
    pub index: usize,
    /// Target flavor.
    pub flavor: Flavor,
    /// Strategy name.
    pub strategy: String,
    /// Campaign seed.
    pub seed: u64,
    /// Fault profile injected into this cell's simulator.
    pub fault_profile: String,
    /// The attributed campaign outcome.
    pub eval: EvalResult,
}

/// Per-worker execution counters. Under stealing, "which worker ran cell
/// i" is schedule-dependent, so a bare completion count says nothing
/// useful; these three numbers are what straggler diagnosis actually
/// needs: how much work each worker did, how much of it was taken from
/// other workers' queues, and how long it was busy doing it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Cells this worker executed (local + stolen).
    pub cells_run: u64,
    /// Of [`WorkerStats::cells_run`], cells seeded into *another*
    /// worker's deque (tracked by origin tag, so a cell stolen in a batch
    /// and later popped locally still counts as stolen).
    pub cells_stolen: u64,
    /// Wall-clock nanoseconds spent executing cells (excludes idle
    /// spinning while out of work).
    pub busy_ns: u64,
    /// Full simulator deploys this worker performed — at most one per
    /// flavor it touched, thanks to [`CellRunner`] reuse.
    pub redeploys: u64,
}

/// The outcome of a grid run.
#[derive(Debug)]
pub struct GridOutcome {
    /// Every cell, ordered by grid index — the ordering is a function of
    /// the spec alone, never of worker count or scheduling.
    pub cells: Vec<GridCell>,
    /// Per-worker counters; `cells_run` sums to `cells.len()`.
    pub worker_stats: Vec<WorkerStats>,
}

impl GridOutcome {
    /// Total full simulator deploys across the pool. With per-worker
    /// reuse this is bounded by `workers × flavors` no matter how many
    /// cells ran.
    pub fn redeploys(&self) -> u64 {
        self.worker_stats.iter().map(|s| s.redeploys).sum()
    }
}

/// Runs one cell from a fresh deploy — the serial reference path the
/// determinism tests compare the reusing executor against.
pub fn run_cell(spec: &GridSpec, index: usize) -> GridCell {
    let (flavor, strategy, seed, fault_profile) = spec.coords(index);
    let eval = run_eval_cell(
        flavor,
        strategy,
        spec.bugs.clone(),
        spec.hours,
        seed,
        spec.threshold_t,
        spec.weights,
        fault_profile,
        spec.scale_nodes,
    );
    GridCell {
        index,
        flavor,
        strategy: strategy.to_string(),
        seed,
        fault_profile: fault_profile.to_string(),
        eval,
    }
}

/// Keeps the shared remaining-cells counter on its own cache line so the
/// only genuinely shared hot word never false-shares with worker state.
#[repr(align(64))]
struct CacheAligned<T>(T);

/// Context captured when a worker's task panics: which worker was
/// running which task, and the panic payload rendered to a string.
#[derive(Debug, Clone)]
struct TaskPanic {
    worker: usize,
    task: usize,
    message: String,
}

/// Renders a caught panic payload (the common `&str`/`String` cases;
/// anything else is labelled as opaque rather than dropped).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Generic work-stealing executor: runs tasks `0..n` across `workers`
/// threads and returns every task's result (indexed by task id) plus
/// per-worker counters.
///
/// Task ids are seeded into per-worker FIFO deques with a strided
/// partition (`id % workers`); an idle worker steals half a victim's
/// deque at a time, scanning victims in ring order starting from its
/// right-hand neighbor. Tasks carry their origin worker, so
/// [`WorkerStats::cells_stolen`] counts true migrations even when a
/// batch-stolen task is popped locally later.
///
/// `make_worker` runs once *inside* each spawned thread and builds that
/// worker's task closure — worker state (simulator pools here) never
/// crosses a thread boundary, so it does not need to be `Send`. The task
/// closure must be a pure function of the task id; the executor asserts
/// every id is executed exactly once, and the strided seeding plus FIFO
/// discipline keep the *schedule* reproducible for a given (n, workers)
/// when no stealing occurs.
///
/// If a task panics, the executor aborts the grid cleanly: the unwind is
/// caught, sibling workers stop draining (instead of spinning forever on
/// the remaining-cells counter), every completed shard is still merged,
/// and the re-raised panic names the worker, the in-flight cell index,
/// the original payload, and how many cells had completed.
pub fn steal_execute<T, M, F>(
    n: usize,
    workers: usize,
    make_worker: M,
) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    M: Fn(usize) -> F + Sync,
    F: FnMut(usize) -> T,
{
    assert!(workers >= 1, "steal_execute needs at least one worker");
    let queues: Vec<Worker<(usize, usize)>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    for i in 0..n {
        // Strided initial partition: contiguous ranges correlate with the
        // heavy grid axes (all of one flavor's cells are adjacent), so
        // deal indices round-robin instead.
        queues[i % workers].push((i, i % workers));
    }
    let stealers: Vec<Stealer<(usize, usize)>> = queues.iter().map(|q| q.stealer()).collect();
    let stealers = &stealers;
    let remaining = CacheAligned(AtomicUsize::new(n));
    let remaining = &remaining;
    let make_worker = &make_worker;
    // A panicking task must not take its context down with it: the worker
    // catches the unwind, records (worker, task, payload) here, and raises
    // the abort flag so sibling workers stop draining instead of spinning
    // on a remaining-count that can no longer reach zero.
    let aborted = &std::sync::atomic::AtomicBool::new(false);
    let panics = &std::sync::Mutex::new(Vec::<TaskPanic>::new());

    let shards: Vec<(Vec<(usize, T)>, WorkerStats)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = queues
            .into_iter()
            .enumerate()
            .map(|(w, q)| {
                s.spawn(move |_| {
                    let mut run = make_worker(w);
                    let mut stats = WorkerStats::default();
                    let mut shard: Vec<(usize, T)> = Vec::with_capacity(n / workers + 1);
                    loop {
                        if aborted.load(Ordering::Acquire) {
                            break;
                        }
                        // Own deque first; then scan victims ring-order.
                        let task = q.pop().or_else(|| {
                            (1..workers).find_map(|k| {
                                let victim = &stealers[(w + k) % workers];
                                loop {
                                    match victim.steal_batch_and_pop(&q) {
                                        Steal::Success(t) => break Some(t),
                                        Steal::Empty => break None,
                                        Steal::Retry => continue,
                                    }
                                }
                            })
                        });
                        match task {
                            Some((i, origin)) => {
                                let t0 = std::time::Instant::now();
                                let result =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        run(i)
                                    }));
                                stats.busy_ns += t0.elapsed().as_nanos() as u64;
                                match result {
                                    Ok(t) => {
                                        stats.cells_run += 1;
                                        if origin != w {
                                            stats.cells_stolen += 1;
                                        }
                                        shard.push((i, t));
                                        remaining.0.fetch_sub(1, Ordering::Release);
                                    }
                                    Err(payload) => {
                                        panics.lock().expect("panic log poisoned").push(
                                            TaskPanic {
                                                worker: w,
                                                task: i,
                                                message: payload_message(&*payload),
                                            },
                                        );
                                        aborted.store(true, Ordering::Release);
                                        break;
                                    }
                                }
                            }
                            None => {
                                // Nothing stealable *right now*, but a task
                                // in flight elsewhere may still land in a
                                // victim's deque via a batch steal — only
                                // the global counter says we are done.
                                if remaining.0.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    (shard, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| {
                h.join()
                    .unwrap_or_else(|_| panic!("grid worker {w} panicked outside task execution"))
            })
            .collect()
    })
    .expect("grid scope failed");

    let mut stats = Vec::with_capacity(workers);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (shard, st) in shards {
        stats.push(st);
        for (i, t) in shard {
            assert!(slots[i].is_none(), "task {i} executed more than once");
            slots[i] = Some(t);
        }
    }
    // Every surviving shard is merged above before a task panic is
    // re-raised, so the failure message can report exactly how much of the
    // grid completed (and with which context the rest was lost).
    let panics = panics.lock().expect("panic log poisoned");
    if let Some(p) = panics.first() {
        let completed = slots.iter().filter(|s| s.is_some()).count();
        panic!(
            "grid worker {} panicked while running cell {}: {}; \
             {completed}/{n} cells completed before the grid aborted",
            p.worker, p.task, p.message
        );
    }
    let results: Vec<T> = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("task {i} never executed")))
        .collect();
    (results, stats)
}

/// Executes the full matrix on the work-stealing pool (see the module
/// docs for the architecture). Every worker lazily builds one
/// [`CellRunner`] per flavor on first contact and reuses it — via
/// base-mark restore — for every later cell of that flavor, so the
/// executor's deploy count is `Σ` (flavors each worker touched), not the
/// cell count. Results are bit-identical to [`run_cell`]'s fresh-deploy
/// reference at every worker count and steal schedule.
pub fn run_grid(spec: &GridSpec) -> GridOutcome {
    let n = spec.cells();
    if n == 0 {
        return GridOutcome {
            cells: Vec::new(),
            worker_stats: Vec::new(),
        };
    }
    let workers = spec.resolved_workers();
    // Redeploys are counted through shared slots (not WorkerStats directly)
    // because the runner pool lives inside the worker closure, which
    // steal_execute owns until join.
    let redeploy_counts: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let redeploy_counts = &redeploy_counts;
    let (cells, mut stats) = steal_execute(n, workers, |w| {
        let mut pool: Vec<Option<CellRunner>> = spec.flavors.iter().map(|_| None).collect();
        move |i| {
            let (flavor, strategy, seed, fault_profile) = spec.coords(i);
            let runner = pool[spec.flavor_slot(i)].get_or_insert_with(|| {
                redeploy_counts[w].fetch_add(1, Ordering::Relaxed);
                CellRunner::new(flavor, spec.bugs.clone(), spec.scale_nodes)
            });
            let eval = runner.run(
                strategy,
                spec.hours,
                seed,
                spec.threshold_t,
                spec.weights,
                fault_profile,
            );
            GridCell {
                index: i,
                flavor,
                strategy: strategy.to_string(),
                seed,
                fault_profile: fault_profile.to_string(),
                eval,
            }
        }
    });
    for (w, st) in stats.iter_mut().enumerate() {
        st.redeploys = redeploy_counts[w].load(Ordering::Relaxed);
    }
    GridOutcome {
        cells,
        worker_stats: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(workers: usize) -> GridSpec {
        GridSpec {
            workers,
            ..GridSpec::new(
                vec![Flavor::GlusterFs, Flavor::Hdfs],
                vec!["Themis-".into()],
                vec![3, 11],
                BugSet::None,
                1,
            )
        }
    }

    #[test]
    fn coords_cover_the_matrix_row_major() {
        let spec = tiny_spec(1);
        assert_eq!(spec.cells(), 4);
        assert_eq!(spec.coords(0), (Flavor::GlusterFs, "Themis-", 3, "none"));
        assert_eq!(spec.coords(1), (Flavor::GlusterFs, "Themis-", 11, "none"));
        assert_eq!(spec.coords(2), (Flavor::Hdfs, "Themis-", 3, "none"));
        assert_eq!(spec.coords(3), (Flavor::Hdfs, "Themis-", 11, "none"));
        assert_eq!(spec.flavor_slot(0), 0);
        assert_eq!(spec.flavor_slot(1), 0);
        assert_eq!(spec.flavor_slot(2), 1);
        assert_eq!(spec.flavor_slot(3), 1);
    }

    #[test]
    fn fault_axis_is_innermost() {
        let spec = GridSpec {
            fault_profiles: vec!["none".into(), "crash".into()],
            ..tiny_spec(1)
        };
        assert_eq!(spec.cells(), 8);
        assert_eq!(spec.coords(0), (Flavor::GlusterFs, "Themis-", 3, "none"));
        assert_eq!(spec.coords(1), (Flavor::GlusterFs, "Themis-", 3, "crash"));
        assert_eq!(spec.coords(2), (Flavor::GlusterFs, "Themis-", 11, "none"));
        assert_eq!(spec.coords(3), (Flavor::GlusterFs, "Themis-", 11, "crash"));
        assert_eq!(spec.coords(7), (Flavor::Hdfs, "Themis-", 11, "crash"));
    }

    #[test]
    fn grid_completes_every_cell_in_index_order() {
        let spec = tiny_spec(2);
        let out = run_grid(&spec);
        assert_eq!(out.cells.len(), 4);
        for (i, cell) in out.cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            let (f, s, sd, fp) = spec.coords(i);
            assert_eq!(
                (
                    cell.flavor,
                    cell.strategy.as_str(),
                    cell.seed,
                    cell.fault_profile.as_str()
                ),
                (f, s, sd, fp)
            );
            assert!(cell.eval.campaign.iterations > 0);
        }
        assert_eq!(out.worker_stats.len(), 2);
        assert_eq!(out.worker_stats.iter().map(|s| s.cells_run).sum::<u64>(), 4);
    }

    #[test]
    fn worker_count_is_clamped_to_cells() {
        let spec = tiny_spec(64);
        let out = run_grid(&spec);
        assert_eq!(out.worker_stats.len(), 4);
    }

    #[test]
    fn single_worker_runs_everything_itself() {
        let spec = tiny_spec(1);
        let out = run_grid(&spec);
        assert_eq!(out.cells.len(), 4);
        assert_eq!(out.worker_stats.len(), 1);
        let st = out.worker_stats[0];
        assert_eq!(st.cells_run, 4);
        assert_eq!(st.cells_stolen, 0, "one worker has nobody to steal from");
        assert!(st.busy_ns > 0);
    }

    #[test]
    fn reuse_pins_redeploys_to_workers_times_flavors() {
        // 2 flavors × 8 seeds = 16 cells on 2 workers: without reuse this
        // would deploy 16 simulators; with it, at most 2 × 2.
        let spec = GridSpec {
            workers: 2,
            ..GridSpec::new(
                vec![Flavor::GlusterFs, Flavor::Hdfs],
                vec!["Themis-".into()],
                (0..8u64).collect(),
                BugSet::None,
                1,
            )
        };
        let out = run_grid(&spec);
        assert_eq!(out.cells.len(), 16);
        let redeploys = out.redeploys();
        assert!(
            (1..=4).contains(&redeploys),
            "2 workers × 2 flavors caps deploys at 4, got {redeploys}"
        );
    }

    #[test]
    fn strided_seeding_interleaves_flavors_across_workers() {
        // Generic-executor check: with 2 workers and no stealing possible
        // (both equally loaded, trivial tasks), worker w must run exactly
        // the ids with id % 2 == w.
        let (results, stats) = steal_execute(8, 2, |w| move |i: usize| (w, i));
        for (i, (_w, id)) in results.iter().enumerate() {
            assert_eq!(*id, i, "results are keyed by task id");
        }
        let total: u64 = stats.iter().map(|s| s.cells_run).sum();
        assert_eq!(total, 8);
        // Every task landed initially on id % 2; stolen or not, the
        // origin-tag bookkeeping must balance.
        let stolen: u64 = stats.iter().map(|s| s.cells_stolen).sum();
        assert!(stolen <= 8);
    }

    #[test]
    fn uneven_task_costs_get_stolen_not_stranded() {
        use std::sync::atomic::AtomicU64 as A;
        // Task 0 is ~1000x heavier than the rest and is seeded to worker
        // 0 along with tasks 2, 4, 6...; with stealing, other workers must
        // pick up worker 0's backlog: total cells_run by workers 1..3
        // must exceed their own initial share.
        let heavy_runs = A::new(0);
        let (results, stats) = steal_execute(64, 4, |_w| {
            let heavy_runs = &heavy_runs;
            move |i: usize| {
                if i == 0 {
                    heavy_runs.fetch_add(1, Ordering::Relaxed);
                    // Busy loop long enough for the others to drain and
                    // start stealing.
                    let mut acc = 0u64;
                    for k in 0..2_000_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    assert_ne!(acc, 1); // keep the loop un-optimizable
                }
                i as u64
            }
        });
        assert_eq!(results, (0..64).map(|i| i as u64).collect::<Vec<_>>());
        assert_eq!(stats.iter().map(|s| s.cells_run).sum::<u64>(), 64);
        assert_eq!(heavy_runs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_surfaces_context_and_completed_count() {
        let caught = std::panic::catch_unwind(|| {
            steal_execute(8, 2, |_w| {
                move |i: usize| {
                    if i == 5 {
                        panic!("cell exploded deterministically");
                    }
                    i
                }
            })
        });
        let payload = caught.expect_err("the grid must propagate the task panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("the grid panic carries a rich message");
        assert!(msg.contains("grid worker"), "names the worker: {msg}");
        assert!(msg.contains("cell 5"), "names the in-flight cell: {msg}");
        assert!(
            msg.contains("cell exploded deterministically"),
            "carries the original payload: {msg}"
        );
        assert!(
            msg.contains("cells completed"),
            "reports the merged shards: {msg}"
        );
    }
}
