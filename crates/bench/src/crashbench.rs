//! Bounded crash-exploration measurements behind the `BENCH_5.json`
//! artifact: one crash campaign per flavor (bounded crash-point
//! exploration of the migration pipeline plus the equal-budget
//! random-time baseline), run through the work-stealing executor, with a
//! same-seed byte-identity check over the canonical report and fork
//! throughput kept outside the compared bytes.

use crate::grid::steal_execute;
use crate::perf::{json_f64, push_json_str, HostTopology};
use adaptors::SimAdaptor;
use simdfs::{BugSet, Flavor};
use std::time::Instant;
use themis::{run_crash_campaign, CrashCampaignResult, CrashExplorerConfig};

/// One flavor's crash campaign: both exploration arms.
#[derive(Debug, Clone)]
pub struct FlavorCrash {
    /// The simulated DFS flavor the campaign targeted.
    pub flavor: Flavor,
    /// Bounded arm + equal-budget random baseline.
    pub result: CrashCampaignResult,
}

/// The BENCH_5 measurement: every flavor's crash campaign, timed, plus a
/// from-scratch second pass compared byte for byte.
#[derive(Debug, Clone)]
pub struct CrashBench {
    /// One campaign per flavor, in [`Flavor::all`] order.
    pub cells: Vec<FlavorCrash>,
    /// Host CPU topology at measurement time.
    pub host: HostTopology,
    /// Wall seconds for the first (timed) pass.
    pub wall_s: f64,
    /// Whether a second from-scratch pass produced a byte-identical
    /// canonical report (wall time excluded — it is the one legitimate
    /// nondeterminism).
    pub identical: bool,
}

/// Crash-window bug classes bounded exploration must find on `flavor`.
/// Lost linkfiles need a DHT linkfile layer, which only the GlusterFS
/// model has (`hash_cache_ttl_ms > 0`); the two accounting classes are
/// flavor-independent.
pub fn expected_classes(flavor: Flavor) -> &'static [&'static str] {
    match flavor {
        Flavor::GlusterFs => &["double_counted_blocks", "lost_linkfile", "orphan_replica"],
        _ => &["double_counted_blocks", "orphan_replica"],
    }
}

impl FlavorCrash {
    /// Whether the bounded arm found every expected class for this flavor.
    pub fn all_classes_found(&self) -> bool {
        expected_classes(self.flavor)
            .iter()
            .all(|c| self.result.bounded.found(c))
    }

    /// Expected classes the random baseline did *not* find.
    pub fn baseline_missed(&self) -> usize {
        expected_classes(self.flavor)
            .iter()
            .filter(|c| !self.result.baseline.found(c))
            .count()
    }
}

impl CrashBench {
    /// Whether every flavor's bounded arm found every expected class.
    pub fn all_classes_found(&self) -> bool {
        self.cells.iter().all(|c| c.all_classes_found())
    }

    /// Whether some flavor's equal-budget random baseline missed at least
    /// one expected class (the claim that motivates bounded exploration).
    pub fn baseline_misses_at_least_one(&self) -> bool {
        self.cells.iter().any(|c| c.baseline_missed() >= 1)
    }

    /// Fork/restore cycles across both arms of every campaign.
    pub fn total_forks(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.result.bounded.forks + c.result.baseline.forks)
            .sum()
    }
}

/// Runs one crash campaign per flavor through the work-stealing executor
/// (each cell is one flavor; a fresh simulator per cell, so cells are
/// order-independent). Panics if a target rejects the campaign — every
/// simulated flavor advertises fork/restore and crash points.
pub fn run_crash_cells(cfg: &CrashExplorerConfig, workers: usize) -> Vec<FlavorCrash> {
    let flavors = Flavor::all();
    let (cells, _stats) = steal_execute(flavors.len(), workers, |_worker| {
        |i: usize| {
            let flavor = Flavor::all()[i];
            let mut adaptor = SimAdaptor::new(flavor, BugSet::None);
            let result = run_crash_campaign(&mut adaptor, cfg)
                .unwrap_or_else(|e| panic!("crash campaign on {}: {e}", flavor.name()));
            FlavorCrash { flavor, result }
        }
    });
    cells
}

/// Runs the BENCH_5 measurement: one timed pass over every flavor, then
/// an untimed from-scratch second pass whose canonical report is compared
/// byte for byte with the first.
pub fn measure_crashbench(cfg: &CrashExplorerConfig, workers: usize) -> CrashBench {
    let start = Instant::now();
    let cells = run_crash_cells(cfg, workers);
    let wall_s = start.elapsed().as_secs_f64();
    let second = run_crash_cells(cfg, workers);
    let identical = canonical_json(&cells) == canonical_json(&second);
    CrashBench {
        cells,
        host: HostTopology::detect(),
        wall_s,
        identical,
    }
}

fn push_class_counts(out: &mut String, counts: &std::collections::BTreeMap<String, u64>) {
    out.push('{');
    for (i, (class, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_str(out, class);
        out.push_str(&format!(": {n}"));
    }
    out.push('}');
}

/// The deterministic section of the artifact: per-flavor crash-point
/// counts, fork budgets, and per-class findings for both arms. Two
/// same-seed passes must render this byte-identically; everything timed
/// stays out of it.
pub fn canonical_json(cells: &[FlavorCrash]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str("    ");
        push_json_str(&mut out, c.flavor.name());
        out.push_str(": {\n");
        out.push_str(&format!(
            "      \"crash_points\": {},\n",
            c.result.bounded.points_enumerated
        ));
        out.push_str(&format!(
            "      \"explored\": {},\n",
            c.result.bounded.explored
        ));
        out.push_str(&format!("      \"forks\": {},\n", c.result.bounded.forks));
        out.push_str(&format!("      \"clean\": {},\n", c.result.bounded.clean));
        out.push_str("      \"expected_classes\": [");
        for (j, class) in expected_classes(c.flavor).iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_str(&mut out, class);
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "      \"all_classes_found\": {},\n",
            c.all_classes_found()
        ));
        out.push_str("      \"bounded_by_class\": ");
        push_class_counts(&mut out, &c.result.bounded.by_class);
        out.push_str(",\n");
        out.push_str("      \"baseline_by_class\": ");
        push_class_counts(&mut out, &c.result.baseline.by_class);
        out.push_str(",\n");
        out.push_str(&format!(
            "      \"baseline_forks\": {},\n",
            c.result.baseline.forks
        ));
        out.push_str(&format!(
            "      \"baseline_missed\": {}\n",
            c.baseline_missed()
        ));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  }");
    out
}

/// Renders the crash-exploration artifact (`BENCH_5.json`).
pub fn bench5_json(bench: &CrashBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"themis-bench-v5\",\n");
    out.push_str("  \"schema_version\": 5,\n");
    out.push_str(&format!("  \"host\": {},\n", bench.host.to_json()));
    out.push_str(&format!("  \"wall_s\": {},\n", json_f64(bench.wall_s)));
    out.push_str(&format!("  \"forks\": {},\n", bench.total_forks()));
    let fps = if bench.wall_s > 0.0 {
        bench.total_forks() as f64 / bench.wall_s
    } else {
        f64::NAN
    };
    out.push_str(&format!("  \"forks_per_s\": {},\n", json_f64(fps)));
    out.push_str(&format!("  \"identical\": {},\n", bench.identical));
    out.push_str(&format!(
        "  \"all_classes_found\": {},\n",
        bench.all_classes_found()
    ));
    out.push_str(&format!(
        "  \"baseline_misses_at_least_one\": {},\n",
        bench.baseline_misses_at_least_one()
    ));
    out.push_str("  \"targets\": ");
    out.push_str(&canonical_json(&bench.cells));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced-budget config keeping the debug-build test fast: the
    /// bound caps crash-and-recover replays, not enumeration, so the
    /// per-flavor point counts still reflect the full window.
    fn small_cfg() -> CrashExplorerConfig {
        CrashExplorerConfig {
            bound: 6,
            ..CrashExplorerConfig::default()
        }
    }

    #[test]
    fn expected_classes_depend_on_the_linkfile_layer() {
        assert_eq!(expected_classes(Flavor::GlusterFs).len(), 3);
        for f in [Flavor::Hdfs, Flavor::CephFs, Flavor::LeoFs] {
            assert_eq!(expected_classes(f).len(), 2);
            assert!(!expected_classes(f).contains(&"lost_linkfile"));
        }
    }

    #[test]
    fn crash_cells_cover_every_flavor_in_order() {
        let cells = run_crash_cells(&small_cfg(), 2);
        let flavors: Vec<Flavor> = cells.iter().map(|c| c.flavor).collect();
        assert_eq!(flavors, Flavor::all().to_vec());
        for c in &cells {
            assert!(
                c.result.bounded.points_enumerated > 0,
                "{} enumerated no crash points",
                c.flavor.name()
            );
            assert_eq!(c.result.bounded.explored, 6, "{}", c.flavor.name());
            // Budget parity between the arms.
            assert_eq!(
                c.result.baseline.forks,
                c.result.bounded.forks,
                "{}",
                c.flavor.name()
            );
        }
    }

    #[test]
    fn measure_is_byte_identical_and_renders_well_formed_json() {
        let b = measure_crashbench(&small_cfg(), 2);
        assert!(b.identical, "same-seed crash campaigns diverged");
        assert_eq!(b.cells.len(), 4);
        assert!(b.total_forks() > 0);
        let j = bench5_json(&b);
        assert!(j.contains("\"schema\": \"themis-bench-v5\""));
        assert!(j.contains("\"schema_version\": 5"));
        assert!(j.contains("\"identical\": true"));
        assert!(j.contains("\"GlusterFS\": {"));
        assert!(j.contains("\"crash_points\": "));
        assert!(j.contains("\"bounded_by_class\": "));
        assert!(j.contains("\"baseline_missed\": "));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn full_budget_bounded_arm_beats_the_baseline_on_gluster() {
        // The acceptance claim at the artifact layer: with the default
        // budget the bounded arm finds every seeded class on GlusterFS
        // while the equal-budget random baseline misses at least one.
        // One flavor only — the four-flavor default run is repro's job.
        let mut adaptor = SimAdaptor::new(Flavor::GlusterFs, BugSet::None);
        let result = run_crash_campaign(&mut adaptor, &CrashExplorerConfig::default())
            .expect("campaign runs");
        let cell = FlavorCrash {
            flavor: Flavor::GlusterFs,
            result,
        };
        assert!(
            cell.all_classes_found(),
            "{:?}",
            cell.result.bounded.by_class
        );
        assert!(
            cell.baseline_missed() >= 1,
            "baseline found everything: {:?}",
            cell.result.baseline.by_class
        );
    }
}
