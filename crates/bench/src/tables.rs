//! Generators for every table and figure in the paper's evaluation.
//!
//! Each function returns the rendered text artifact (and the underlying
//! data where useful). The `repro` binary writes them under `results/`;
//! the Criterion benches run reduced-budget versions of the same code.

use crate::harness::{render_table, run_matrix, EvalResult};
use simdfs::bugs::catalog;
use simdfs::{BugSet, DfsRequest, DfsSim, Flavor, MIB};
use std::collections::BTreeSet;
use themis::VarianceWeights;

/// The paper's strategy order for comparison tables.
pub const STRATEGIES: [&str; 5] = ["Themis", "Fix_req", "Fix_conf", "Alternate", "Concurrent"];

/// Table 1: number of studied historical imbalance failures per platform.
pub fn table1() -> String {
    let counts = catalog::table1_counts();
    let mut row: Vec<String> = counts.iter().map(|(_, c)| c.to_string()).collect();
    row.push(counts.iter().map(|(_, c)| c).sum::<usize>().to_string());
    let mut headers: Vec<&str> = counts.iter().map(|(f, _)| f.name()).collect();
    headers.push("Total");
    let mut out = String::from("Table 1: number of imbalance failures analyzed.\n\n");
    out.push_str(&render_table(&headers, &[row]));
    out
}

/// Table 2: the previously unknown failures Themis finds in 24 hours.
pub fn table2(hours: u64, seed: u64) -> String {
    let results = crate::harness::run_strategy_all_flavors(
        "Themis",
        BugSet::New,
        hours,
        seed,
        0.25,
        VarianceWeights::default(),
    );
    let mut found: BTreeSet<String> = BTreeSet::new();
    for r in &results {
        found.extend(r.found.iter().cloned());
    }
    let mut rows = Vec::new();
    for (i, bug) in catalog::all_new_bugs().iter().enumerate() {
        let hit = if found.contains(bug.id) {
            "found"
        } else {
            "missed"
        };
        rows.push(vec![
            (i + 1).to_string(),
            bug.platform.name().to_string(),
            bug.kind.to_string(),
            hit.to_string(),
            bug.id.to_string(),
        ]);
    }
    let mut out = format!(
        "Table 2: new imbalance failures detected by Themis within {hours} virtual hours \
         ({} of {} found).\n\n",
        found.len(),
        catalog::all_new_bugs().len()
    );
    out.push_str(&render_table(
        &["#", "Platform", "Failure Type", "Status", "Identifier"],
        &rows,
    ));
    out
}

/// Table 3: failures found per method (new-bug set).
pub fn table3(
    hours: u64,
    seed: u64,
) -> (String, std::collections::BTreeMap<String, Vec<EvalResult>>) {
    let matrix = run_matrix(&STRATEGIES, BugSet::New, hours, seed);
    let mut rows = Vec::new();
    for name in STRATEGIES {
        let results = &matrix[name];
        let mut all: BTreeSet<&str> = BTreeSet::new();
        for r in results {
            for id in &r.found {
                all.insert(id.as_str());
            }
        }
        let ids: Vec<&str> = all.iter().copied().collect();
        rows.push(vec![
            name.to_string(),
            all.len().to_string(),
            ids.join(", "),
        ]);
    }
    let mut out = String::from(
        "Table 3: new imbalance failures found by Themis and the state-of-the-art methods.\n\n",
    );
    out.push_str(&render_table(
        &["Method", "Number", "Bug identifiers"],
        &rows,
    ));
    (out, matrix)
}

/// Table 4: historical failures reproduced per tool.
pub fn table4(hours: u64, seed: u64) -> String {
    let matrix = run_matrix(&STRATEGIES, BugSet::Historical, hours, seed);
    let totals: Vec<usize> = Flavor::all()
        .iter()
        .map(|f| catalog::historical_bugs(*f).len())
        .collect();
    let mut rows = Vec::new();
    for name in STRATEGIES {
        let results = &matrix[name];
        let mut row = vec![name.to_string()];
        let mut sum = 0;
        for (r, total) in results.iter().zip(&totals) {
            row.push(format!("{}/{}", r.found.len(), total));
            sum += r.found.len();
        }
        row.push(format!("{}/{}", sum, totals.iter().sum::<usize>()));
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["Tools"];
    headers.extend(Flavor::all().iter().map(|f| f.name()));
    headers.push("Total");
    let mut out =
        String::from("Table 4: historical imbalance failures reproduced by each tool.\n\n");
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\nNote: 5 of the 53 historical failures are gated on Windows-only or\n\
         hardware-fault environments and are unreachable on this testbed,\n\
         exactly as in the paper.\n",
    );
    out
}

/// Table 5: branch coverage per method per DFS (derived from a matrix run).
pub fn table5(matrix: &std::collections::BTreeMap<String, Vec<EvalResult>>) -> String {
    let mut rows = Vec::new();
    for flavor in Flavor::all() {
        let mut row = vec![flavor.name().to_string()];
        for name in STRATEGIES {
            let r = matrix[name]
                .iter()
                .find(|r| r.flavor == flavor)
                .expect("flavor present");
            row.push(r.campaign.final_coverage.to_string());
        }
        rows.push(row);
    }
    let mut headers = vec!["Method"];
    headers.extend(STRATEGIES);
    let mut out = String::from("Table 5: branch coverage on the four target DFSes.\n\n");
    out.push_str(&render_table(&headers, &rows));
    out
}

/// Table 6: Themis vs the Themis⁻ ablation (failures and coverage).
pub fn table6(hours: u64, seed: u64) -> String {
    let matrix = run_matrix(&["Themis", "Themis-"], BugSet::New, hours, seed);
    let mut rows = Vec::new();
    let (mut f_minus, mut f_full, mut c_minus, mut c_full) = (0usize, 0usize, 0u64, 0u64);
    for flavor in Flavor::all() {
        let full = matrix["Themis"]
            .iter()
            .find(|r| r.flavor == flavor)
            .expect("present");
        let minus = matrix["Themis-"]
            .iter()
            .find(|r| r.flavor == flavor)
            .expect("present");
        rows.push(vec![
            flavor.name().to_string(),
            minus.found.len().to_string(),
            full.found.len().to_string(),
            minus.campaign.final_coverage.to_string(),
            full.campaign.final_coverage.to_string(),
        ]);
        f_minus += minus.found.len();
        f_full += full.found.len();
        c_minus += minus.campaign.final_coverage;
        c_full += full.campaign.final_coverage;
    }
    let fail_impr = if f_minus > 0 {
        format!(
            "{:+.0}%",
            100.0 * (f_full as f64 - f_minus as f64) / f_minus as f64
        )
    } else {
        "n/a".into()
    };
    let cov_impr = if c_minus > 0 {
        format!(
            "{:+.1}%",
            100.0 * (c_full as f64 - c_minus as f64) / c_minus as f64
        )
    } else {
        "n/a".into()
    };
    rows.push(vec![
        "Improvement".into(),
        "-".into(),
        fail_impr,
        "-".into(),
        cov_impr,
    ]);
    let mut out =
        String::from("Table 6: comparison of Themis- (no load variance model) and Themis.\n\n");
    out.push_str(&render_table(
        &[
            "Target",
            "Failures (Themis-)",
            "Failures (Themis)",
            "Coverage (Themis-)",
            "Coverage (Themis)",
        ],
        &rows,
    ));
    out
}

/// Table 7: false/true positives across threshold values of `t`.
pub fn table7(hours: u64, seed: u64) -> String {
    let thresholds = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35];
    let mut fp_row = vec!["False Positives".to_string()];
    let mut tp_row = vec!["True Positives".to_string()];
    for &t in &thresholds {
        let results = crate::harness::run_strategy_all_flavors(
            "Themis",
            BugSet::New,
            hours,
            seed,
            t,
            VarianceWeights::default(),
        );
        let mut tp: BTreeSet<String> = BTreeSet::new();
        let mut fp = 0usize;
        for r in &results {
            tp.extend(r.found.iter().cloned());
            // Distinct false-positive reports per (flavor, kind), as the
            // paper counts deduplicated reported failures.
            fp += r.false_positive_kinds.len();
        }
        fp_row.push(fp.to_string());
        tp_row.push(tp.len().to_string());
    }
    let mut headers = vec!["Threshold t".to_string()];
    headers.extend(thresholds.iter().map(|t| format!("{:.0}%", t * 100.0)));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut out = String::from(
        "Table 7: false positives and true positives of Themis across threshold t values.\n\n",
    );
    out.push_str(&render_table(&headers_ref, &[fp_row, tp_row]));
    out
}

/// Table 8: average virtual minutes to trigger storage-imbalance failures
/// across storage-variance weighting factors.
pub fn table8(hours: u64, seed: u64) -> String {
    let weights = [
        ("1/6", 1.0 / 6.0),
        ("1/3", 1.0 / 3.0),
        ("1/2", 0.5),
        ("2/3", 2.0 / 3.0),
        ("1/1", 1.0),
    ];
    let storage_bugs: BTreeSet<&str> = catalog::all_new_bugs()
        .iter()
        .filter(|b| matches!(b.kind, simdfs::FailureKind::ImbalancedStorage))
        .map(|b| b.id)
        .collect();
    let mut time_row = vec!["Avg minutes to trigger storage imbalances".to_string()];
    for (_, w) in &weights {
        let results = crate::harness::run_strategy_all_flavors(
            "Themis",
            BugSet::New,
            hours,
            seed,
            0.25,
            VarianceWeights::storage_weighted(*w),
        );
        let mut times = Vec::new();
        for r in &results {
            for (id, min) in &r.first_trigger_min {
                if storage_bugs.contains(id.as_str()) {
                    times.push(*min);
                }
            }
        }
        let avg = if times.is_empty() {
            "n/a".to_string()
        } else {
            format!("{}", times.iter().sum::<u64>() / times.len() as u64)
        };
        time_row.push(avg);
    }
    let mut headers = vec!["Weighting factor of storage load"];
    headers.extend(weights.iter().map(|(n, _)| *n));
    let mut out = String::from(
        "Table 8: average time for Themis to trigger imbalanced-storage failures\n\
         under various storage-variance weighting factors.\n\n",
    );
    out.push_str(&render_table(&headers, &[time_row]));
    out
}

/// Fault matrix: Themis detector outcomes per (flavor, fault profile).
///
/// Every cell runs with no seeded DFS bugs (`BugSet::None`), so any
/// confirmed failure is caused solely by the injected environment fault —
/// the sweep demonstrates that crash, slow-node, lossy-migration and
/// partition faults change detector outcomes relative to the fault-free
/// baseline row.
pub fn fault_matrix(hours: u64, seed: u64) -> String {
    let spec = crate::grid::GridSpec {
        fault_profiles: simdfs::FaultPlan::profiles()
            .iter()
            .map(|p| p.to_string())
            .collect(),
        ..crate::grid::GridSpec::new(
            Flavor::all().to_vec(),
            vec!["Themis".to_string()],
            vec![seed],
            BugSet::None,
            hours,
        )
    };
    let outcome = crate::grid::run_grid(&spec);
    let mut rows = Vec::new();
    for cell in &outcome.cells {
        let mut kinds: std::collections::BTreeMap<String, usize> = Default::default();
        for c in &cell.eval.campaign.confirmed {
            *kinds.entry(c.kind.to_string()).or_default() += 1;
        }
        let confirmed = if kinds.is_empty() {
            "-".to_string()
        } else {
            kinds
                .iter()
                .map(|(k, n)| format!("{k}x{n}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        rows.push(vec![
            cell.flavor.name().to_string(),
            cell.fault_profile.clone(),
            confirmed,
            cell.eval.campaign.candidates_raised.to_string(),
            cell.eval.campaign.filtered_by_double_check.to_string(),
            cell.eval.bytes_lost.to_string(),
        ]);
    }
    let mut out = format!(
        "Fault matrix: Themis detector outcomes across fault profiles\n\
         ({hours} virtual hours per cell, seed {seed:#x}).\n\
         No seeded DFS bugs: every confirmation is caused by the injected\n\
         environment fault.\n\n"
    );
    out.push_str(&render_table(
        &[
            "Target",
            "Fault profile",
            "Confirmed failures",
            "Candidates",
            "Filtered",
            "Bytes lost",
        ],
        &rows,
    ));
    out
}

/// Figure 2: per-node storage utilization while reproducing GLUSTER-3356.
///
/// A scripted reproduction: resize-heavy client traffic plus storage-node
/// churn accumulates variance episodes until the bug fires
/// (MisreportRebalance: the rebalance API lies and data stops migrating),
/// after which the hotspot grows unchecked — the accumulation shape of the
/// paper's Figure 2.
pub fn figure2() -> String {
    let spec = catalog::all_historical_bugs()
        .into_iter()
        .find(|b| b.id == catalog::figure2_bug_id())
        .expect("figure-2 bug in catalog");
    let mut sim = DfsSim::new(Flavor::GlusterFs, BugSet::Custom(vec![spec]));
    let mut series: Vec<(u64, Vec<f64>, f64)> = Vec::new();
    // Seed working files.
    for i in 0..10 {
        let _ = sim.execute(&DfsRequest::Create {
            path: format!("/w{i}"),
            size: 64 * MIB,
        });
    }
    let mut step = 0u64;
    let sample = |sim: &mut DfsSim, step: u64, series: &mut Vec<(u64, Vec<f64>, f64)>| {
        let snap = sim.load_snapshot();
        let fills: Vec<f64> = snap
            .nodes
            .iter()
            .filter(|n| n.role == simdfs::NodeRole::Storage && n.capacity > 0)
            .map(|n| 100.0 * n.storage as f64 / n.capacity as f64)
            .collect();
        let ratio = snap.storage_imbalance();
        series.push((step, fills, ratio));
    };
    sample(&mut sim, step, &mut series);
    let mut grow = 1u64;
    for round in 0..160u64 {
        step += 1;
        // Resize-heavy client traffic with growing sizes.
        for i in 0..10 {
            grow = (grow % 7) + 1;
            let _ = sim.execute(&DfsRequest::Overwrite {
                path: format!("/w{i}"),
                size: (32 + 24 * grow) * MIB,
            });
        }
        // Periodic churn: shed two nodes, then bring two fresh (empty)
        // ones up back-to-back — the fresh pair drops the mean utilization
        // by ~20% and pushes the max/mean ratio through the episode
        // threshold until the balancer catches up.
        if round % 8 == 3 || round % 8 == 4 {
            let nodes = sim.cluster().online_storage();
            if nodes.len() > 6 {
                let victim = nodes[nodes.len() - 1];
                let _ = sim.execute(&DfsRequest::RemoveStorageNode { node: victim });
            }
        }
        if round % 8 == 7 {
            let _ = sim.execute(&DfsRequest::AddStorageNode {
                volumes: 2,
                capacity: 0,
            });
            let _ = sim.execute(&DfsRequest::AddStorageNode {
                volumes: 2,
                capacity: 0,
            });
        }
        // Heavy creates push variance between churn waves.
        if round % 4 == 0 {
            let _ = sim.execute(&DfsRequest::Create {
                path: format!("/big{round}"),
                size: 768 * MIB,
            });
        }
        sim.tick(10_000);
        sample(&mut sim, step, &mut series);
        let triggered = !sim.oracle_triggered().is_empty();
        let max_fill = series
            .last()
            .map(|(_, f, _)| f.iter().cloned().fold(0.0, f64::max));
        if triggered && max_fill.unwrap_or(0.0) > 88.0 {
            break;
        }
    }
    let triggered_at = sim
        .oracle_bugs()
        .first()
        .and_then(|b| b.triggered_at)
        .map(|t| t.as_mins_f64());
    let mut out = format!(
        "Figure 2: storage utilization of each storage node while reproducing {}.\n\
         Bug triggered at virtual minute {:?}; after the trigger the rebalance API\n\
         misreports success and the hotspot accumulates.\n\n\
         step  max/mean  per-node utilization %\n",
        catalog::figure2_bug_id(),
        triggered_at
    );
    for (step, fills, ratio) in series.iter().step_by(4) {
        let cells: Vec<String> = fills.iter().map(|f| format!("{f:5.1}")).collect();
        out.push_str(&format!("{step:>4}  {ratio:8.3}  {}\n", cells.join(" ")));
    }
    let final_ratio = series.last().map(|(_, _, r)| *r).unwrap_or(1.0);
    out.push_str(&format!(
        "\nFinal max/mean storage variance: {final_ratio:.3} (accumulated from ~1.0).\n"
    ));
    out
}

/// Figure 12: branch-coverage growth over time per method per DFS.
pub fn figure12(matrix: &std::collections::BTreeMap<String, Vec<EvalResult>>) -> String {
    let mut out = String::from(
        "Figure 12: branch coverage trends over the campaign (sampled every 30 virtual minutes).\n",
    );
    for flavor in Flavor::all() {
        out.push_str(&format!("\n== {} ==\n", flavor.name()));
        let mut headers = vec!["minute".to_string()];
        headers.extend(STRATEGIES.iter().map(|s| s.to_string()));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        // Collect traces resampled on a 30-minute grid.
        let mut rows = Vec::new();
        let budget_min = matrix[STRATEGIES[0]]
            .iter()
            .find(|r| r.flavor == flavor)
            .map(|r| {
                r.campaign
                    .coverage_trace
                    .last()
                    .map(|p| p.time_ms / 60_000)
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        let mut minute = 0;
        while minute <= budget_min {
            let mut row = vec![minute.to_string()];
            for name in STRATEGIES {
                let r = matrix[name]
                    .iter()
                    .find(|r| r.flavor == flavor)
                    .expect("present");
                let cov = r
                    .campaign
                    .coverage_trace
                    .iter()
                    .take_while(|p| p.time_ms <= minute * 60_000 + 59_999)
                    .last()
                    .map(|p| p.branches)
                    .unwrap_or(0);
                row.push(cov.to_string());
            }
            rows.push(row);
            minute += 30;
        }
        out.push_str(&render_table(&headers_ref, &rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_study_counts() {
        let t = table1();
        assert!(t.contains("18"));
        assert!(t.contains("53"));
    }

    #[test]
    fn figure2_shows_accumulation() {
        let f = figure2();
        assert!(f.contains("GLUSTER-3356"));
        // The final variance must be clearly imbalanced.
        let final_line = f.lines().last().unwrap_or("");
        assert!(final_line.contains("accumulated"), "{final_line}");
    }

    #[test]
    fn short_table2_runs() {
        let t = table2(1, 11);
        assert!(t.contains("Table 2"));
        assert!(t.contains("Bug#S24387"));
    }
}
