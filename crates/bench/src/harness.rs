//! Shared evaluation harness: runs campaigns against the simulated
//! flavors, attributes detector confirmations to ground-truth bugs through
//! the simulator oracle, and aggregates per-strategy results.

use adaptors::SimAdaptor;
use simdfs::{BugSet, Flavor};
use std::collections::{BTreeMap, BTreeSet};
use themis::{
    by_name, run_campaign_with_mode, CampaignConfig, CampaignObserver, CampaignResult,
    ConfirmedFailure, DetectorConfig, ExecutionMode, VarianceWeights,
};

/// Outcome of one evaluated campaign, with oracle attribution.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Target flavor.
    pub flavor: Flavor,
    /// Strategy name.
    pub strategy: String,
    /// Fault profile injected into the simulator ("none" when unfaulted).
    pub fault_profile: String,
    /// Bytes the simulator lost to faulty/lossy migrations.
    pub bytes_lost: u64,
    /// Distinct ground-truth bug ids credited with confirmed failures.
    pub found: BTreeSet<String>,
    /// Virtual minute each found bug first triggered.
    pub first_trigger_min: BTreeMap<String, u64>,
    /// Confirmed failures with no triggered bug behind them (false
    /// positives, before any deduplication).
    pub false_positive_confirms: u64,
    /// Distinct (kind) false-positive classes (the paper counts distinct
    /// reported failures).
    pub false_positive_kinds: BTreeSet<String>,
    /// The raw campaign result (coverage trace, ops, candidates, ...).
    pub campaign: CampaignResult,
}

/// Observer that attributes confirmations via the simulator oracle.
struct Attribution {
    handle: adaptors::SimHandle,
    found: BTreeSet<String>,
    first_trigger_min: BTreeMap<String, u64>,
    fp_confirms: u64,
    fp_kinds: BTreeSet<String>,
}

impl CampaignObserver for Attribution {
    fn on_confirmed(&mut self, f: &ConfirmedFailure) {
        let sim = self.handle.borrow();
        let triggered = sim.oracle_triggered();
        if triggered.is_empty() {
            self.fp_confirms += 1;
            self.fp_kinds.insert(f.kind.to_string());
        } else {
            for id in triggered {
                self.found.insert(id.to_string());
            }
        }
    }

    fn on_iteration(&mut self, now_ms: u64) {
        // Record first-trigger times before a reset re-arms the oracle.
        let sim = self.handle.borrow();
        for id in sim.oracle_triggered() {
            self.first_trigger_min
                .entry(id.to_string())
                .or_insert(now_ms / 60_000);
        }
    }
}

/// Runs one attributed campaign.
pub fn run_eval(
    flavor: Flavor,
    strategy_name: &str,
    bugs: BugSet,
    hours: u64,
    seed: u64,
    threshold_t: f64,
    weights: VarianceWeights,
) -> EvalResult {
    eval_inner(
        flavor,
        strategy_name,
        bugs,
        hours,
        seed,
        threshold_t,
        weights,
        true,
        "none",
        ExecutionMode::Accumulate,
        true,
    )
}

/// Like [`run_eval`] but with a deterministic fault plan injected into the
/// simulator. `fault_profile` must be one of
/// [`simdfs::FaultPlan::profiles`]; the plan is derived from
/// `(profile, seed)` so the whole cell stays a pure function of its grid
/// coordinates.
#[allow(clippy::too_many_arguments)]
pub fn run_eval_faulted(
    flavor: Flavor,
    strategy_name: &str,
    bugs: BugSet,
    hours: u64,
    seed: u64,
    threshold_t: f64,
    weights: VarianceWeights,
    fault_profile: &str,
) -> EvalResult {
    eval_inner(
        flavor,
        strategy_name,
        bugs,
        hours,
        seed,
        threshold_t,
        weights,
        true,
        fault_profile,
        ExecutionMode::Accumulate,
        true,
    )
}

/// Like [`run_eval_faulted`] but under an explicit campaign execution
/// mode — the entry point the fork-vs-replay differential tests and the
/// `perf/campaign_fork_vs_replay` benchmark use.
#[allow(clippy::too_many_arguments)]
pub fn run_eval_mode(
    flavor: Flavor,
    strategy_name: &str,
    bugs: BugSet,
    hours: u64,
    seed: u64,
    threshold_t: f64,
    weights: VarianceWeights,
    fault_profile: &str,
    mode: ExecutionMode,
) -> EvalResult {
    eval_inner(
        flavor,
        strategy_name,
        bugs,
        hours,
        seed,
        threshold_t,
        weights,
        true,
        fault_profile,
        mode,
        true,
    )
}

/// Clean-slate evaluation with the simulator's snapshot capability
/// switched off: every iteration re-establishes the initial state through
/// a full redeploy. This is the pre-fork-engine baseline the
/// `perf/campaign_fork_vs_replay` measurements compare throughput against.
/// Note its virtual-time axis differs from the snapshot modes (a redeploy
/// charges one virtual minute; a restore is free), so only wall-clock
/// throughput — not per-campaign results — is comparable.
#[allow(clippy::too_many_arguments)]
pub fn run_eval_redeploy(
    flavor: Flavor,
    strategy_name: &str,
    bugs: BugSet,
    hours: u64,
    seed: u64,
    threshold_t: f64,
    weights: VarianceWeights,
    fault_profile: &str,
) -> EvalResult {
    eval_inner(
        flavor,
        strategy_name,
        bugs,
        hours,
        seed,
        threshold_t,
        weights,
        true,
        fault_profile,
        ExecutionMode::FullReplay,
        false,
    )
}

/// Like [`run_eval`] but routing simulator placement through the uncached
/// reference path: the benchmark baseline for the cached hot loop. The
/// campaign outcome is identical either way; only the wall clock differs.
pub fn run_eval_baseline(
    flavor: Flavor,
    strategy_name: &str,
    bugs: BugSet,
    hours: u64,
    seed: u64,
    threshold_t: f64,
    weights: VarianceWeights,
) -> EvalResult {
    eval_inner(
        flavor,
        strategy_name,
        bugs,
        hours,
        seed,
        threshold_t,
        weights,
        false,
        "none",
        ExecutionMode::Accumulate,
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn eval_inner(
    flavor: Flavor,
    strategy_name: &str,
    bugs: BugSet,
    hours: u64,
    seed: u64,
    threshold_t: f64,
    weights: VarianceWeights,
    placement_caching: bool,
    fault_profile: &str,
    mode: ExecutionMode,
    use_snapshots: bool,
) -> EvalResult {
    let mut adaptor = SimAdaptor::new(flavor, bugs);
    adaptor.set_snapshot_capability(use_snapshots);
    // Nothing in the eval pipeline reads the rendered command log; skip
    // the per-send operation clone it would cost.
    adaptor.command_log_cap = 0;
    adaptor
        .handle()
        .borrow_mut()
        .set_placement_caching(placement_caching);
    eval_prepared(
        &mut adaptor,
        flavor,
        strategy_name,
        hours,
        seed,
        threshold_t,
        weights,
        fault_profile,
        mode,
    )
}

/// Runs one attributed campaign on an already-deployed adaptor. The
/// adaptor must be at its post-deploy initial state (fresh, or rewound
/// via [`SimAdaptor::restore_to_base`]); everything per-cell — fault
/// plan, strategy, campaign config — is installed here, so the result is
/// a pure function of the arguments regardless of what the adaptor ran
/// before.
#[allow(clippy::too_many_arguments)]
fn eval_prepared(
    adaptor: &mut SimAdaptor,
    flavor: Flavor,
    strategy_name: &str,
    hours: u64,
    seed: u64,
    threshold_t: f64,
    weights: VarianceWeights,
    fault_profile: &str,
    mode: ExecutionMode,
) -> EvalResult {
    let mut strat =
        by_name(strategy_name).unwrap_or_else(|| panic!("unknown strategy {strategy_name}"));
    let handle = adaptor.handle();
    let plan = simdfs::FaultPlan::named(fault_profile, seed)
        .unwrap_or_else(|| panic!("unknown fault profile {fault_profile}"));
    handle.borrow_mut().set_fault_plan(plan);
    let mut obs = Attribution {
        handle: handle.clone(),
        found: BTreeSet::new(),
        first_trigger_min: BTreeMap::new(),
        fp_confirms: 0,
        fp_kinds: BTreeSet::new(),
    };
    let cfg = CampaignConfig {
        budget_ms: hours * 3_600_000,
        seed,
        detector: DetectorConfig {
            threshold_t,
            ..Default::default()
        },
        weights,
        ..Default::default()
    };
    let campaign = run_campaign_with_mode(strat.as_mut(), adaptor, &cfg, &mut obs, mode);
    let bytes_lost = handle.borrow().bytes_lost();
    EvalResult {
        flavor,
        strategy: strategy_name.to_string(),
        fault_profile: fault_profile.to_string(),
        bytes_lost,
        found: obs.found,
        first_trigger_min: obs.first_trigger_min,
        false_positive_confirms: obs.fp_confirms,
        false_positive_kinds: obs.fp_kinds,
        campaign,
    }
}

/// Runs one attributed campaign from a fresh, dedicated deploy (scaled to
/// `scale_nodes` storage nodes when given). This is exactly what a
/// [`CellRunner`] cell produces, minus any reuse machinery — the
/// fresh-deploy reference the grid determinism tests compare against.
#[allow(clippy::too_many_arguments)]
pub fn run_eval_cell(
    flavor: Flavor,
    strategy_name: &str,
    bugs: BugSet,
    hours: u64,
    seed: u64,
    threshold_t: f64,
    weights: VarianceWeights,
    fault_profile: &str,
    scale_nodes: Option<u32>,
) -> EvalResult {
    let sim = match scale_nodes {
        Some(n) => simdfs::DfsSim::with_config(simdfs::FlavorConfig::scaled(flavor, n), bugs),
        None => simdfs::DfsSim::new(flavor, bugs),
    };
    let mut adaptor = SimAdaptor::from_handle(std::rc::Rc::new(std::cell::RefCell::new(sim)));
    adaptor.command_log_cap = 0;
    eval_prepared(
        &mut adaptor,
        flavor,
        strategy_name,
        hours,
        seed,
        threshold_t,
        weights,
        fault_profile,
        ExecutionMode::Accumulate,
    )
}

/// A reusable per-(worker, flavor) cell executor: deploys one simulator,
/// marks the post-deploy state as its base, and runs every subsequent cell
/// by rewinding to that base instead of redeploying. The rewind is
/// byte-identical to a fresh deploy (see [`simdfs::DfsSim::restore_to_base`]),
/// so `run` produces exactly what [`run_eval_faulted`] would — the grid
/// determinism tests pin that equivalence.
pub struct CellRunner {
    adaptor: SimAdaptor,
    flavor: Flavor,
    /// Full simulator deploys this runner has performed. Stays at 1 for
    /// the runner's whole lifetime — the counter the BENCH_4 artifact
    /// surfaces to prove reuse replaced per-cell redeploys.
    pub redeploys: u64,
}

impl CellRunner {
    /// Deploys one simulator for `flavor` (at `scale_nodes` storage nodes
    /// when given, the flavor's stock topology otherwise) and marks its
    /// base. This is the only full deploy the runner ever performs.
    pub fn new(flavor: Flavor, bugs: BugSet, scale_nodes: Option<u32>) -> Self {
        let sim = match scale_nodes {
            Some(n) => simdfs::DfsSim::with_config(simdfs::FlavorConfig::scaled(flavor, n), bugs),
            None => simdfs::DfsSim::new(flavor, bugs),
        };
        let mut adaptor = SimAdaptor::from_handle(std::rc::Rc::new(std::cell::RefCell::new(sim)));
        adaptor.command_log_cap = 0;
        adaptor.mark_base();
        CellRunner {
            adaptor,
            flavor,
            redeploys: 1,
        }
    }

    /// The flavor this runner deploys.
    pub fn flavor(&self) -> Flavor {
        self.flavor
    }

    /// Runs one attributed campaign cell from the base state.
    pub fn run(
        &mut self,
        strategy_name: &str,
        hours: u64,
        seed: u64,
        threshold_t: f64,
        weights: VarianceWeights,
        fault_profile: &str,
    ) -> EvalResult {
        let rewound = self.adaptor.restore_to_base();
        assert!(rewound, "CellRunner adaptors always carry a base mark");
        eval_prepared(
            &mut self.adaptor,
            self.flavor,
            strategy_name,
            hours,
            seed,
            threshold_t,
            weights,
            fault_profile,
            ExecutionMode::Accumulate,
        )
    }
}

/// Runs one strategy across all four flavors (on the grid executor's
/// worker pool) and returns the per-flavor results in `Flavor::all()`
/// order.
pub fn run_strategy_all_flavors(
    strategy_name: &str,
    bugs: BugSet,
    hours: u64,
    seed: u64,
    threshold_t: f64,
    weights: VarianceWeights,
) -> Vec<EvalResult> {
    let spec = crate::grid::GridSpec {
        threshold_t,
        weights,
        ..crate::grid::GridSpec::new(
            Flavor::all().to_vec(),
            vec![strategy_name.to_string()],
            vec![seed],
            bugs,
            hours,
        )
    };
    crate::grid::run_grid(&spec)
        .cells
        .into_iter()
        .map(|c| c.eval)
        .collect()
}

/// The full 5-strategy (plus ablation) x 4-flavor matrix, executed as one
/// grid so every (strategy, flavor) cell runs concurrently rather than one
/// strategy row at a time.
pub fn run_matrix(
    strategies: &[&str],
    bugs: BugSet,
    hours: u64,
    seed: u64,
) -> BTreeMap<String, Vec<EvalResult>> {
    let spec = crate::grid::GridSpec::new(
        Flavor::all().to_vec(),
        strategies.iter().map(|s| s.to_string()).collect(),
        vec![seed],
        bugs,
        hours,
    );
    let outcome = crate::grid::run_grid(&spec);
    let mut out: BTreeMap<String, Vec<EvalResult>> = BTreeMap::new();
    // Cells arrive in (flavor, strategy) row-major order; regroup into
    // per-strategy rows preserving `Flavor::all()` order.
    for cell in outcome.cells {
        out.entry(cell.strategy).or_default().push(cell.eval);
    }
    out
}

/// Renders a text table with aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:<w$}  "));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:<w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_runs_and_attributes() {
        let r = run_eval(
            Flavor::GlusterFs,
            "Themis",
            BugSet::New,
            2,
            7,
            0.25,
            VarianceWeights::default(),
        );
        assert_eq!(r.strategy, "Themis");
        assert!(r.campaign.ops_sent > 100);
        // Found bugs must be real catalog ids.
        for id in &r.found {
            assert!(
                simdfs::bugs::catalog::all_new_bugs()
                    .iter()
                    .any(|b| b.id == id),
                "{id} not in catalog"
            );
        }
    }

    #[test]
    fn matrix_covers_all_flavors() {
        let m = run_matrix(&["Themis-"], BugSet::None, 1, 3);
        let rs = &m["Themis-"];
        assert_eq!(rs.len(), 4);
        let flavors: Vec<Flavor> = rs.iter().map(|r| r.flavor).collect();
        assert_eq!(flavors, Flavor::all().to_vec());
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["a", "bb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["long".into(), "z".into()],
            ],
        );
        assert!(t.contains("a     bb"));
        assert!(t.lines().count() == 4);
    }
}
