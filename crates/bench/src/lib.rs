//! # bench — evaluation harness regenerating the Themis paper's artifacts
//!
//! This crate turns the `themis` + `simdfs` + `adaptors` stack into the
//! paper's evaluation: attributed campaigns ([`harness`]) and one generator
//! per table/figure ([`tables`]). The `repro` binary writes the full-budget
//! artifacts under `results/`; `cargo bench` runs reduced-budget versions
//! under Criterion for timing.

pub mod crashbench;
pub mod grid;
pub mod harness;
pub mod perf;
pub mod scale;
pub mod scale100k;
pub mod scaling;
pub mod tables;

pub use grid::{run_cell, run_grid, steal_execute, GridCell, GridOutcome, GridSpec, WorkerStats};
pub use harness::{
    render_table, run_eval, run_eval_baseline, run_matrix, run_strategy_all_flavors, EvalResult,
};
