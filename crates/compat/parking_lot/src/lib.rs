//! Offline stand-in for `parking_lot`: `Mutex` / `RwLock` with the
//! parking_lot calling convention (no poisoning, guards returned directly
//! from `lock()` / `read()` / `write()`), implemented over [`std::sync`].
//! A poisoned std lock is transparently recovered — parking_lot semantics
//! are that a panicking holder simply releases the lock.

use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// Mutual exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
