//! Offline stand-in for `crossbeam`, covering the scoped-thread API this
//! workspace uses (`crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`). Implemented directly over
//! [`std::thread::scope`], which provides the same structured-concurrency
//! guarantee (all spawned threads join before `scope` returns).

pub mod thread {
    //! Scoped threads with the crossbeam calling convention: the spawn
    //! closure receives the scope again so workers can spawn siblings.

    /// A handle to a scope that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        std: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope, matching crossbeam's `|_| ...` convention.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle(self.std.spawn(move || f(&me)))
        }
    }

    /// Runs `f` with a scope; every spawned thread is joined before this
    /// returns. Always `Ok` — a panicking child propagates its panic when
    /// joined (or at scope exit), exactly like `std::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { std: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_and_borrows_stack_data() {
        let counter = AtomicU64::new(0);
        let counter = &counter;
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..8u64)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(i, Ordering::Relaxed);
                        i * 2
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 56);
        assert_eq!(counter.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
