//! Offline stand-in for `crossbeam`, covering the scoped-thread API this
//! workspace uses (`crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`) and the work-stealing deque API
//! (`crossbeam::deque::{Worker, Stealer, Steal}`). Scoped threads are
//! implemented directly over [`std::thread::scope`], which provides the
//! same structured-concurrency guarantee (all spawned threads join before
//! `scope` returns). The deque trades the real crate's lock-free Chase–Lev
//! algorithm for a mutex-guarded ring (the workspace forbids `unsafe`);
//! the *interface contract* — owner pushes/pops one end, thieves steal the
//! other, every element delivered exactly once — is identical, so swapping
//! the real crate back in is a dependency change only.

pub mod thread {
    //! Scoped threads with the crossbeam calling convention: the spawn
    //! closure receives the scope again so workers can spawn siblings.

    /// A handle to a scope that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        std: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope, matching crossbeam's `|_| ...` convention.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle(self.std.spawn(move || f(&me)))
        }
    }

    /// Runs `f` with a scope; every spawned thread is joined before this
    /// returns. Always `Ok` — a panicking child propagates its panic when
    /// joined (or at scope exit), exactly like `std::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { std: s })))
    }
}

pub mod deque {
    //! Work-stealing deques with the crossbeam calling convention.
    //!
    //! [`Worker`] is the owning end: its thread pushes and pops locally.
    //! [`Stealer`] handles (cloneable, `Send`) let other threads take work
    //! from the opposite end. [`Steal`] mirrors crossbeam's three-way
    //! result; the mutex-based implementation never actually yields
    //! [`Steal::Retry`], but callers are written against the real
    //! contract and must handle it.
    //!
    //! FIFO discipline (the only one this workspace uses): the owner pops
    //! the front — the oldest of its own pushes — and thieves also steal
    //! from the front. That keeps initially-seeded queues draining in
    //! seed order whether the owner or a thief gets there first, which
    //! the grid executor's determinism tests rely on for reproducible
    //! *schedules* (results are order-independent by construction).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether this is [`Steal::Empty`].
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// Whether this is [`Steal::Retry`].
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }
    }

    /// The owning end of a work-stealing queue.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle for stealing tasks from a [`Worker`]'s queue.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue (owner pops oldest-first).
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates a stealer handle for this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Pushes a task onto the queue.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque poisoned").push_back(task);
        }

        /// Pops the next task (FIFO: the oldest).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("deque poisoned").pop_front()
        }

        /// Number of queued tasks (racy the instant it returns; use for
        /// heuristics only).
        pub fn len(&self) -> usize {
            self.inner.lock().expect("deque poisoned").len()
        }

        /// Whether the queue is empty (racy; heuristics only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the queue's front.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals up to half of the victim's tasks into `dest`, then pops
        /// one of them for the caller. Two-phase: the victim's lock is
        /// released before `dest`'s is taken, so concurrent A↔B steals
        /// cannot deadlock.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut batch = {
                let mut victim = self.inner.lock().expect("deque poisoned");
                let n = victim.len();
                if n == 0 {
                    return Steal::Empty;
                }
                // Take ceil(n/2) from the front, preserving order.
                let take = n.div_ceil(2);
                victim.drain(..take).collect::<VecDeque<T>>()
            };
            let first = batch.pop_front();
            if !batch.is_empty() {
                let mut own = dest.inner.lock().expect("deque poisoned");
                // Stolen work is older than anything the owner pushed
                // since; front-load it so FIFO order is preserved.
                for t in batch.into_iter().rev() {
                    own.push_front(t);
                }
            }
            match first {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_and_borrows_stack_data() {
        let counter = AtomicU64::new(0);
        let counter = &counter;
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..8u64)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(i, Ordering::Relaxed);
                        i * 2
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 56);
        assert_eq!(counter.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    mod deque {
        use crate::deque::{Steal, Worker};

        #[test]
        fn fifo_owner_pops_oldest_first() {
            let w = Worker::new_fifo();
            for i in 0..5 {
                w.push(i);
            }
            assert_eq!(w.len(), 5);
            assert_eq!(w.pop(), Some(0));
            assert_eq!(w.pop(), Some(1));
        }

        #[test]
        fn steal_takes_from_the_front() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(s.steal(), Steal::Empty);
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn steal_batch_moves_half_and_pops_one() {
            let victim = Worker::new_fifo();
            let thief = Worker::new_fifo();
            for i in 0..6 {
                victim.push(i);
            }
            // 6 tasks: batch takes ceil(6/2)=3 (0,1,2); caller gets 0,
            // thief's queue gets 1,2 in order.
            assert_eq!(
                victim.stealer().steal_batch_and_pop(&thief),
                Steal::Success(0)
            );
            assert_eq!(victim.len(), 3);
            assert_eq!(thief.pop(), Some(1));
            assert_eq!(thief.pop(), Some(2));
            assert_eq!(thief.pop(), None);
            // Singleton victim: the one task goes to the caller, nothing
            // lands in the thief's queue.
            let one = Worker::new_fifo();
            one.push(9);
            assert_eq!(one.stealer().steal_batch_and_pop(&thief), Steal::Success(9));
            assert!(thief.is_empty() && one.is_empty());
            assert_eq!(one.stealer().steal_batch_and_pop(&thief), Steal::Empty);
        }

        #[test]
        fn batch_steal_preserves_fifo_order_over_prior_contents() {
            let victim = Worker::new_fifo();
            let thief = Worker::new_fifo();
            thief.push(100); // the thief's own, newer work
            for i in 0..4 {
                victim.push(i);
            }
            assert_eq!(
                victim.stealer().steal_batch_and_pop(&thief),
                Steal::Success(0)
            );
            // Stolen task 1 is older than 100, so it pops first.
            assert_eq!(thief.pop(), Some(1));
            assert_eq!(thief.pop(), Some(100));
        }

        #[test]
        fn concurrent_steals_deliver_every_task_exactly_once() {
            use std::sync::Mutex;
            const N: u64 = 10_000;
            let owner = Worker::new_fifo();
            for i in 0..N {
                owner.push(i);
            }
            let seen = Mutex::new(vec![0u8; N as usize]);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let st = owner.stealer();
                    let seen = &seen;
                    s.spawn(move || {
                        let local = Worker::new_fifo();
                        loop {
                            let task = local.pop().or_else(|| loop {
                                match st.steal_batch_and_pop(&local) {
                                    Steal::Success(t) => break Some(t),
                                    Steal::Empty => break None,
                                    Steal::Retry => continue,
                                }
                            });
                            match task {
                                Some(t) => seen.lock().unwrap()[t as usize] += 1,
                                None => break,
                            }
                        }
                    });
                }
            });
            assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        }
    }
}
