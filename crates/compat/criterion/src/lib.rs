//! Offline mini-criterion.
//!
//! Implements the subset of the `criterion` API this workspace's benches
//! use — `Criterion`, `benchmark_group`, `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function(|b| b.iter(...))`, and the
//! `criterion_group!` / `criterion_main!` macros — with real wall-clock
//! measurement but none of upstream's statistics machinery: each sample is
//! timed with [`std::time::Instant`] and the mean/min/max over samples is
//! reported on stdout.
//!
//! Measurements are also recorded in a process-global table so a bench
//! target can export a machine-readable artifact afterwards (see
//! [`take_measurements`]); the `bench` crate uses this to write
//! `BENCH_1.json`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement markers (only wall time is supported).

    /// Wall-clock time measurement marker.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// One completed benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Samples actually taken.
    pub samples: u64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Slowest sample, seconds per iteration.
    pub max_s: f64,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far in this process.
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut *MEASUREMENTS.lock().unwrap())
}

/// Benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: std::marker::PhantomData,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    _measurement: std::marker::PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget for one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: warm-up, then `sample_size` timed samples.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);

        // Warm-up: run the routine until the warm-up budget elapses, and
        // estimate the per-iteration cost for sample sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warm_iters += bencher.iters;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64();
        let iters_per_sample = ((budget / self.sample_size as f64) / per_iter.max(1e-9))
            .round()
            .clamp(1.0, 1e9) as u64;

        let mut samples_s = Vec::with_capacity(self.sample_size as usize);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples_s.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let mean = samples_s.iter().sum::<f64>() / samples_s.len() as f64;
        let min = samples_s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples_s.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "bench {id:<44} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
            format_time(mean),
            format_time(min),
            format_time(max),
            self.sample_size,
            iters_per_sample,
        );
        MEASUREMENTS.lock().unwrap().push(Measurement {
            id,
            samples: self.sample_size,
            iters_per_sample,
            mean_s: mean,
            min_s: min,
            max_s: max,
        });
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn format_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Times the closure handed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the requested number of iterations, timing the
    /// whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_measurement() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            let mut x = 0u64;
            g.bench_function("count", |b| {
                b.iter(|| {
                    x = x.wrapping_add(1);
                    x
                })
            });
            g.finish();
        }
        let ms = take_measurements();
        let m = ms.iter().find(|m| m.id == "t/count").expect("recorded");
        assert!(m.mean_s >= 0.0 && m.min_s <= m.mean_s && m.mean_s <= m.max_s + 1e-12);
        assert!(m.samples == 3 && m.iters_per_sample >= 1);
    }
}
