//! Offline stand-in for `serde`.
//!
//! The workspace only ever writes `#[derive(Serialize, Deserialize)]` as a
//! marker — no generic code is bounded on serde traits, and the one
//! functional JSON round-trip lives in `themis::spec::json`. This crate
//! re-exports the no-op derives so those annotations keep compiling
//! without network access to crates-io.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
