//! Offline mini-proptest.
//!
//! Implements the subset of the `proptest` API this workspace uses:
//! `proptest!` test blocks with `#![proptest_config(...)]`, strategies
//! built from integer ranges, [`strategy::Just`], tuples, `prop_map`,
//! `prop_oneof!`, [`collection::vec`], and `any::<T>()`, plus
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! reports the iteration index and seed so it can be replayed
//! deterministically, which is sufficient for this repository's CI use.

use rand::rngs::StdRng;

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

pub mod test_runner {
    //! Case generation loop and failure plumbing.

    use rand::SeedableRng;

    /// Runner configuration; only `cases` is interpreted.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Drives `cases` iterations of a property, generating inputs from a
    /// per-case deterministic RNG.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs the property once per case; panics (failing the enclosing
        /// `#[test]`) on the first case that returns an error.
        pub fn run_named<F>(&mut self, name: &str, mut property: F)
        where
            F: FnMut(&mut super::TestRng) -> Result<(), TestCaseError>,
        {
            // Stable per-test seed: same binary, same failures.
            let base = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
            });
            for case in 0..self.config.cases {
                let seed = base.wrapping_add(case as u64);
                let mut rng = super::TestRng::seed_from_u64(seed);
                if let Err(TestCaseError(msg)) = property(&mut rng) {
                    panic!(
                        "proptest property '{name}' failed at case {case} (seed {seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use rand::RngExt;

    /// Generates values of `Value` from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// Full-domain strategy returned by [`any`].
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Convenience re-export of [`strategy::any`].
pub use strategy::any;

pub mod prelude {
    //! Everything a `proptest!` block needs in scope.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        $crate::prop_assert!($left == $right, $($fmt)*)
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Mirrors upstream `proptest!` syntax for the
/// forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in any::<u64>(), v in proptest::collection::vec(0u8..4, 1..9)) {
///         prop_assert!(v.len() < 9);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_named(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, pair in (0u8..4, 5u64..6)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1, 5);
        }

        #[test]
        fn oneof_vec_and_map(v in crate::collection::vec(
            prop_oneof![Just(1u8), (2u8..4).prop_map(|x| x)], 1..9)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2 || x == 3));
        }

        #[test]
        fn any_u64_covers_high_bits(a in any::<u64>(), b in any::<u64>()) {
            // Two independent 64-bit draws collide with negligible
            // probability; equality here would indicate a stuck RNG.
            prop_assert!(a != b);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {x}");
            }
        }
        always_fails();
    }
}
