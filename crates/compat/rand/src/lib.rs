//! Offline stand-in for the `rand` crate, exposing exactly the API surface
//! this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngExt::random_range`] / [`RngExt::random_bool`], and
//! [`seq::IndexedRandom::choose`].
//!
//! The crates-io registry is unreachable in the build environment, so the
//! workspace vendors this minimal, deterministic implementation instead.
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the upstream
//! ChaCha-based generator, so streams differ from crates-io `rand`, but
//! every consumer in this repository only relies on *determinism per
//! seed*, never on a specific stream.

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the
    /// upstream ChaCha12-based `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy {
    /// Draws from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128-mapped domain: impossible for <=64-bit ints
                    // unless the range covers the whole type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Ranges a value can be drawn from (`Range` and `RangeInclusive`).
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, mirroring `rand`'s `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits -> exact comparison against p.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod seq {
    //! Slice sampling helpers.

    use super::{RngCore, RngExt};

    /// Uniform choice from an indexable collection, mirroring
    /// `rand::seq::IndexedRandom`.
    pub trait IndexedRandom<T> {
        /// Picks a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T>;
    }

    impl<T> IndexedRandom<T> for [T] {
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(1u64..=8);
            assert!((1..=8).contains(&w));
            let s = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..64).all(|_| !rng.random_bool(0.0)));
        assert!((0..64).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_covers_all_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[*items.as_slice().choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
