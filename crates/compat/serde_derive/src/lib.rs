//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace uses serde derives purely as annotations — the only
//! functional serialization (the test-case JSON round-trip) is hand-rolled
//! in `themis::spec::json`. These derives therefore expand to nothing,
//! which keeps every `#[derive(Serialize, Deserialize)]` in the tree
//! compiling without the unreachable crates-io registry.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
