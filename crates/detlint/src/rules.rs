//! The determinism-and-safety rule set.
//!
//! Each rule is a set of code patterns (matched against comment/string
//! stripped source, see [`crate::lexer`]) plus a path scope expressed as
//! repo-relative prefixes. The scopes encode the workspace's determinism
//! contract (see DESIGN.md, "Determinism contract"):
//!
//! * campaign results are pure functions of `(seed, strategy, target)`;
//! * the only time source in simulation code is the virtual clock;
//! * the only randomness is the seeded `StdRng` from the compat shim;
//! * process environment never influences simulated behavior;
//! * float reductions in scoring paths must be order-pinned;
//! * no `unsafe` anywhere (the workspace also carries
//!   `unsafe_code = "forbid"`; the lint catches it in non-compiled cfg
//!   branches and keeps the allowlist explicit).

/// How severe a violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported; fails the run only under `--strict`.
    Warn,
    /// Fails the run unconditionally.
    Deny,
}

impl Severity {
    /// Lower-case label used in diagnostics and the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One lint rule: patterns plus a path scope.
#[derive(Debug)]
pub struct Rule {
    /// Stable identifier, referenced by suppression pragmas.
    pub id: &'static str,
    pub severity: Severity,
    /// One-line explanation attached to every diagnostic.
    pub message: &'static str,
    /// Code substrings that trigger the rule (identifier-boundary aware).
    pub patterns: &'static [&'static str],
    /// Repo-relative path prefixes the rule applies to; empty = everywhere.
    pub include: &'static [&'static str],
    /// Path prefixes exempt from the rule (the explicit allowlist).
    pub exclude: &'static [&'static str],
    /// If non-empty, the rule only applies to files with these basenames.
    pub only_files: &'static [&'static str],
}

/// Crates whose code feeds simulated state or campaign results. The compat
/// shims and the bench harness's wall-clock measurement layer live outside
/// this determinism domain; `detlint` itself only reads source text.
const STATE_PATHS: &[&str] = &[
    "crates/simdfs",
    "crates/themis",
    "crates/adaptors",
    "crates/workload",
    "src",
    "tests",
    "examples",
];

/// State paths plus the bench harness (bench aggregates campaign results
/// into the paper tables, so its containers must iterate in stable order
/// too; only its *timing* is exempt from the wall-clock rule).
const STATE_PATHS_AND_BENCH: &[&str] = &[
    "crates/simdfs",
    "crates/themis",
    "crates/bench",
    "crates/adaptors",
    "crates/workload",
    "src",
    "tests",
    "examples",
];

/// The rule table, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "nondet-iteration",
        severity: Severity::Deny,
        message: "unordered hash container in a deterministic state path; \
                  iteration order varies across runs — use BTreeMap/BTreeSet \
                  or iterate over sorted keys",
        patterns: &["HashMap", "HashSet"],
        include: STATE_PATHS_AND_BENCH,
        exclude: &[],
        only_files: &[],
    },
    Rule {
        id: "wall-clock",
        severity: Severity::Deny,
        message: "wall-clock time source outside the virtual clock; \
                  simulated behavior must only observe SimClock",
        patterns: &["Instant::now", "SystemTime", "std::time::Instant"],
        include: STATE_PATHS,
        exclude: &["crates/simdfs/src/clock.rs"],
        only_files: &[],
    },
    Rule {
        id: "ambient-rng",
        severity: Severity::Deny,
        message: "ambient randomness; every RNG must be constructed from an \
                  explicit seed (StdRng::seed_from_u64) so campaigns replay \
                  bit-identically",
        patterns: &["thread_rng", "from_entropy", "rand::random", "OsRng"],
        include: &[],
        exclude: &[],
        only_files: &[],
    },
    Rule {
        id: "env-read",
        severity: Severity::Deny,
        message: "process environment read outside the bench/repro binaries; \
                  simulated behavior must not depend on ambient process state",
        patterns: &["std::env", "env::var", "env::args", "env!"],
        include: &[
            "crates/simdfs",
            "crates/themis",
            "crates/adaptors",
            "crates/workload",
            "crates/bench/tests",
            "src",
            "tests",
            "examples",
        ],
        exclude: &[],
        only_files: &[],
    },
    Rule {
        id: "float-order",
        severity: Severity::Deny,
        message: "partial float comparison in an ordering position; NaN or \
                  platform-dependent tie-breaking silently reorders — use \
                  f64::total_cmp",
        patterns: &["partial_cmp"],
        include: STATE_PATHS_AND_BENCH,
        exclude: &[],
        only_files: &[],
    },
    Rule {
        id: "float-accum",
        severity: Severity::Warn,
        message: "float accumulation in a scoring path; reduction order must \
                  be pinned to a deterministic iteration (document with a \
                  pragma if the source is an ordered container)",
        patterns: &[
            ".sum::<f64>()",
            "fold(f64::MIN",
            "fold(f64::MAX",
            "fold(0.0",
        ],
        include: &[],
        exclude: &[],
        only_files: &["lvm.rs", "balancer.rs", "metrics.rs", "loadstats.rs"],
    },
    Rule {
        id: "unsafe-code",
        severity: Severity::Deny,
        message: "unsafe block outside the allowlist; the workspace forbids \
                  unsafe code (see [workspace.lints])",
        patterns: &["unsafe"],
        include: &[],
        exclude: &[],
        only_files: &[],
    },
];

/// Rule id used for pragma hygiene violations (malformed pragma, unknown
/// rule, missing reason). Not in [`RULES`] because it has no code pattern.
pub const PRAGMA_RULE: &str = "pragma-hygiene";

/// Rule id for `detlint:allow` pragmas that suppress nothing in their
/// scope. Warn severity (fails under `--strict`); not itself allowable —
/// a stale pragma is removed, not excused.
pub const UNUSED_PRAGMA_RULE: &str = "unused-pragma";

/// Looks up a rule by id.
pub fn find(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `id` names a rule an allow pragma may reference: any lexical
/// rule or semantic pack. The meta rules ([`PRAGMA_RULE`],
/// [`UNUSED_PRAGMA_RULE`]) are deliberately NOT allowable — hygiene and
/// staleness diagnostics must be fixed, never suppressed.
pub fn known_rule(id: &str) -> bool {
    find(id).is_some() || crate::semantic::find(id).is_some()
}

fn path_in(path: &str, prefix: &str) -> bool {
    path == prefix || path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/')
}

impl Rule {
    /// Whether the rule applies to a repo-relative path (`/`-separated).
    pub fn applies_to(&self, path: &str) -> bool {
        if !self.only_files.is_empty() {
            let base = path.rsplit('/').next().unwrap_or(path);
            if !self.only_files.contains(&base) {
                return false;
            }
        }
        if !self.include.is_empty() && !self.include.iter().any(|p| path_in(path, p)) {
            return false;
        }
        !self.exclude.iter().any(|p| path_in(path, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_prefix_matching_respects_boundaries() {
        let r = find("wall-clock").unwrap();
        assert!(r.applies_to("crates/simdfs/src/sim.rs"));
        assert!(!r.applies_to("crates/simdfs/src/clock.rs"));
        assert!(!r.applies_to("crates/bench/src/perf.rs"));
        assert!(!r.applies_to("crates/compat/criterion/src/lib.rs"));
        // `src` must not match `srcery/…` or `crates/detlint/src/…`.
        assert!(r.applies_to("src/lib.rs"));
        assert!(!r.applies_to("srcery/lib.rs"));
        assert!(!r.applies_to("crates/detlint/src/main.rs"));
    }

    #[test]
    fn only_files_restricts_to_basenames() {
        let r = find("float-accum").unwrap();
        assert!(r.applies_to("crates/themis/src/lvm.rs"));
        assert!(r.applies_to("crates/simdfs/src/balancer.rs"));
        assert!(r.applies_to("crates/simdfs/src/loadstats.rs"));
        assert!(!r.applies_to("crates/simdfs/src/sim.rs"));
    }

    #[test]
    fn env_read_covers_examples_and_integration_tests() {
        let r = find("env-read").unwrap();
        assert!(r.applies_to("crates/simdfs/src/sim.rs"));
        // Examples and integration tests exercise simulated behavior, so
        // ambient process state is just as illegal there (a legit CLI arg
        // read carries a reasoned pragma instead of a scope hole).
        assert!(r.applies_to("crates/adaptors/examples/strategy_matrix.rs"));
        assert!(r.applies_to("crates/simdfs/tests/sim_properties.rs"));
        assert!(r.applies_to("crates/bench/tests/grid_determinism.rs"));
        // The repro binary and detlint itself own their process env.
        assert!(!r.applies_to("crates/bench/src/bin/repro.rs"));
        assert!(!r.applies_to("crates/detlint/src/main.rs"));
    }

    #[test]
    fn semantic_pack_ids_are_known_but_meta_rules_are_not_allowable() {
        assert!(known_rule("nondet-iteration"));
        assert!(known_rule("journal-coverage"));
        assert!(known_rule("tracker-completeness"));
        assert!(known_rule("crash-decomposition"));
        assert!(known_rule("steal-protocol"));
        assert!(!known_rule(PRAGMA_RULE));
        assert!(!known_rule(UNUSED_PRAGMA_RULE));
        assert!(!known_rule("no-such-rule"));
    }

    #[test]
    fn rule_ids_are_unique() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }
}
