//! `detlint` CLI: lints the workspace for determinism/safety hazards.
//!
//! ```text
//! cargo run -p detlint [--] [--root PATH] [--json PATH] [--no-json]
//!                           [--strict] [--quiet] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 violations, 2 usage or I/O error. A JSON report
//! is written to `<root>/results/detlint.json` unless `--no-json`.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    no_json: bool,
    strict: bool,
    quiet: bool,
    list_rules: bool,
}

fn usage() -> &'static str {
    "usage: detlint [--root PATH] [--json PATH] [--no-json] [--strict] [--quiet] [--list-rules]"
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        json: None,
        no_json: false,
        strict: false,
        quiet: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = args.next().ok_or("--json needs a value")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--no-json" => opts.no_json = true,
            "--strict" => opts.strict = true,
            "--quiet" => opts.quiet = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("detlint: {e}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in detlint::rules::RULES {
            println!("{:5} {:20} {}", r.severity.label(), r.id, r.message);
        }
        for r in detlint::semantic::SEM_RULES {
            println!("{:5} {:20} {}", r.severity.label(), r.id, r.summary);
        }
        println!(
            "deny  {:20} malformed/unjustified suppression pragmas",
            detlint::rules::PRAGMA_RULE
        );
        println!(
            "warn  {:20} detlint:allow pragmas that suppress nothing",
            detlint::rules::UNUSED_PRAGMA_RULE
        );
        return ExitCode::SUCCESS;
    }

    let Some(root) = opts.root.or_else(find_workspace_root) else {
        eprintln!("detlint: could not locate a workspace root (pass --root)");
        return ExitCode::from(2);
    };

    let outcome = match detlint::lint_root(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if !opts.quiet {
        print!("{}", outcome.render_text());
    }

    if !opts.no_json {
        let json_path = opts
            .json
            .unwrap_or_else(|| root.join("results").join("detlint.json"));
        if let Some(parent) = json_path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("detlint: cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&json_path, outcome.to_json()) {
            eprintln!("detlint: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!("report: {}", json_path.display());
        }
    }

    if outcome.should_fail(opts.strict) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
