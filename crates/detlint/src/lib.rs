//! detlint — a workspace determinism-and-safety linter.
//!
//! The Themis reproduction's headline guarantees (grid == serial identity,
//! `Fork == FullReplay` bit-identity, same-seed replayability) are dynamic
//! properties enforced by differential tests. `detlint` is the static side
//! of that contract: it scans every `.rs` file in the workspace and fails
//! on constructs that are known to break replay — unordered hash-container
//! iteration in state paths, wall-clock reads outside the virtual clock,
//! ambient randomness, environment reads, unpinned float reductions, and
//! `unsafe` blocks outside the allowlist.
//!
//! The tool is deliberately self-contained (no parser crates — the build
//! environment is offline, see `crates/compat/`): a comment/string
//! stripping lexer ([`lexer`]) feeds path-scoped pattern rules ([`rules`]).
//! Violations can be suppressed inline with
//! `// detlint:allow(<rule>): <reason>` (the reason is mandatory) or for a
//! whole file with `// detlint:allow-file(<rule>): <reason>`.
//!
//! Diagnostics are rustc-style `file:line:col`; a machine-readable JSON
//! report is written under `results/` by the CLI.

pub mod lexer;
pub mod rules;

use rules::{Rule, Severity, PRAGMA_RULE, RULES};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`] or [`PRAGMA_RULE`]).
    pub rule: String,
    pub severity: Severity,
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column of the match.
    pub col: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Human explanation (the rule message, or the hygiene error).
    pub message: String,
}

/// One pragma-suppressed match (kept for the report: suppressions are part
/// of the audit trail, not silence).
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub file: String,
    /// Line of the suppressed match.
    pub line: usize,
    pub reason: String,
}

/// Aggregated result of linting a file set.
#[derive(Debug, Default)]
pub struct LintOutcome {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub suppressions: Vec<Suppression>,
}

impl LintOutcome {
    /// Number of deny-severity violations.
    pub fn deny_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-severity violations.
    pub fn warn_count(&self) -> usize {
        self.violations.len() - self.deny_count()
    }

    /// Whether the run should exit non-zero. Warnings only fail under
    /// `strict`.
    pub fn should_fail(&self, strict: bool) -> bool {
        self.deny_count() > 0 || (strict && !self.violations.is_empty())
    }

    /// Renders rustc-style text diagnostics plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}[{}]: {}", v.severity.label(), v.rule, v.message);
            let _ = writeln!(out, "  --> {}:{}:{}", v.file, v.line, v.col);
            if !v.excerpt.is_empty() {
                let _ = writeln!(out, "   | {}", v.excerpt);
            }
        }
        let _ = writeln!(
            out,
            "detlint: {} file(s) scanned, {} deny, {} warn, {} suppressed",
            self.files_scanned,
            self.deny_count(),
            self.warn_count(),
            self.suppressions.len()
        );
        out
    }

    /// Renders the machine-readable JSON report (hand-rolled, like every
    /// other JSON artifact in this offline workspace).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"tool\": \"detlint\",\n  \"version\": 1,\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"deny\": {},", self.deny_count());
        let _ = writeln!(s, "  \"warn\": {},", self.warn_count());
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\"rule\": ");
            push_json_str(&mut s, &v.rule);
            let _ = write!(s, ", \"severity\": \"{}\"", v.severity.label());
            s.push_str(", \"file\": ");
            push_json_str(&mut s, &v.file);
            let _ = write!(
                s,
                ", \"line\": {}, \"col\": {}, \"message\": ",
                v.line, v.col
            );
            push_json_str(&mut s, &v.message);
            s.push_str(", \"excerpt\": ");
            push_json_str(&mut s, &v.excerpt);
            s.push('}');
        }
        s.push_str("\n  ],\n  \"suppressions\": [");
        for (i, sp) in self.suppressions.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\"rule\": ");
            push_json_str(&mut s, &sp.rule);
            s.push_str(", \"file\": ");
            push_json_str(&mut s, &sp.file);
            let _ = write!(s, ", \"line\": {}, \"reason\": ", sp.line);
            push_json_str(&mut s, &sp.reason);
            s.push('}');
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds `pat` in `hay` at identifier boundaries, returning the 0-based
/// byte offset. Boundary checks only apply to pattern ends that are
/// themselves identifier characters (so `.sum::<f64>()` matches mid-chain).
fn find_word(hay: &str, pat: &str) -> Option<usize> {
    let hb = hay.as_bytes();
    let pb = pat.as_bytes();
    let head_ident = pb.first().copied().is_some_and(is_ident_byte);
    let tail_ident = pb.last().copied().is_some_and(is_ident_byte);
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(pat) {
        let abs = from + pos;
        let pre_ok = !head_ident || abs == 0 || !is_ident_byte(hb[abs - 1]);
        let end = abs + pb.len();
        let post_ok = !tail_ident || end >= hb.len() || !is_ident_byte(hb[end]);
        if pre_ok && post_ok {
            return Some(abs);
        }
        from = abs + 1;
    }
    None
}

/// Lints one file's source text, appending to `out`. `path` must be the
/// repo-relative `/`-separated path (rule scoping keys off it).
pub fn lint_source(path: &str, src: &str, out: &mut LintOutcome) {
    let stripped = lexer::strip(src);
    let src_lines: Vec<&str> = src.lines().collect();

    // Index pragmas; flag hygiene errors (unknown rule / missing reason) —
    // a broken pragma must never silently suppress.
    let mut file_allows: BTreeMap<&str, &lexer::Pragma> = BTreeMap::new();
    let mut line_allows: BTreeMap<usize, Vec<&lexer::Pragma>> = BTreeMap::new();
    for p in &stripped.pragmas {
        let known = rules::find(&p.rule).is_some();
        if !known || p.reason.is_empty() {
            let why = if p.rule.is_empty() {
                "malformed detlint pragma (expected `detlint:allow(<rule>): <reason>`)".to_string()
            } else if !known {
                format!("detlint pragma names unknown rule `{}`", p.rule)
            } else {
                format!(
                    "detlint pragma for `{}` is missing its mandatory reason \
                     (`detlint:allow({}): <why this is sound>`)",
                    p.rule, p.rule
                )
            };
            out.violations.push(Violation {
                rule: PRAGMA_RULE.to_string(),
                severity: Severity::Deny,
                file: path.to_string(),
                line: p.line,
                col: 1,
                excerpt: src_lines
                    .get(p.line - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
                message: why,
            });
            continue;
        }
        if p.file_level {
            file_allows.entry(p.rule.as_str()).or_insert(p);
        } else {
            line_allows.entry(p.target_line()).or_default().push(p);
        }
    }

    let applicable: Vec<&Rule> = RULES.iter().filter(|r| r.applies_to(path)).collect();
    if applicable.is_empty() {
        return;
    }

    for (idx, masked_line) in stripped.masked.lines().enumerate() {
        let lineno = idx + 1;
        for rule in &applicable {
            let hit = rule
                .patterns
                .iter()
                .filter_map(|pat| find_word(masked_line, pat))
                .min();
            let Some(col0) = hit else { continue };
            // Suppression: file-level first, then line-level.
            if let Some(p) = file_allows.get(rule.id) {
                out.suppressions.push(Suppression {
                    rule: rule.id.to_string(),
                    file: path.to_string(),
                    line: lineno,
                    reason: p.reason.clone(),
                });
                continue;
            }
            if let Some(ps) = line_allows.get(&lineno) {
                if let Some(p) = ps.iter().find(|p| p.rule == rule.id) {
                    out.suppressions.push(Suppression {
                        rule: rule.id.to_string(),
                        file: path.to_string(),
                        line: lineno,
                        reason: p.reason.clone(),
                    });
                    continue;
                }
            }
            out.violations.push(Violation {
                rule: rule.id.to_string(),
                severity: rule.severity,
                file: path.to_string(),
                line: lineno,
                col: col0 + 1,
                excerpt: src_lines
                    .get(idx)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
                message: rule.message.to_string(),
            });
        }
    }
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "results"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root` (skipping `target/`, VCS and result
/// directories). File order is sorted, so the report is deterministic.
pub fn lint_root(root: &Path) -> io::Result<LintOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut rels: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rels.sort();
    let mut out = LintOutcome::default();
    for rel in &rels {
        let src = fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        lint_source(rel, &src, &mut out);
        out.files_scanned += 1;
    }
    Ok(out)
}

/// The rule ids that pragma hygiene accepts, for documentation output.
pub fn rule_ids() -> BTreeSet<&'static str> {
    RULES.iter().map(|r| r.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> LintOutcome {
        let mut out = LintOutcome::default();
        lint_source(path, src, &mut out);
        out.files_scanned = 1;
        out
    }

    fn rules_hit(out: &LintOutcome) -> Vec<&str> {
        out.violations.iter().map(|v| v.rule.as_str()).collect()
    }

    // ---- nondet-iteration ------------------------------------------------

    #[test]
    fn nondet_iteration_positive() {
        let out = lint_one(
            "crates/simdfs/src/coverage.rs",
            "use std::collections::HashMap;\nlet m: HashMap<u32, u32> = HashMap::new();\n",
        );
        assert!(rules_hit(&out).contains(&"nondet-iteration"));
        // One violation per line, not per occurrence.
        assert_eq!(out.violations.len(), 2);
        assert_eq!(out.violations[0].line, 1);
        assert_eq!(out.violations[0].col, 23);
    }

    #[test]
    fn nondet_iteration_negative_btree_and_out_of_scope() {
        let out = lint_one(
            "crates/simdfs/src/coverage.rs",
            "use std::collections::BTreeMap;\nlet m: BTreeMap<u32, u32> = BTreeMap::new();\n",
        );
        assert!(out.violations.is_empty());
        // Compat shims are outside the state-path scope.
        let out = lint_one(
            "crates/compat/proptest/src/lib.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(out.violations.is_empty());
    }

    #[test]
    fn nondet_iteration_ignores_strings_and_comments() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// a HashMap would be wrong here\nlet s = \"HashSet\";\n/* HashMap */\n",
        );
        assert!(out.violations.is_empty());
    }

    #[test]
    fn nondet_iteration_respects_identifier_boundaries() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "struct MyHashMapLike;\nlet x = HashMapExt::new();\n",
        );
        assert!(out.violations.is_empty());
    }

    // ---- wall-clock ------------------------------------------------------

    #[test]
    fn wall_clock_positive_and_clock_rs_exempt() {
        let src = "let t = std::time::Instant::now();\n";
        let out = lint_one("crates/themis/src/campaign.rs", src);
        assert!(rules_hit(&out).contains(&"wall-clock"));
        let out = lint_one("crates/simdfs/src/clock.rs", src);
        assert!(out.violations.is_empty());
        let out = lint_one("crates/bench/src/perf.rs", src);
        assert!(out.violations.is_empty());
    }

    // ---- ambient-rng -----------------------------------------------------

    #[test]
    fn ambient_rng_positive_everywhere_even_compat() {
        let out = lint_one(
            "crates/compat/rand/src/lib.rs",
            "pub fn thread_rng() -> StdRng { unimplemented!() }\n",
        );
        assert!(rules_hit(&out).contains(&"ambient-rng"));
    }

    #[test]
    fn seeded_rng_is_fine() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "let rng = StdRng::seed_from_u64(seed);\n",
        );
        assert!(out.violations.is_empty());
    }

    // ---- env-read --------------------------------------------------------

    #[test]
    fn env_read_scoping() {
        let src = "let v = std::env::var(\"THEMIS_SEED\");\n";
        let out = lint_one("crates/simdfs/src/sim.rs", src);
        assert!(rules_hit(&out).contains(&"env-read"));
        let out = lint_one("crates/bench/src/bin/repro.rs", src);
        assert!(out.violations.is_empty());
        let out = lint_one("crates/adaptors/examples/strategy_matrix.rs", src);
        assert!(out.violations.is_empty());
    }

    // ---- float-order / float-accum --------------------------------------

    #[test]
    fn float_order_positive_total_cmp_negative() {
        let out = lint_one(
            "crates/simdfs/src/balancer.rs",
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
        );
        assert!(rules_hit(&out).contains(&"float-order"));
        let out = lint_one(
            "crates/simdfs/src/balancer.rs",
            "v.sort_by(|a, b| a.total_cmp(b));\n",
        );
        assert!(out.violations.is_empty());
    }

    #[test]
    fn float_accum_warns_only_in_scoring_files() {
        let src = "let mean = fills.iter().map(|(_, f)| f).sum::<f64>();\n";
        let out = lint_one("crates/themis/src/lvm.rs", src);
        assert_eq!(rules_hit(&out), vec!["float-accum"]);
        assert_eq!(out.violations[0].severity, Severity::Warn);
        assert_eq!(out.deny_count(), 0);
        assert!(!out.should_fail(false));
        assert!(out.should_fail(true));
        let out = lint_one("crates/themis/src/campaign.rs", src);
        assert!(out.violations.is_empty());
        // The streaming-tracker module carries float reduction only in its
        // pragma-documented differential reference arm, so it is covered.
        let out = lint_one("crates/simdfs/src/loadstats.rs", src);
        assert_eq!(rules_hit(&out), vec!["float-accum"]);
    }

    // ---- unsafe-code -----------------------------------------------------

    #[test]
    fn unsafe_code_positive_and_string_immunity() {
        let out = lint_one("crates/workload/src/lib.rs", "unsafe { *p = 3 }\n");
        assert!(rules_hit(&out).contains(&"unsafe-code"));
        let out = lint_one(
            "crates/workload/src/lib.rs",
            "let s = \"unsafe\"; // unsafe in comment\n",
        );
        assert!(out.violations.is_empty());
    }

    // ---- pragmas ---------------------------------------------------------

    #[test]
    fn pragma_with_reason_suppresses_and_is_recorded() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(nondet-iteration): test-only membership set, never iterated\n\
             let mut seen = std::collections::HashSet::new();\n",
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].rule, "nondet-iteration");
        assert_eq!(out.suppressions[0].line, 2);
    }

    #[test]
    fn trailing_pragma_suppresses_its_own_line() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "let mut seen = std::collections::HashSet::new(); \
             // detlint:allow(nondet-iteration): membership only\n",
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressions.len(), 1);
    }

    #[test]
    fn pragma_without_reason_is_a_violation_and_does_not_suppress() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(nondet-iteration)\n\
             let mut seen = std::collections::HashSet::new();\n",
        );
        let hit = rules_hit(&out);
        assert!(hit.contains(&"pragma-hygiene"));
        assert!(hit.contains(&"nondet-iteration"));
        assert!(out.suppressions.is_empty());
    }

    #[test]
    fn pragma_with_unknown_rule_is_flagged() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(no-such-rule): because\nlet x = 1;\n",
        );
        assert_eq!(rules_hit(&out), vec!["pragma-hygiene"]);
    }

    #[test]
    fn file_level_pragma_covers_all_matches() {
        let out = lint_one(
            "crates/themis/src/lvm.rs",
            "// detlint:allow-file(float-accum): all reductions iterate Vec in index order\n\
             let a = xs.iter().sum::<f64>();\n\
             let b = ys.iter().sum::<f64>();\n",
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressions.len(), 2);
    }

    #[test]
    fn pragma_does_not_suppress_other_rules() {
        let out = lint_one(
            "crates/simdfs/src/sim.rs",
            "// detlint:allow(nondet-iteration): wrong rule\n\
             let t = Instant::now();\n",
        );
        assert!(rules_hit(&out).contains(&"wall-clock"));
    }

    // ---- report rendering ------------------------------------------------

    #[test]
    fn json_report_escapes_and_counts() {
        let mut out = LintOutcome::default();
        lint_source(
            "crates/simdfs/src/sim.rs",
            "let m = std::collections::HashMap::<u8, \u{8}u8>::new();\n",
            &mut out,
        );
        out.files_scanned = 1;
        let js = out.to_json();
        assert!(js.contains("\"deny\": 1"));
        assert!(js.contains("\"rule\": \"nondet-iteration\""));
        assert!(js.contains("\\u0008"));
    }

    #[test]
    fn text_report_is_rustc_style() {
        let out = lint_one("crates/simdfs/src/sim.rs", "let t = Instant::now();\n");
        let txt = out.render_text();
        assert!(txt.contains("deny[wall-clock]"));
        assert!(txt.contains("--> crates/simdfs/src/sim.rs:1:9"));
    }
}
