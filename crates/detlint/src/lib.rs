//! detlint — a workspace determinism-and-safety linter.
//!
//! The Themis reproduction's headline guarantees (grid == serial identity,
//! `Fork == FullReplay` bit-identity, same-seed replayability) are dynamic
//! properties enforced by differential tests. `detlint` is the static side
//! of that contract: it scans every `.rs` file in the workspace and fails
//! on constructs that are known to break replay — unordered hash-container
//! iteration in state paths, wall-clock reads outside the virtual clock,
//! ambient randomness, environment reads, unpinned float reductions, and
//! `unsafe` blocks outside the allowlist.
//!
//! The tool is deliberately self-contained (no parser crates — the build
//! environment is offline, see `crates/compat/`): a comment/string
//! stripping lexer ([`lexer`]) feeds two analysis layers sharing one
//! suppression/report pipeline:
//!
//! * path-scoped pattern rules ([`rules`]) over the masked text, and
//! * semantic rule packs ([`semantic`]) over a per-crate syntax model
//!   ([`syntax`]: item parser, symbol tables, intra-crate call graph)
//!   that prove the journal/tracker/crash-point/steal contracts hold.
//!
//! Violations can be suppressed inline with
//! `// detlint:allow(<rule>): <reason>` (the reason is mandatory) or for a
//! whole file with `// detlint:allow-file(<rule>): <reason>`. Allows that
//! never suppress anything are themselves reported (`unused-pragma`,
//! warn — an error under `--strict`) so the audit trail cannot rot.
//!
//! Diagnostics are rustc-style `file:line:col`; a machine-readable JSON
//! report (schema_version [`SCHEMA_VERSION`]) is written under `results/`
//! by the CLI.

pub mod lexer;
pub mod rules;
pub mod semantic;
pub mod syntax;

use rules::{Severity, PRAGMA_RULE, RULES, UNUSED_PRAGMA_RULE};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version stamped into the JSON report and asserted by `scripts/ci.sh`
/// (matching the `BENCH_*` writers): 2 = the semantic-analysis engine with
/// the contract packs and unused-pragma reporting.
pub const SCHEMA_VERSION: u32 = 2;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`] or [`PRAGMA_RULE`]).
    pub rule: String,
    pub severity: Severity,
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column of the match.
    pub col: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Human explanation (the rule message, or the hygiene error).
    pub message: String,
}

/// One pragma-suppressed match (kept for the report: suppressions are part
/// of the audit trail, not silence).
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub file: String,
    /// Line of the suppressed match.
    pub line: usize,
    pub reason: String,
}

/// Aggregated result of linting a file set.
#[derive(Debug, Default)]
pub struct LintOutcome {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub suppressions: Vec<Suppression>,
}

impl LintOutcome {
    /// Number of deny-severity violations.
    pub fn deny_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-severity violations.
    pub fn warn_count(&self) -> usize {
        self.violations.len() - self.deny_count()
    }

    /// Whether the run should exit non-zero. Warnings only fail under
    /// `strict`.
    pub fn should_fail(&self, strict: bool) -> bool {
        self.deny_count() > 0 || (strict && !self.violations.is_empty())
    }

    /// Renders rustc-style text diagnostics plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}[{}]: {}", v.severity.label(), v.rule, v.message);
            let _ = writeln!(out, "  --> {}:{}:{}", v.file, v.line, v.col);
            if !v.excerpt.is_empty() {
                let _ = writeln!(out, "   | {}", v.excerpt);
            }
        }
        let _ = writeln!(
            out,
            "detlint: {} file(s) scanned, {} deny, {} warn, {} suppressed",
            self.files_scanned,
            self.deny_count(),
            self.warn_count(),
            self.suppressions.len()
        );
        out
    }

    /// Renders the machine-readable JSON report (hand-rolled, like every
    /// other JSON artifact in this offline workspace).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"tool\": \"detlint\",\n");
        let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"deny\": {},", self.deny_count());
        let _ = writeln!(s, "  \"warn\": {},", self.warn_count());
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\"rule\": ");
            push_json_str(&mut s, &v.rule);
            let _ = write!(s, ", \"severity\": \"{}\"", v.severity.label());
            s.push_str(", \"file\": ");
            push_json_str(&mut s, &v.file);
            let _ = write!(
                s,
                ", \"line\": {}, \"col\": {}, \"message\": ",
                v.line, v.col
            );
            push_json_str(&mut s, &v.message);
            s.push_str(", \"excerpt\": ");
            push_json_str(&mut s, &v.excerpt);
            s.push('}');
        }
        s.push_str("\n  ],\n  \"suppressions\": [");
        for (i, sp) in self.suppressions.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\"rule\": ");
            push_json_str(&mut s, &sp.rule);
            s.push_str(", \"file\": ");
            push_json_str(&mut s, &sp.file);
            let _ = write!(s, ", \"line\": {}, \"reason\": ", sp.line);
            push_json_str(&mut s, &sp.reason);
            s.push('}');
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds `pat` in `hay` at identifier boundaries, returning the 0-based
/// byte offset. Boundary checks only apply to pattern ends that are
/// themselves identifier characters (so `.sum::<f64>()` matches mid-chain).
fn find_word(hay: &str, pat: &str) -> Option<usize> {
    let hb = hay.as_bytes();
    let pb = pat.as_bytes();
    let head_ident = pb.first().copied().is_some_and(is_ident_byte);
    let tail_ident = pb.last().copied().is_some_and(is_ident_byte);
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(pat) {
        let abs = from + pos;
        let pre_ok = !head_ident || abs == 0 || !is_ident_byte(hb[abs - 1]);
        let end = abs + pb.len();
        let post_ok = !tail_ident || end >= hb.len() || !is_ident_byte(hb[end]);
        if pre_ok && post_ok {
            return Some(abs);
        }
        from = abs + 1;
    }
    None
}

/// One rule match before suppression resolution (shared shape for the
/// lexical and semantic layers).
struct Candidate {
    rule: String,
    severity: Severity,
    line: usize,
    col: usize,
    message: String,
}

/// The crate a repo-relative path belongs to, for symbol-table and
/// call-graph grouping. Compat shims are crates of their own.
fn crate_root(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next(), parts.next()) {
        (Some("crates"), Some("compat"), Some(shim)) => format!("crates/compat/{shim}"),
        (Some("crates"), Some(name), _) => format!("crates/{name}"),
        (Some(top), _, _) => top.to_string(),
        (None, _, _) => String::new(),
    }
}

/// Lints a file set through the full pipeline: lexical pattern rules plus
/// the semantic contract packs over per-crate syntax models, unified
/// pragma suppression, and unused-pragma reporting. `files` holds
/// `(repo-relative path, source)` pairs; violations come out sorted by
/// `(file, line, col, rule)` so reports are deterministic regardless of
/// input order.
pub fn lint_files(files: &[(String, String)]) -> LintOutcome {
    let mut out = LintOutcome {
        files_scanned: files.len(),
        ..LintOutcome::default()
    };

    let stripped: Vec<lexer::Stripped> = files.iter().map(|(_, src)| lexer::strip(src)).collect();

    // Per-crate syntax models for the semantic packs, then findings
    // bucketed back onto their file index.
    let mut by_crate: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, (path, _)) in files.iter().enumerate() {
        by_crate.entry(crate_root(path)).or_default().push(i);
    }
    let file_index: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, (p, _))| (p.as_str(), i))
        .collect();
    let mut sem_findings: Vec<semantic::SemFinding> = Vec::new();
    for (root, idxs) in &by_crate {
        let cm = syntax::CrateModel {
            root: root.clone(),
            files: idxs
                .iter()
                .map(|&i| syntax::parse_file(&files[i].0, &stripped[i].masked))
                .collect(),
        };
        semantic::run_packs(&cm, &mut sem_findings);
    }

    for (i, (path, src)) in files.iter().enumerate() {
        let src_lines: Vec<&str> = src.lines().collect();
        let excerpt = |line: usize| {
            src_lines
                .get(line.wrapping_sub(1))
                .map(|l| l.trim().to_string())
                .unwrap_or_default()
        };

        // Index pragmas; flag hygiene errors (unknown rule / missing
        // reason) — a broken pragma must never silently suppress, and it
        // is excluded from unused-pragma tracking (one diagnostic, not
        // two, per bad pragma).
        let pragmas = &stripped[i].pragmas;
        let mut used = vec![false; pragmas.len()];
        let mut valid = vec![false; pragmas.len()];
        let mut file_allows: BTreeMap<&str, usize> = BTreeMap::new();
        let mut line_allows: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pi, p) in pragmas.iter().enumerate() {
            let known = rules::known_rule(&p.rule);
            if !known || p.reason.is_empty() {
                let why = if p.rule.is_empty() {
                    "malformed detlint pragma (expected `detlint:allow(<rule>): <reason>`)"
                        .to_string()
                } else if !known {
                    format!("detlint pragma names unknown rule `{}`", p.rule)
                } else {
                    format!(
                        "detlint pragma for `{}` is missing its mandatory reason \
                         (`detlint:allow({}): <why this is sound>`)",
                        p.rule, p.rule
                    )
                };
                out.violations.push(Violation {
                    rule: PRAGMA_RULE.to_string(),
                    severity: Severity::Deny,
                    file: path.clone(),
                    line: p.line,
                    col: 1,
                    excerpt: excerpt(p.line),
                    message: why,
                });
                continue;
            }
            valid[pi] = true;
            if p.file_level {
                file_allows.entry(p.rule.as_str()).or_insert(pi);
            } else {
                line_allows.entry(p.target_line()).or_default().push(pi);
            }
        }

        // Candidate pool: lexical matches plus this file's semantic
        // findings, all resolved against the same pragma index.
        let mut candidates: Vec<Candidate> = Vec::new();
        for rule in RULES.iter().filter(|r| r.applies_to(path)) {
            for (idx, masked_line) in stripped[i].masked.lines().enumerate() {
                let hit = rule
                    .patterns
                    .iter()
                    .filter_map(|pat| find_word(masked_line, pat))
                    .min();
                let Some(col0) = hit else { continue };
                candidates.push(Candidate {
                    rule: rule.id.to_string(),
                    severity: rule.severity,
                    line: idx + 1,
                    col: col0 + 1,
                    message: rule.message.to_string(),
                });
            }
        }
        for f in sem_findings
            .iter()
            .filter(|f| file_index.get(f.file.as_str()) == Some(&i))
        {
            candidates.push(Candidate {
                rule: f.rule.to_string(),
                severity: f.severity,
                line: f.line,
                col: 1,
                message: f.message.clone(),
            });
        }
        candidates.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));

        for c in candidates {
            // Suppression: file-level first, then line-level.
            let pragma = file_allows.get(c.rule.as_str()).copied().or_else(|| {
                line_allows
                    .get(&c.line)
                    .and_then(|ps| ps.iter().copied().find(|&pi| pragmas[pi].rule == c.rule))
            });
            if let Some(pi) = pragma {
                used[pi] = true;
                out.suppressions.push(Suppression {
                    rule: c.rule,
                    file: path.clone(),
                    line: c.line,
                    reason: pragmas[pi].reason.clone(),
                });
                continue;
            }
            out.violations.push(Violation {
                rule: c.rule,
                severity: c.severity,
                file: path.clone(),
                line: c.line,
                col: c.col,
                excerpt: excerpt(c.line),
                message: c.message,
            });
        }

        // A valid allow that suppressed nothing is stale: the hazard it
        // documented is gone, or it never matched where it pointed. Warn
        // (an error under --strict) so the audit trail tracks the code.
        for (pi, p) in pragmas.iter().enumerate() {
            if valid[pi] && !used[pi] {
                out.violations.push(Violation {
                    rule: UNUSED_PRAGMA_RULE.to_string(),
                    severity: Severity::Warn,
                    file: path.clone(),
                    line: p.line,
                    col: 1,
                    excerpt: excerpt(p.line),
                    message: format!(
                        "detlint:allow{}({}) suppresses nothing in its scope — \
                         the rule no longer fires here; remove the stale pragma",
                        if p.file_level { "-file" } else { "" },
                        p.rule
                    ),
                });
            }
        }
    }

    out.violations
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    out.suppressions
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

/// Lints one file's source text, appending to `out`. `path` must be the
/// repo-relative `/`-separated path (rule scoping keys off it). The file
/// runs through the full pipeline — semantic packs see a single-file
/// crate model, so intra-file call graphs still resolve.
pub fn lint_source(path: &str, src: &str, out: &mut LintOutcome) {
    let one = lint_files(&[(path.to_string(), src.to_string())]);
    out.violations.extend(one.violations);
    out.suppressions.extend(one.suppressions);
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "results"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root` (skipping `target/`, VCS and result
/// directories). File order is sorted, so the report is deterministic.
pub fn lint_root(root: &Path) -> io::Result<LintOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut rels: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rels.sort();
    let mut sources = Vec::with_capacity(rels.len());
    for rel in rels {
        let src = fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        sources.push((rel, src));
    }
    Ok(lint_files(&sources))
}

/// The rule ids that pragma hygiene accepts, for documentation output.
pub fn rule_ids() -> BTreeSet<&'static str> {
    RULES
        .iter()
        .map(|r| r.id)
        .chain(semantic::SEM_RULES.iter().map(|r| r.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> LintOutcome {
        let mut out = LintOutcome::default();
        lint_source(path, src, &mut out);
        out.files_scanned = 1;
        out
    }

    fn rules_hit(out: &LintOutcome) -> Vec<&str> {
        out.violations.iter().map(|v| v.rule.as_str()).collect()
    }

    // ---- nondet-iteration ------------------------------------------------

    #[test]
    fn nondet_iteration_positive() {
        let out = lint_one(
            "crates/simdfs/src/coverage.rs",
            "use std::collections::HashMap;\nlet m: HashMap<u32, u32> = HashMap::new();\n",
        );
        assert!(rules_hit(&out).contains(&"nondet-iteration"));
        // One violation per line, not per occurrence.
        assert_eq!(out.violations.len(), 2);
        assert_eq!(out.violations[0].line, 1);
        assert_eq!(out.violations[0].col, 23);
    }

    #[test]
    fn nondet_iteration_negative_btree_and_out_of_scope() {
        let out = lint_one(
            "crates/simdfs/src/coverage.rs",
            "use std::collections::BTreeMap;\nlet m: BTreeMap<u32, u32> = BTreeMap::new();\n",
        );
        assert!(out.violations.is_empty());
        // Compat shims are outside the state-path scope.
        let out = lint_one(
            "crates/compat/proptest/src/lib.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(out.violations.is_empty());
    }

    #[test]
    fn nondet_iteration_ignores_strings_and_comments() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// a HashMap would be wrong here\nlet s = \"HashSet\";\n/* HashMap */\n",
        );
        assert!(out.violations.is_empty());
    }

    #[test]
    fn nondet_iteration_respects_identifier_boundaries() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "struct MyHashMapLike;\nlet x = HashMapExt::new();\n",
        );
        assert!(out.violations.is_empty());
    }

    // ---- wall-clock ------------------------------------------------------

    #[test]
    fn wall_clock_positive_and_clock_rs_exempt() {
        let src = "let t = std::time::Instant::now();\n";
        let out = lint_one("crates/themis/src/campaign.rs", src);
        assert!(rules_hit(&out).contains(&"wall-clock"));
        let out = lint_one("crates/simdfs/src/clock.rs", src);
        assert!(out.violations.is_empty());
        let out = lint_one("crates/bench/src/perf.rs", src);
        assert!(out.violations.is_empty());
    }

    // ---- ambient-rng -----------------------------------------------------

    #[test]
    fn ambient_rng_positive_everywhere_even_compat() {
        let out = lint_one(
            "crates/compat/rand/src/lib.rs",
            "pub fn thread_rng() -> StdRng { unimplemented!() }\n",
        );
        assert!(rules_hit(&out).contains(&"ambient-rng"));
    }

    #[test]
    fn seeded_rng_is_fine() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "let rng = StdRng::seed_from_u64(seed);\n",
        );
        assert!(out.violations.is_empty());
    }

    // ---- env-read --------------------------------------------------------

    #[test]
    fn env_read_scoping() {
        let src = "let v = std::env::var(\"THEMIS_SEED\");\n";
        let out = lint_one("crates/simdfs/src/sim.rs", src);
        assert!(rules_hit(&out).contains(&"env-read"));
        let out = lint_one("crates/bench/src/bin/repro.rs", src);
        assert!(out.violations.is_empty());
        // Examples and integration tests are in scope since the v2 sweep.
        let out = lint_one("crates/adaptors/examples/strategy_matrix.rs", src);
        assert!(rules_hit(&out).contains(&"env-read"));
        let out = lint_one("crates/bench/tests/grid_determinism.rs", src);
        assert!(rules_hit(&out).contains(&"env-read"));
    }

    // ---- float-order / float-accum --------------------------------------

    #[test]
    fn float_order_positive_total_cmp_negative() {
        let out = lint_one(
            "crates/simdfs/src/balancer.rs",
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
        );
        assert!(rules_hit(&out).contains(&"float-order"));
        let out = lint_one(
            "crates/simdfs/src/balancer.rs",
            "v.sort_by(|a, b| a.total_cmp(b));\n",
        );
        assert!(out.violations.is_empty());
    }

    #[test]
    fn float_accum_warns_only_in_scoring_files() {
        let src = "let mean = fills.iter().map(|(_, f)| f).sum::<f64>();\n";
        let out = lint_one("crates/themis/src/lvm.rs", src);
        assert_eq!(rules_hit(&out), vec!["float-accum"]);
        assert_eq!(out.violations[0].severity, Severity::Warn);
        assert_eq!(out.deny_count(), 0);
        assert!(!out.should_fail(false));
        assert!(out.should_fail(true));
        let out = lint_one("crates/themis/src/campaign.rs", src);
        assert!(out.violations.is_empty());
        // The streaming-tracker module carries float reduction only in its
        // pragma-documented differential reference arm, so it is covered.
        let out = lint_one("crates/simdfs/src/loadstats.rs", src);
        assert_eq!(rules_hit(&out), vec!["float-accum"]);
    }

    // ---- unsafe-code -----------------------------------------------------

    #[test]
    fn unsafe_code_positive_and_string_immunity() {
        let out = lint_one("crates/workload/src/lib.rs", "unsafe { *p = 3 }\n");
        assert!(rules_hit(&out).contains(&"unsafe-code"));
        let out = lint_one(
            "crates/workload/src/lib.rs",
            "let s = \"unsafe\"; // unsafe in comment\n",
        );
        assert!(out.violations.is_empty());
    }

    // ---- pragmas ---------------------------------------------------------

    #[test]
    fn pragma_with_reason_suppresses_and_is_recorded() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(nondet-iteration): test-only membership set, never iterated\n\
             let mut seen = std::collections::HashSet::new();\n",
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].rule, "nondet-iteration");
        assert_eq!(out.suppressions[0].line, 2);
    }

    #[test]
    fn trailing_pragma_suppresses_its_own_line() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "let mut seen = std::collections::HashSet::new(); \
             // detlint:allow(nondet-iteration): membership only\n",
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressions.len(), 1);
    }

    #[test]
    fn pragma_without_reason_is_a_violation_and_does_not_suppress() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(nondet-iteration)\n\
             let mut seen = std::collections::HashSet::new();\n",
        );
        let hit = rules_hit(&out);
        assert!(hit.contains(&"pragma-hygiene"));
        assert!(hit.contains(&"nondet-iteration"));
        assert!(out.suppressions.is_empty());
    }

    #[test]
    fn pragma_with_unknown_rule_is_flagged() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(no-such-rule): because\nlet x = 1;\n",
        );
        assert_eq!(rules_hit(&out), vec!["pragma-hygiene"]);
    }

    #[test]
    fn file_level_pragma_covers_all_matches() {
        let out = lint_one(
            "crates/themis/src/lvm.rs",
            "// detlint:allow-file(float-accum): all reductions iterate Vec in index order\n\
             let a = xs.iter().sum::<f64>();\n\
             let b = ys.iter().sum::<f64>();\n",
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressions.len(), 2);
    }

    #[test]
    fn unused_pragma_is_warn_and_strict_fails() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(nondet-iteration): was a HashSet once\nlet x = 1;\n",
        );
        assert_eq!(rules_hit(&out), vec!["unused-pragma"]);
        assert_eq!(out.violations[0].severity, Severity::Warn);
        assert_eq!(out.violations[0].line, 1);
        assert!(out.violations[0].message.contains("suppresses nothing"));
        assert!(!out.should_fail(false));
        assert!(out.should_fail(true));
    }

    #[test]
    fn unused_file_level_pragma_is_flagged() {
        let out = lint_one(
            "crates/themis/src/lvm.rs",
            "// detlint:allow-file(float-accum): reductions were here once\nlet x = 1;\n",
        );
        assert_eq!(rules_hit(&out), vec!["unused-pragma"]);
        assert!(out.violations[0]
            .message
            .contains("allow-file(float-accum)"));
    }

    #[test]
    fn used_pragma_is_not_flagged_unused() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(nondet-iteration): membership only, never iterated\n\
             let mut seen = std::collections::HashSet::new();\n",
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressions.len(), 1);
    }

    #[test]
    fn hygiene_broken_pragma_is_not_double_flagged_as_unused() {
        // One diagnostic per bad pragma: the hygiene error, not hygiene +
        // unused.
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(nondet-iteration)\nlet x = 1;\n",
        );
        assert_eq!(rules_hit(&out), vec!["pragma-hygiene"]);
    }

    #[test]
    fn semantic_pack_pragmas_pass_hygiene_and_suppress() {
        let out = lint_one(
            "crates/simdfs/src/sim.rs",
            "impl DfsSim { fn corrupt(&mut self) {\n\
                // detlint:allow(journal-coverage): deliberate corruption for the auditor test\n\
                self.cluster.storage.get_mut(&id).unwrap().volumes[0].used += 1;\n\
             } }\n",
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].rule, "journal-coverage");
    }

    #[test]
    fn meta_rules_are_not_allowable() {
        let out = lint_one(
            "crates/themis/src/gen.rs",
            "// detlint:allow(unused-pragma): trying to excuse staleness\nlet x = 1;\n",
        );
        assert_eq!(rules_hit(&out), vec!["pragma-hygiene"]);
    }

    #[test]
    fn pragma_does_not_suppress_other_rules() {
        let out = lint_one(
            "crates/simdfs/src/sim.rs",
            "// detlint:allow(nondet-iteration): wrong rule\n\
             let t = Instant::now();\n",
        );
        assert!(rules_hit(&out).contains(&"wall-clock"));
    }

    // ---- report rendering ------------------------------------------------

    #[test]
    fn json_report_escapes_and_counts() {
        let mut out = LintOutcome::default();
        lint_source(
            "crates/simdfs/src/sim.rs",
            "let m = std::collections::HashMap::<u8, \u{8}u8>::new();\n",
            &mut out,
        );
        out.files_scanned = 1;
        let js = out.to_json();
        assert!(js.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(js.contains("\"deny\": 1"));
        assert!(js.contains("\"rule\": \"nondet-iteration\""));
        assert!(js.contains("\\u0008"));
    }

    #[test]
    fn text_report_is_rustc_style() {
        let out = lint_one("crates/simdfs/src/sim.rs", "let t = Instant::now();\n");
        let txt = out.render_text();
        assert!(txt.contains("deny[wall-clock]"));
        assert!(txt.contains("--> crates/simdfs/src/sim.rs:1:9"));
    }
}
